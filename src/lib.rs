//! # Sommelier
//!
//! A Rust reproduction of **Sommelier: Curating DNN Models for the
//! Masses** (Guo, Hu & Hu, SIGMOD 2022) — an indexing and query system
//! layered over DNN model repositories. Given a reference model, a
//! functional-equivalence threshold, and a resource budget, Sommelier
//! returns the most suitable model without manual profiling.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`tensor`] — dense tensor substrate and seeded randomness;
//! * [`graph`] — the DNN IR (operators, models, fingerprints, costs);
//! * [`runtime`] — graph execution, latency estimation, QoR metrics;
//! * [`zoo`] — the synthetic model hub standing in for TF-Hub;
//! * [`equiv`] — functional-equivalence assessment (whole models and
//!   segments, generalization bounds, the ModelDiff baseline);
//! * [`index`] — the semantic and resource indices;
//! * [`repo`] — the bare-bone model repository substrate;
//! * [`fault`] — crash-safe storage primitives and deterministic fault
//!   injection for durability testing;
//! * [`lint`] — execution-free static analysis: shallow lints plus the
//!   deep abstract-interpretation audit and cross-artifact checks;
//! * [`query`] — the query language and the [`Sommelier`] engine facade;
//! * [`serving`] — the inference-serving simulator with automated model
//!   switching.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use sommelier::prelude::*;
//!
//! // A repository with a few functionally related models.
//! let repo = Arc::new(InMemoryRepository::new());
//! let teacher = Teacher::for_task(TaskKind::ImageRecognition, 7);
//! let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
//! let mut rng = Prng::seed_from_u64(1);
//! let mut engine = Sommelier::connect_default(repo);
//! for (i, width) in [1.5_f64, 1.0, 0.5].into_iter().enumerate() {
//!     let mut frng = rng.fork();
//!     let model = Family::Resnetish.build_scaled(
//!         format!("resnetish-v{i}"),
//!         &teacher,
//!         &bias,
//!         &FamilyScale::new(width, 3, 0.01),
//!         &mut frng,
//!     );
//!     engine.register(&model).unwrap();
//! }
//!
//! // "Find a model interchangeable with resnetish-v0 that uses at most
//! //  90% of its memory."
//! let results = engine
//!     .query("SELECT model CORR resnetish-v0 ON memory <= 90% WITHIN 0.5")
//!     .unwrap();
//! assert!(!results.is_empty());
//! ```

pub use sommelier_equiv as equiv;
pub use sommelier_fault as fault;
pub use sommelier_graph as graph;
pub use sommelier_index as index;
pub use sommelier_lint as lint;
pub use sommelier_query as query;
pub use sommelier_repo as repo;
pub use sommelier_runtime as runtime;
pub use sommelier_serving as serving;
pub use sommelier_tensor as tensor;
pub use sommelier_zoo as zoo;

pub use sommelier_query::{Query, QueryError, QueryResult, Sommelier, SommelierConfig};

/// Convenience re-exports covering the common end-to-end flow.
pub mod prelude {
    pub use sommelier_graph::{Fingerprint, Model, ModelBuilder, TaskKind};
    pub use sommelier_query::{
        FinalSelection, Query, QueryError, QueryResult, Sommelier, SommelierConfig,
    };
    pub use sommelier_repo::{InMemoryRepository, ModelRepository, OnDiskRepository};
    pub use sommelier_runtime::{execute, ExecSetting, ResourceProfile};
    pub use sommelier_serving::{ModelChoice, Policy, Workload};
    pub use sommelier_tensor::{Prng, Shape, Tensor};
    pub use sommelier_zoo::families::{Family, FamilyScale};
    pub use sommelier_zoo::teacher::{DatasetBias, TaskSpec, Teacher};
    pub use sommelier_zoo::Dataset;
}
