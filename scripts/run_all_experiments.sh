#!/usr/bin/env bash
# Regenerate every table and figure of the paper's evaluation.
# Results print to stdout and land as JSON under target/experiments/.
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  sec32_provenance
  fig3_agreement
  table1_bounds
  table2_check_time
  table3_query_latency
  table4_memory
  fig9a_query_quality
  fig9b_effort
  fig9c_tail_latency
  fig10_segment_bounds
  fig11_modeldiff
  fig12_tfhub_index
  fig13_cross_series
  ablation_sampling
  ablation_segments
  ablation_genbound
)

cargo build --release -p sommelier-bench

for bin in "${BINS[@]}"; do
  echo
  echo "################################################################"
  echo "### $bin"
  echo "################################################################"
  cargo run --quiet --release -p sommelier-bench --bin "$bin"
done

echo
echo "All experiments done. JSON results: target/experiments/"
