#!/usr/bin/env bash
# PR 2 performance gate: parallel index construction + memoized pairwise
# cache on the reindex-twice curation workload.
#
# Builds the workspace in release mode, runs the `pr2_parallel_cache`
# benchmark (baseline: --jobs 1 --cache-cap 0; tuned: --jobs 4
# --cache-cap 65536), and copies the JSON report to BENCH_pr2.json at the
# repository root. The benchmark binary itself asserts that both
# configurations produce byte-identical index snapshots and that the
# tuned run hits the cache; this script additionally enforces the ≥2×
# build-throughput acceptance bar.
#
# Usage:
#   scripts/bench.sh              # smoke fleet (60 models, 40 queries)
#   SOMMELIER_PR2_MODE=full scripts/bench.sh   # larger fleet
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== building (release) =="
cargo build --release -p sommelier-bench

echo "== running pr2_parallel_cache (${SOMMELIER_PR2_MODE:-smoke}) =="
cargo run --quiet --release -p sommelier-bench --bin pr2_parallel_cache

cp target/experiments/pr2_parallel_cache.json BENCH_pr2.json
echo "== wrote BENCH_pr2.json =="

# Enforce the acceptance bar without depending on jq: the report is
# single-level enough for a grep to pull the speedup out.
speedup=$(sed -n 's/.*"speedup":[[:space:]]*\([0-9.]*\).*/\1/p' BENCH_pr2.json | head -n1)
echo "speedup: ${speedup}x (bar: >= 2.0x)"
awk -v s="$speedup" 'BEGIN { exit !(s >= 2.0) }' || {
    echo "FAIL: tuned build throughput is below the 2x acceptance bar" >&2
    exit 1
}
echo "PASS"
