#!/usr/bin/env bash
# Performance gates for the stacked PRs:
#
# PR 2: parallel index construction + memoized pairwise
# cache on the churn-twice curation workload (drop + re-add sweeps).
#
# Builds the workspace in release mode, runs the `pr2_parallel_cache`
# benchmark (baseline: --jobs 1 --cache-cap 0; tuned: --jobs 4
# --cache-cap 65536), and copies the JSON report to BENCH_pr2.json at the
# repository root. The benchmark binary itself asserts that both
# configurations produce byte-identical index snapshots and that the
# tuned run hits the cache; this script additionally enforces the ≥2×
# build-throughput acceptance bar.
#
# PR 4: lock-free snapshot query path. Runs `pr4_query_serving`
# (baseline: 1 lane, plan cache off; tuned: 8 lanes, plan/result cache
# on; plus the engine-backed switching serving simulation), copies the
# JSON report to BENCH_pr4.json, and enforces the ≥3× batched-query
# throughput bar and the ≥4× serving p90 tail-latency cut. The binary
# itself asserts byte-identical result sets at lanes 1/4/8.
#
# PR 5: crash-safe storage. Runs the crash-loop property test
# (`tests/crash_consistency.rs`) under three fault seeds, sweeping a
# seeded crash through every primitive I/O op of the mutation sequence
# and asserting the store always reopens to old-or-new state. Since
# PR 7 the swept sequence also publishes a binary (`.somb`) snapshot,
# so the same matrix covers binary-format tears.
#
# PR 6: the deep audit's fingerprint memo. Runs `pr6_audit` (cold vs
# warm audit sweeps at --jobs 1 and --jobs 4), copies the JSON report to
# BENCH_pr6.json, and enforces the ≥2× warm-over-cold throughput bar.
# The binary itself asserts identical reports across job counts and that
# warm runs answer every model from the memo.
#
# PR 7: the binary snapshot format. Runs `pr7_snapshot` (cold-open of a
# ≥5k-model snapshot in both formats, then an identical query workload
# served from each), copies the JSON report to BENCH_pr7.json, and
# enforces the ≥10× cold-open speedup bar, the ≥0.9 query-p50 parity
# bar, and byte-identical JSON-vs-binary result sets.
#
# PR 8: incremental index maintenance. Runs `pr8_incremental`
# (single-model register against a warm bulk-indexed fleet, a 1k-op
# churn loop over a 10k-model index, and an incremental-vs-from-scratch
# snapshot identity check), copies the JSON report to BENCH_pr8.json,
# and enforces the ≥20× register-over-reindex bar, the ≤1.5 churn
# per-op linearity bar, and byte-identical churned vs rebuilt snapshots.
#
# PR 9: the `sommelier serve` daemon. Runs `pr9_serve` (a 5k-model
# synthetic zoo served over TCP: single-connection baseline vs 8
# pipelined connections while a mutator storms apply/republish, then an
# over-admission burst against a workers=1 queue_depth=2 gate), copies
# the JSON report to BENCH_pr9.json, and enforces the ≥3× saturation
# throughput bar, zero protocol errors, zero mixed-epoch batches
# across the republish storm, and bounded-queue load-shed (≥1 typed
# shed, max_inflight within workers + queue_depth).
#
# Usage:
#   scripts/bench.sh              # smoke fleets
#   SOMMELIER_PR2_MODE=full SOMMELIER_PR4_MODE=full scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== building (release) =="
cargo build --release -p sommelier-bench

echo "== fault matrix: crash-loop durability sweep =="
for seed in 11 23 47; do
    echo "-- SOMMELIER_FAULT_SEED=$seed --"
    SOMMELIER_FAULT_SEED=$seed cargo test --quiet --release --test crash_consistency
done
echo "PASS"

echo "== running pr2_parallel_cache (${SOMMELIER_PR2_MODE:-smoke}) =="
cargo run --quiet --release -p sommelier-bench --bin pr2_parallel_cache

cp target/experiments/pr2_parallel_cache.json BENCH_pr2.json
echo "== wrote BENCH_pr2.json =="

# Enforce the acceptance bar without depending on jq: the report is
# single-level enough for a grep to pull the speedup out.
speedup=$(sed -n 's/.*"speedup":[[:space:]]*\([0-9.]*\).*/\1/p' BENCH_pr2.json | head -n1)
echo "speedup: ${speedup}x (bar: >= 2.0x)"
awk -v s="$speedup" 'BEGIN { exit !(s >= 2.0) }' || {
    echo "FAIL: tuned build throughput is below the 2x acceptance bar" >&2
    exit 1
}
echo "PASS"

echo "== running pr4_query_serving (${SOMMELIER_PR4_MODE:-smoke}) =="
cargo run --quiet --release -p sommelier-bench --bin pr4_query_serving

cp target/experiments/pr4_query_serving.json BENCH_pr4.json
echo "== wrote BENCH_pr4.json =="

batch_speedup=$(sed -n 's/.*"batch_speedup":[[:space:]]*\([0-9.]*\).*/\1/p' BENCH_pr4.json | head -n1)
p90_cut=$(sed -n 's/.*"p90_cut":[[:space:]]*\([0-9.]*\).*/\1/p' BENCH_pr4.json | head -n1)
echo "batch speedup: ${batch_speedup}x (bar: >= 3.0x)"
awk -v s="$batch_speedup" 'BEGIN { exit !(s >= 3.0) }' || {
    echo "FAIL: batched query throughput is below the 3x acceptance bar" >&2
    exit 1
}
echo "serving p90 cut: ${p90_cut}x (bar: >= 4.0x)"
awk -v s="$p90_cut" 'BEGIN { exit !(s >= 4.0) }' || {
    echo "FAIL: engine-backed switching p90 cut is below the 4x acceptance bar" >&2
    exit 1
}
echo "PASS"

echo "== running pr6_audit (${SOMMELIER_PR6_MODE:-smoke}) =="
cargo run --quiet --release -p sommelier-bench --bin pr6_audit

cp target/experiments/pr6_audit.json BENCH_pr6.json
echo "== wrote BENCH_pr6.json =="

warm_speedup=$(sed -n 's/.*"warm_speedup":[[:space:]]*\([0-9.]*\).*/\1/p' BENCH_pr6.json | head -n1)
echo "warm audit speedup: ${warm_speedup}x (bar: >= 2.0x)"
awk -v s="$warm_speedup" 'BEGIN { exit !(s >= 2.0) }' || {
    echo "FAIL: warm audit throughput is below the 2x acceptance bar" >&2
    exit 1
}
echo "PASS"

echo "== running pr7_snapshot (${SOMMELIER_PR7_MODE:-quick}) =="
cargo run --quiet --release -p sommelier-bench --bin pr7_snapshot

cp target/experiments/pr7_snapshot.json BENCH_pr7.json
echo "== wrote BENCH_pr7.json =="

open_speedup=$(sed -n 's/.*"speedup":[[:space:]]*\([0-9.]*\).*/\1/p' BENCH_pr7.json | head -n1)
p50_ratio=$(sed -n 's/.*"query_p50_json_over_binary":[[:space:]]*\([0-9.]*\).*/\1/p' BENCH_pr7.json | head -n1)
echo "cold-open speedup: ${open_speedup}x (bar: >= 10.0x)"
awk -v s="$open_speedup" 'BEGIN { exit !(s >= 10.0) }' || {
    echo "FAIL: binary cold-open is below the 10x acceptance bar" >&2
    exit 1
}
echo "query p50 json/binary: ${p50_ratio} (bar: >= 0.9)"
awk -v s="$p50_ratio" 'BEGIN { exit !(s >= 0.9) }' || {
    echo "FAIL: binary-format query p50 regressed past the 0.9 parity bar" >&2
    exit 1
}
grep -q '"results_identical": true' BENCH_pr7.json || {
    echo "FAIL: JSON and binary snapshots served different results" >&2
    exit 1
}
echo "PASS"

echo "== running pr8_incremental (${SOMMELIER_PR8_MODE:-quick}) =="
cargo run --quiet --release -p sommelier-bench --bin pr8_incremental

cp target/experiments/pr8_incremental.json BENCH_pr8.json
echo "== wrote BENCH_pr8.json =="

register_speedup=$(sed -n 's/.*"register_speedup":[[:space:]]*\([0-9.]*\).*/\1/p' BENCH_pr8.json | head -n1)
churn_linearity=$(sed -n 's/.*"churn_linearity":[[:space:]]*\([0-9.]*\).*/\1/p' BENCH_pr8.json | head -n1)
echo "register speedup: ${register_speedup}x (bar: >= 20.0x)"
awk -v s="$register_speedup" 'BEGIN { exit !(s >= 20.0) }' || {
    echo "FAIL: single-model register is below the 20x over-reindex bar" >&2
    exit 1
}
echo "churn linearity: ${churn_linearity} (bar: <= 1.5)"
awk -v s="$churn_linearity" 'BEGIN { exit !(s <= 1.5) }' || {
    echo "FAIL: churn per-op cost grows past the 1.5x linearity bar" >&2
    exit 1
}
grep -q '"identical": true' BENCH_pr8.json || {
    echo "FAIL: churned snapshot differs from a from-scratch rebuild" >&2
    exit 1
}
echo "PASS"

echo "== running pr9_serve (${SOMMELIER_PR9_MODE:-quick}) =="
cargo run --quiet --release -p sommelier-bench --bin pr9_serve

cp target/experiments/pr9_serve.json BENCH_pr9.json
echo "== wrote BENCH_pr9.json =="

throughput_ratio=$(sed -n 's/.*"throughput_ratio":[[:space:]]*\([0-9.]*\).*/\1/p' BENCH_pr9.json | head -n1)
shed_count=$(sed -n 's/.*"shed":[[:space:]]*\([0-9][0-9]*\).*/\1/p' BENCH_pr9.json | head -n1)
echo "saturation throughput ratio: ${throughput_ratio}x (bar: >= 3.0x)"
awk -v s="$throughput_ratio" 'BEGIN { exit !(s >= 3.0) }' || {
    echo "FAIL: saturated daemon throughput is below the 3x acceptance bar" >&2
    exit 1
}
grep -q '"protocol_errors": 0' BENCH_pr9.json || {
    echo "FAIL: the daemon answered frames with protocol errors under load" >&2
    exit 1
}
grep -q '"mixed_epoch_batches": 0' BENCH_pr9.json || {
    echo "FAIL: a query batch observed more than one snapshot epoch" >&2
    exit 1
}
echo "typed load-sheds: ${shed_count} (bar: >= 1)"
awk -v s="$shed_count" 'BEGIN { exit !(s >= 1) }' || {
    echo "FAIL: over-admission produced no typed load-shed responses" >&2
    exit 1
}
grep -q '"queue_bounded": true' BENCH_pr9.json || {
    echo "FAIL: admission concurrency escaped the workers + queue_depth bound" >&2
    exit 1
}
echo "PASS"

echo "== running pr10_dedup (${SOMMELIER_PR10_MODE:-quick}) =="
cargo run --quiet --release -p sommelier-bench --bin pr10_dedup

cp target/experiments/pr10_dedup.json BENCH_pr10.json
echo "== wrote BENCH_pr10.json =="

size_cut=$(sed -n 's/.*"size_cut_ratio":[[:space:]]*\([0-9.]*\).*/\1/p' BENCH_pr10.json | head -n1)
echo "delta-storage size cut: ${size_cut}x (bar: >= 3.0x)"
awk -v s="$size_cut" 'BEGIN { exit !(s >= 3.0) }' || {
    echo "FAIL: chunked delta storage is below the 3x size-cut bar" >&2
    exit 1
}
grep -q '"loadback_identical": true' BENCH_pr10.json || {
    echo "FAIL: a model loaded after dedup differs from its flat original" >&2
    exit 1
}
grep -q '"crash_sweep_green": true' BENCH_pr10.json || {
    echo "FAIL: a crash point tore the chunked publish path" >&2
    exit 1
}
echo "PASS"
