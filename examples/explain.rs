//! Explanation reports: *why* is (or isn't) a model interchangeable with
//! another? (the paper's "explanation database for DNNs" positioning,
//! Section 1).
//!
//! ```sh
//! cargo run --release --example explain
//! ```

use sommelier::equiv::explain::explain;
use sommelier::equiv::whole::EquivConfig;
use sommelier::graph::dot::to_dot;
use sommelier::prelude::*;
use sommelier::zoo::finetune::perturb_all;

fn main() {
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 2024);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.08);
    let mut rng = Prng::seed_from_u64(7);

    let reference = Family::Resnetish.build_scaled(
        "resnetish-50",
        &teacher,
        &bias,
        &FamilyScale::new(1.0, 4, 0.01),
        &mut rng,
    );
    // Three candidates with very different relationships to the reference.
    let mut vrng = Prng::seed_from_u64(9);
    let close = perturb_all(&reference, 0.03, &mut vrng).renamed("resnetish-50-finetune");
    let mut frng = rng.fork();
    let cousin = Family::Vggish
        .build("vgg19ish", &teacher, &bias, &mut frng)
        .renamed("vgg19ish");
    let mut arng = Prng::seed_from_u64(11);
    let alien = sommelier::graph::ModelBuilder::new(
        "tiny-regressor",
        TaskKind::ObjectDetection,
        Shape::vector(10),
    )
    .dense(4, &mut arng)
    .build()
    .unwrap();

    let probe = Tensor::gaussian(256, reference.input_width(), 1.0, &mut rng);
    let cfg = EquivConfig {
        epsilon: 0.35,
        ..EquivConfig::default()
    };

    for candidate in [&close, &cousin, &alien] {
        let mut erng = Prng::seed_from_u64(13);
        let explanation = explain(&reference, candidate, &probe, &cfg, 0.35, &mut erng);
        println!("{explanation}");
    }

    // The graph itself, renderable with `dot -Tpng`.
    println!("--- Graphviz of the reference (first lines) ---");
    for line in to_dot(&reference, &[]).lines().take(6) {
        println!("{line}");
    }
    println!("  …");
}
