//! Online case study: inference serving with automated model switching
//! (paper Section 6, Figure 8 left; evaluated in Section 7.1 /
//! Figure 9c).
//!
//! ```sh
//! cargo run --release --example inference_serving
//! ```
//!
//! An inference server faces a bursty request stream. Without Sommelier
//! the developer pins one model; with Sommelier the server queries for
//! functionally equivalent variants with different resource profiles and
//! switches to compact ones when the queue builds up.

use sommelier::prelude::*;
use sommelier::serving::{simulate, ClusterConfig};
use sommelier::zoo::series::build_series;
use std::sync::Arc;

fn main() {
    // Build a series of functionally equivalent models, small → large,
    // and register them with Sommelier.
    let repo = Arc::new(InMemoryRepository::new());
    let mut engine = Sommelier::connect_default(Arc::clone(&repo) as Arc<dyn ModelRepository>);
    let mut rng = Prng::seed_from_u64(11);
    let series = build_series(
        "servenet",
        Family::Resnetish,
        TaskKind::ImageRecognition,
        "imagenet",
        5,
        2024,
        0.08,
        &mut rng,
    );
    for m in &series.models {
        engine.register(m).expect("fresh key");
    }
    let reference = &series.models.last().expect("non-empty series").name;

    // The serving layer asks Sommelier for deployable equivalents of the
    // currently served (largest) model — one query instead of hand-coded
    // model lists (the gray block of Figure 8).
    let query = format!("SELECT models 10 CORR {reference} WITHIN 0.3 ORDER BY latency");
    println!("query> {query}");
    let equivalents = engine.query(&query).expect("query runs");

    // Turn query results (plus the reference itself) into serving-layer
    // variants: (service time, accuracy).
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 2024);
    let mut probe_rng = Prng::seed_from_u64(5);
    let probe = Tensor::gaussian(400, teacher.spec.input_width, 1.0, &mut probe_rng);
    let labels = teacher.labels(&probe);
    let ref_profile = *engine
        .resource_index()
        .profile_of(reference)
        .expect("reference profiled");
    let mut keys: Vec<(String, f64)> = equivalents
        .iter()
        .filter(|r| !matches!(r.kind, sommelier::index::CandidateKind::Synthesized { .. }))
        .map(|r| (r.key.clone(), r.profile.gflops))
        .collect();
    keys.push((reference.clone(), ref_profile.gflops));

    // Service time scales with computational complexity (the paper's
    // hardware-independent metric); we anchor the largest variant at
    // 80 ms — a production-size model on serving hardware — since the
    // miniature zoo models would otherwise finish in microseconds.
    let max_gflops = keys
        .iter()
        .map(|(_, g)| *g)
        .fold(0.0f64, f64::max);
    let mut variants: Vec<ModelChoice> = Vec::new();
    for (key, gflops) in keys {
        let model = repo.load(&key).expect("stored");
        let out = execute(&model, &probe).expect("executes");
        let accuracy = sommelier::runtime::metrics::top1_accuracy(&out, &labels);
        variants.push(ModelChoice {
            name: key,
            service_time_s: 0.002 + 0.078 * gflops / max_gflops,
            accuracy,
        });
        let v = variants.last().expect("just pushed");
        println!(
            "  variant {:<22} service={:.1} ms  accuracy={:.3}",
            v.name,
            v.service_time_s * 1e3,
            v.accuracy
        );
    }
    variants.sort_by(|a, b| a.service_time_s.partial_cmp(&b.service_time_s).expect("finite"));
    let biggest = variants.len() - 1;

    // Bursty traffic: the burst runs just under the big model's capacity,
    // so the fixed-model server saturates while switching stays ahead.
    let capacity = 1.0 / variants[biggest].service_time_s;
    let workload = Workload::bursty(120.0, 0.3 * capacity, 0.95 * capacity);
    let mut arr_rng = Prng::seed_from_u64(3);
    let arrivals = workload.arrivals(&mut arr_rng);
    println!("\n{} requests over {:.0} s (burst in the middle third)", arrivals.len(), workload.duration_s());

    let sla = 4.0 * variants[biggest].service_time_s;
    let fixed = simulate(
        &ClusterConfig {
            servers: 1,
            policy: Policy::Fixed { index: biggest },
        },
        &arrivals,
        &variants,
    );
    let switching = simulate(
        &ClusterConfig {
            servers: 1,
            policy: Policy::Switching { sla_s: sla },
        },
        &arrivals,
        &variants,
    );

    let fs = fixed.stats();
    let ss = switching.stats();
    println!("\n                      p50         p90         p99      accuracy");
    println!(
        "fixed model     {:>8.1} ms {:>9.1} ms {:>9.1} ms     {:.3}",
        fs.p50 * 1e3,
        fs.p90 * 1e3,
        fs.p99 * 1e3,
        fixed.mean_accuracy
    );
    println!(
        "model switching {:>8.1} ms {:>9.1} ms {:>9.1} ms     {:.3}",
        ss.p50 * 1e3,
        ss.p90 * 1e3,
        ss.p99 * 1e3,
        switching.mean_accuracy
    );
    println!(
        "\np90 tail latency cut: {:.1}x (paper reports ~6x on its testbed)",
        fs.p90 / ss.p90
    );
}
