//! Quickstart: stand up a repository, register models, and run queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Mirrors the paper's core promise (Section 1): instead of knowing the
//! exact model name/version to load, you describe what you need — "a
//! model interchangeable with X within 5%, using at most 60% of its
//! memory" — and Sommelier picks the model.

use sommelier::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A bare-bone repository — the "remote filesystem" every model hub
    //    is today (paper Section 2.1).
    let repo = Arc::new(InMemoryRepository::new());

    // 2. A small hub of image-recognition models, all trained on the same
    //    synthetic "imagenet": one family, four sizes.
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 2024);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.08);
    let mut rng = Prng::seed_from_u64(7);

    let mut engine = Sommelier::connect_default(Arc::clone(&repo) as Arc<dyn ModelRepository>);
    println!("Registering models (publish + profile + semantic indexing)…");
    for (name, width, depth) in [
        ("resnetish-50", 1.0, 6),
        ("resnetish-34", 0.75, 5),
        ("resnetish-18", 0.5, 4),
        ("mobilenetish-v1", 0.5, 3),
    ] {
        let family = if name.starts_with("mobile") {
            Family::Mobilenetish
        } else {
            Family::Resnetish
        };
        let mut frng = rng.fork();
        let model = family.build_scaled(
            name,
            &teacher,
            &bias,
            &FamilyScale::new(width, depth, 0.01),
            &mut frng,
        );
        let profile = ResourceProfile::of(&model);
        engine.register(&model).expect("fresh key");
        println!(
            "  {name:<18} {:>8.2} MB  {:>7.4} GFLOPs",
            profile.memory_mb, profile.gflops
        );
    }

    // 3. Query: the Figure 6 scenario — most interchangeable model with
    //    the reference, under a relative resource budget.
    let query = "SELECT models 3 CORR resnetish-50 ON memory <= 80% AND flops <= 80% \
                 WITHIN 0.5 ORDER BY similarity";
    println!("\nquery> {query}");
    let results = engine.query(query).expect("query runs");
    if results.is_empty() {
        println!("  (no model satisfies all predicates)");
    }
    for r in &results {
        println!(
            "  {:<22} score={:.3}  mem={:.2} MB  flops={:.4} GFLOPs  [{:?}]",
            r.key, r.score, r.profile.memory_mb, r.profile.gflops, r.kind
        );
    }

    // 4. The winner is a real, loadable model — fetch it from the
    //    repository and run an inference.
    let best = &results.first().expect("at least one candidate").key;
    let model = repo.load(best).expect("repository holds the model");
    let mut input_rng = Prng::seed_from_u64(99);
    let input = Tensor::gaussian(1, model.input_width(), 1.0, &mut input_rng);
    let output = execute(&model, &input).expect("model executes");
    println!(
        "\nLoaded '{best}' and classified one input → class {}",
        output.argmax_row(0)
    );
}
