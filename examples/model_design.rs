//! Offline case study: model design via repository queries (paper
//! Section 6, Figure 8 right).
//!
//! ```sh
//! cargo run --release --example model_design
//! ```
//!
//! A designer wants a base model for a new edge deployment: "vision, at
//! most 40% of the flagship's memory, within a modest accuracy loss".
//! Without Sommelier they would download and profile every candidate;
//! with Sommelier a single query skips the suboptimal bases. We then
//! *transfer* the selected base to a downstream task to show the chosen
//! model is a working starting point.

use sommelier::prelude::*;
use sommelier::zoo::series::tfhub_catalog;
use sommelier::zoo::transfer::{derive_teacher, transfer};
use std::sync::Arc;

fn main() {
    // Index a slice of the TF-Hub-style catalog: the two vision series of
    // Figure 12 (BiT-style and EfficientNet-style).
    let repo = Arc::new(InMemoryRepository::new());
    let cfg = SommelierConfig {
        validation_rows: 192,
        ..SommelierConfig::default()
    };
    let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);

    let catalog = tfhub_catalog(2024);
    let mut registered = 0;
    for series in catalog
        .iter()
        .filter(|s| s.name == "bitish" || s.name == "efficientnetish")
    {
        for m in &series.models {
            engine.register(m).expect("fresh key");
            registered += 1;
        }
    }
    println!("indexed {registered} models from the bitish + efficientnetish series");

    // The designer knows the flagship: bitish-r152x4.
    let flagship = "bitish-r152x4";
    let fp = engine
        .resource_index()
        .profile_of(flagship)
        .expect("flagship profiled");
    println!(
        "flagship {flagship}: {:.2} MB, {:.4} GFLOPs",
        fp.memory_mb, fp.gflops
    );

    // One query replaces the manual download-profile-compare loop.
    let query =
        format!("SELECT models 5 CORR {flagship} ON memory <= 40% WITHIN 0.3 ORDER BY similarity");
    println!("\nquery> {query}");
    let candidates = engine.query(&query).expect("query runs");
    for c in &candidates {
        println!(
            "  {:<24} score={:.3}  mem={:.2} MB ({:.0}% of flagship)",
            c.key,
            c.score,
            c.profile.memory_mb,
            100.0 * c.profile.memory_mb / fp.memory_mb
        );
    }
    let base_key = &candidates.first().expect("a base exists").key;
    println!("\nselected base: {base_key}");

    // Transfer the selected base to a downstream task (semantic
    // segmentation) — the model-design workflow the paper motivates.
    let base = repo.load(base_key).expect("stored");
    let vision_teacher = Teacher::for_task(TaskKind::ImageRecognition, 2024);
    let seg_teacher = derive_teacher(&vision_teacher, TaskKind::SemanticSegmentation, 64, 77);
    let seg_bias = DatasetBias::new(&seg_teacher, "ade20k", 0.08);
    let mut rng = Prng::seed_from_u64(9);
    let downstream = transfer(
        "segnet-from-query",
        &base,
        &seg_teacher,
        &seg_bias,
        0.01,
        0.25,
        0.05,
        &mut rng,
    );

    // Check downstream quality against the derived ground truth.
    let mut prng = Prng::seed_from_u64(4);
    let x = Tensor::gaussian(200, downstream.input_width(), 1.0, &mut prng);
    let out = execute(&downstream, &x).expect("executes");
    let targets = seg_teacher.outputs(&x);
    let qor = sommelier::runtime::metrics::qor_difference(
        sommelier::graph::task::OutputStyle::Regression,
        &targets,
        &out,
    );
    println!(
        "transferred '{}' → {} task, normalized QoR difference vs ground truth: {:.3}",
        downstream.name,
        downstream.task,
        qor
    );
    println!("(small is good; the base chosen by one query transfers without manual profiling)");
}
