//! Offline case study: DNN testing (paper Sections 2, 6; the DeepXplore-
//! style pipeline of Figure 8 right).
//!
//! ```sh
//! cargo run --release --example dnn_testing
//! ```
//!
//! Robustness testing finds "tricky" inputs by loading *similar but not
//! identical* models and exploring where their decisions diverge. With
//! Sommelier, the pipeline queries for N functionally equivalent variants
//! of the model under test and uses their disagreement as an adversarial-
//! input detector — no manual detector construction.

use sommelier::prelude::*;
use std::sync::Arc;

fn main() {
    // A hub with several same-task models at varying fidelity.
    let repo = Arc::new(InMemoryRepository::new());
    let mut engine = Sommelier::connect_default(Arc::clone(&repo) as Arc<dyn ModelRepository>);
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 2024);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.10);
    let mut rng = Prng::seed_from_u64(21);
    for (i, family) in [
        Family::Resnetish,
        Family::Vggish,
        Family::Inceptionish,
        Family::Resnextish,
        Family::Bertish,
    ]
    .into_iter()
    .enumerate()
    {
        let mut frng = rng.fork();
        let m = family.build(format!("{}-{i}", family.slug()), &teacher, &bias, &mut frng);
        engine.register(&m).expect("fresh key");
    }

    // The model under test arrives; query Sommelier for its functional
    // equivalents — they form the detector ensemble.
    let under_test = "resnetish-0";
    let query = format!("SELECT models 12 CORR {under_test} WITHIN 0.3 ORDER BY similarity");
    println!("query> {query}");
    // Synthesized candidates (segment-replaced twins of the tested model)
    // are skipped: a detector needs independently stored models.
    let ensemble_keys: Vec<String> = engine
        .query(&query)
        .expect("query runs")
        .into_iter()
        .filter(|r| !matches!(r.kind, sommelier::index::CandidateKind::Synthesized { .. }))
        .map(|r| r.key)
        .take(4)
        .collect();
    assert!(!ensemble_keys.is_empty(), "no stored equivalents found");
    println!("detector ensemble: {ensemble_keys:?}");

    let tested = repo.load(under_test).expect("stored");
    let ensemble: Vec<Model> = ensemble_keys
        .iter()
        .map(|k| repo.load(k).expect("stored"))
        .collect();

    // Sweep random probes; flag inputs where the tested model disagrees
    // with the ensemble majority — candidates near decision boundaries.
    let mut probe_rng = Prng::seed_from_u64(5);
    let n = 2000;
    let probe = Tensor::gaussian(n, tested.input_width(), 1.0, &mut probe_rng);
    let tested_out = execute(&tested, &probe).expect("executes");
    let ensemble_outs: Vec<Tensor> = ensemble
        .iter()
        .map(|m| execute(m, &probe).expect("executes"))
        .collect();

    let mut suspicious = Vec::new();
    for r in 0..n {
        let own = tested_out.argmax_row(r);
        let votes = ensemble_outs
            .iter()
            .filter(|o| o.argmax_row(r) != own)
            .count();
        // At least half of the equivalents disagree → the input sits near
        // a decision boundary the ensemble does not share.
        if votes * 2 >= ensemble_outs.len() {
            suspicious.push(r);
        }
    }

    println!(
        "\nscanned {n} inputs, flagged {} ({:.1}%) as near-decision-boundary",
        suspicious.len(),
        100.0 * suspicious.len() as f64 / n as f64
    );

    // Are the flags meaningful? Flagged inputs should be wrong far more
    // often than unflagged ones.
    let labels = teacher.labels(&probe);
    let err = |rows: &[usize]| {
        if rows.is_empty() {
            return 0.0;
        }
        let wrong = rows
            .iter()
            .filter(|&&r| tested_out.argmax_row(r) != labels[r])
            .count();
        wrong as f64 / rows.len() as f64
    };
    let flagged_err = err(&suspicious);
    let unflagged: Vec<usize> = (0..n).filter(|r| !suspicious.contains(r)).collect();
    let unflagged_err = err(&unflagged);
    println!(
        "error rate on flagged inputs: {:.1}%  |  on unflagged: {:.1}%",
        flagged_err * 100.0,
        unflagged_err * 100.0
    );
    println!("(the ensemble of query-selected equivalents concentrates the corner cases)");
}
