//! Minimal vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`, numeric
//! range strategies, tuple composition, `any::<T>()`, string-pattern
//! strategies (`"\\PC{m,n}"`), `collection::vec`, `sample::select`,
//! `ProptestConfig::with_cases`, and the `proptest!` /
//! `prop_assert*!` macros.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test RNG (seeded by the test name) and failing
//! inputs are *not* shrunk — the panic message reports the case number
//! instead.

pub mod test_runner {
    use std::fmt;

    /// Per-test deterministic RNG (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Deterministic seed derived from the test name, so each test
        /// sees a stable but distinct case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::seed_from_u64(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            // Multiply-shift; bias is negligible for test generation.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A failed property case (produced by `prop_assert*!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($t:ident $idx:tt),+))+) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — uniform values over `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// String-pattern strategies. Supports the patterns used in this
    /// workspace: `\PC` (any printable char) with an optional `{m,n}`
    /// repetition suffix. Unrecognised patterns fall back to short
    /// alphanumeric strings.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repetition(self).unwrap_or((0, 20));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| printable_char(rng)).collect()
        }
    }

    fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
        let inner = pattern.strip_suffix('}')?;
        let brace = inner.rfind('{')?;
        let mut parts = inner[brace + 1..].splitn(2, ',');
        let lo: usize = parts.next()?.trim().parse().ok()?;
        let hi: usize = parts.next()?.trim().parse().ok()?;
        (lo <= hi).then_some((lo, hi))
    }

    fn printable_char(rng: &mut TestRng) -> char {
        loop {
            let c = if rng.below(5) < 4 {
                // Mostly printable ASCII.
                char::from_u32(0x20 + rng.below(0x5f) as u32)
            } else {
                // Occasionally arbitrary non-control Unicode.
                char::from_u32(rng.below(0x1_0000) as u32)
            };
            if let Some(c) = c {
                if !c.is_control() {
                    return c;
                }
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select requires at least one option");
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniformly choose one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Bodies run `cases` times with fresh inputs;
/// `prop_assert*!` failures abort the case with a descriptive panic.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(@cfg $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(@cfg $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg $config:expr;) => {};
    (@cfg $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_items!(@cfg $config; $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{:?}` == `{:?}`",
                            l, r
                        )),
                    );
                }
            }
        }
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l != *r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(format!(
                            "assertion failed: `{:?}` != `{:?}`",
                            l, r
                        )),
                    );
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_select_work() {
        let mut rng = TestRng::seed_from_u64(8);
        let s = collection::vec(0u8..4, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
        let sel = sample::select(vec!["a", "b"]);
        let got = sel.generate(&mut rng);
        assert!(got == "a" || got == "b");
    }

    #[test]
    fn string_pattern_lengths() {
        let mut rng = TestRng::seed_from_u64(9);
        let s = "\\PC{0,40}";
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.chars().count() <= 40);
            assert!(v.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0u32..10, v in collection::vec(0u8..3, 1..4)) {
            prop_assert!(x < 10);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 9usize);
        }
    }
}
