//! Minimal vendored stand-in for the `criterion` benchmark harness.
//!
//! Provides the `Criterion`/`BenchmarkGroup`/`Bencher` API surface the
//! workspace's benches use, with a simple wall-clock measurement loop
//! and plain-text reporting. `--test` (as passed by `cargo bench --
//! --test`) runs each benchmark exactly once for smoke coverage.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Throughput annotation (reported, not aggregated).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// When true (`--test`), each benchmark body runs once.
    smoke_test: bool,
}

impl Criterion {
    /// Honour the subset of CLI flags the harness understands
    /// (`--test`); everything else (filters, `--bench`) is ignored.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.smoke_test = true;
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 50,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.effective_samples(),
            mean_ns: 0.0,
        };
        f(&mut b);
        self.report(&id, b.mean_ns);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.effective_samples(),
            mean_ns: 0.0,
        };
        f(&mut b, input);
        self.report(&id, b.mean_ns);
        self
    }

    pub fn finish(&mut self) {}

    fn effective_samples(&self) -> usize {
        if self.criterion.smoke_test {
            1
        } else {
            self.sample_size
        }
    }

    fn report(&self, id: &BenchmarkId, mean_ns: f64) {
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 / mean_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!("  ({:.1} MB/s)", n as f64 / mean_ns * 1e3)
            }
            _ => String::new(),
        };
        println!("{}/{}: {:.0} ns/iter{}", self.name, id.0, mean_ns, throughput);
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up round (also the only round in smoke-test mode).
        hint::black_box(f());
        if self.samples <= 1 {
            self.mean_ns = 0.0;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            hint::black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

/// Collect benchmark functions into a runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { smoke_test: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(100));
        let mut ran = 0;
        g.bench_function("f", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("w", 3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(ran >= 1);
    }
}
