//! Minimal vendored stand-in for the `serde` crate.
//!
//! The build environment has no access to a cargo registry, so the
//! workspace vendors a small, dependency-free serialization framework
//! that is API-compatible with the subset of serde this codebase uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on structs and enums (via the
//!   companion `serde_derive` proc-macro crate, re-exported here);
//! * `serde_json::{to_string, to_string_pretty, from_str}`.
//!
//! Unlike real serde, this implementation is not streaming: values are
//! serialized into an intermediate [`Value`] tree which the JSON layer
//! renders. That keeps the derive macro and the data model tiny while
//! preserving the same external JSON representation (externally tagged
//! enums, stringified numeric map keys, `null` for `None`).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Ordered key/value pairs; insertion order is preserved so that
    /// struct fields render in declaration order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be rendered into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    // serde_json accepts numeric map keys as strings.
                    Value::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| DeError::custom("invalid integer string"))?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| DeError::custom("negative integer for unsigned"))?,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    // serde_json accepts numeric map keys as strings.
                    Value::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| DeError::custom("invalid integer string"))?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        const LEN: usize = [$(stringify!($n)),+].len();
                        if items.len() != LEN {
                            return Err(DeError::custom(format!(
                                "expected tuple of {LEN}, got {} elements",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected tuple array, got {other:?}"
                    ))),
                }
            }
        }
    )+};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys must render to / parse from strings (the JSON object key
/// position). Mirrors serde_json's `KeyDeserializer` behaviour for
/// integers and string-like newtypes.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_num {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse::<$t>()
                    .map_err(|_| DeError::custom("invalid numeric map key"))
            }
        }
    )*};
}

impl_map_key_num!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Newtype wrappers over a `MapKey` (e.g. `Fingerprint(u64)`) can opt in
/// by serializing to `Value::UInt`/`Value::Str` and delegating here.
impl<K: MapKey + Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        // Deterministic output regardless of hash order.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(pairs)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Derive support helpers (used by generated code)
// ---------------------------------------------------------------------------

/// Fetch a struct field from a map value; missing fields fall back to
/// `Null` so `Option<T>` fields default to `None` (serde's behaviour for
/// omitted optional fields is an error, but serde_json round-trips never
/// omit them; treating missing-as-null keeps forward compatibility).
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get_field(name) {
        Some(f) => T::from_value(f)
            .map_err(|e| DeError::custom(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::custom(format!("missing field `{name}`"))),
    }
}

/// Expect `v` to be a map; derive-generated code uses this for struct
/// bodies and struct-variant bodies.
pub fn expect_map(v: &Value) -> Result<&[(String, Value)], DeError> {
    match v {
        Value::Map(pairs) => Ok(pairs),
        other => Err(DeError::custom(format!("expected object, got {other:?}"))),
    }
}

/// Expect `v` to be a sequence of exactly `n` items (tuple structs /
/// tuple variants).
pub fn expect_seq(v: &Value, n: usize) -> Result<&[Value], DeError> {
    match v {
        Value::Seq(items) if items.len() == n => Ok(items),
        Value::Seq(items) => Err(DeError::custom(format!(
            "expected {n} elements, got {}",
            items.len()
        ))),
        other => Err(DeError::custom(format!("expected array, got {other:?}"))),
    }
}

/// Decompose an externally tagged enum value into `(tag, payload)`.
/// Unit variants are plain strings; payload-carrying variants are
/// single-entry maps `{"Variant": payload}`.
pub fn enum_tag(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
    match v {
        Value::Str(s) => Ok((s.as_str(), None)),
        Value::Map(pairs) if pairs.len() == 1 => {
            Ok((pairs[0].0.as_str(), Some(&pairs[0].1)))
        }
        other => Err(DeError::custom(format!(
            "expected enum representation, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_is_none() {
        let v = Value::Map(vec![("a".into(), Value::Int(1))]);
        let got: Option<i64> = field(&v, "b").unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn numeric_map_keys_round_trip() {
        let mut m = HashMap::new();
        m.insert(42u64, "x".to_string());
        let v = m.to_value();
        let back: HashMap<u64, String> = HashMap::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn signed_from_string_key() {
        assert_eq!(i64::from_value(&Value::Str("-7".into())).unwrap(), -7);
    }

    #[test]
    fn tuple_round_trip() {
        let t = (1u32, "hi".to_string(), 2.5f64);
        let v = t.to_value();
        let back: (u32, String, f64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, t);
    }
}
