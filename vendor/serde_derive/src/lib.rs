//! Minimal vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! Parses the derive input by walking `proc_macro::TokenTree`s directly
//! (no `syn`/`quote` — the build environment has no registry access) and
//! emits impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits, which route through the `serde::Value` tree.
//!
//! Supported shapes — exactly what this workspace uses:
//! * structs with named fields;
//! * tuple structs (1-field newtypes serialize transparently, like real
//!   serde; larger tuples as arrays);
//! * unit structs;
//! * enums with unit / newtype / tuple / struct variants, externally
//!   tagged (`"Variant"` or `{"Variant": payload}`), matching serde's
//!   default representation.
//!
//! Not supported (panics with a clear message): generic types and
//! `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

enum Body {
    NamedStruct(Vec<String>),
    /// Tuple struct: field count and the textual type of each field.
    TupleStruct(Vec<String>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Input {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token utilities
// ---------------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skip attributes (`#[...]`, including expanded doc comments) and
/// visibility (`pub`, `pub(...)`) starting at `i`; returns the new index.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            // `#` followed by a bracket group.
            i += 1;
            if i < tokens.len()
                && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
            {
                i += 1;
            }
            continue;
        }
        if i < tokens.len() && is_ident(&tokens[i], "pub") {
            i += 1;
            if i < tokens.len()
                && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
            continue;
        }
        return i;
    }
}

/// Split a token slice on top-level commas, tracking `<`/`>` depth so
/// commas inside generic arguments (e.g. `BTreeMap<String, String>`)
/// do not split. Parens/brackets/braces arrive as atomic `Group`s.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Render tokens back to a compact string (for textual type matching).
fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let mut s = String::new();
    for t in tokens {
        s.push_str(&t.to_string());
    }
    s.replace(' ', "")
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!("derive(Serialize/Deserialize): expected `struct` or `enum`");
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive: expected type name, got `{other}`"),
    };
    i += 1;

    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("vendored serde_derive does not support generic types (deriving `{name}`)");
    }

    if is_enum {
        let body = match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("derive: expected enum body, got `{other}`"),
        };
        let variants = parse_variants(&body.into_iter().collect::<Vec<_>>());
        return Input {
            name,
            body: Body::Enum(variants),
        };
    }

    // Struct: named, tuple, or unit.
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>());
            Input {
                name,
                body: Body::NamedStruct(fields),
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let types: Vec<String> = split_commas(&inner)
                .into_iter()
                .map(|field| {
                    let start = skip_attrs_and_vis(&field, 0);
                    tokens_to_string(&field[start..])
                })
                .collect();
            Input {
                name,
                body: Body::TupleStruct(types),
            }
        }
        _ => Input {
            name,
            body: Body::UnitStruct,
        },
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_commas(tokens)
        .into_iter()
        .filter(|f| !f.is_empty())
        .map(|field| {
            let i = skip_attrs_and_vis(&field, 0);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("derive: expected field name, got `{other:?}`"),
            }
        })
        .collect()
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    split_commas(tokens)
        .into_iter()
        .filter(|v| !v.is_empty())
        .map(|var| {
            let i = skip_attrs_and_vis(&var, 0);
            let name = match var.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("derive: expected variant name, got `{other:?}`"),
            };
            let kind = match var.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantKind::Tuple(split_commas(&inner).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantKind::Struct(parse_named_fields(&inner))
                }
                _ => VariantKind::Unit,
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

const KEYABLE_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize", "String",
];

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let mut code = String::new();

    code.push_str(&format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n"
    ));
    match &parsed.body {
        Body::NamedStruct(fields) => {
            code.push_str("        serde::Value::Map(vec![\n");
            for f in fields {
                code.push_str(&format!(
                    "            (\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),\n"
                ));
            }
            code.push_str("        ])\n");
        }
        Body::TupleStruct(types) if types.len() == 1 => {
            // Newtype structs serialize transparently (serde default).
            code.push_str("        serde::Serialize::to_value(&self.0)\n");
        }
        Body::TupleStruct(types) => {
            code.push_str("        serde::Value::Seq(vec![\n");
            for i in 0..types.len() {
                code.push_str(&format!(
                    "            serde::Serialize::to_value(&self.{i}),\n"
                ));
            }
            code.push_str("        ])\n");
        }
        Body::UnitStruct => {
            code.push_str("        serde::Value::Null\n");
        }
        Body::Enum(variants) => {
            code.push_str("        match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        code.push_str(&format!(
                            "            {name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        code.push_str(&format!(
                            "            {name}::{vn}(f0) => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(f0))]),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        code.push_str(&format!(
                            "            {name}::{vn}({}) => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        code.push_str(&format!(
                            "            {name}::{vn} {{ {binds} }} => serde::Value::Map(vec![(\"{vn}\".to_string(), serde::Value::Map(vec![{}]))]),\n",
                            pairs.join(", ")
                        ));
                    }
                }
            }
            code.push_str("        }\n");
        }
    }
    code.push_str("    }\n}\n");

    // Newtype structs over a string/integer type also work as JSON map
    // keys (serde_json stringifies numeric keys). Emitted from the
    // Serialize derive only, to avoid duplicate impls when a type
    // derives both traits.
    if let Body::TupleStruct(types) = &parsed.body {
        if types.len() == 1 && KEYABLE_TYPES.contains(&types[0].as_str()) {
            code.push_str(&format!(
                "impl serde::MapKey for {name} {{\n\
                 \x20   fn to_key(&self) -> String {{ serde::MapKey::to_key(&self.0) }}\n\
                 \x20   fn from_key(key: &str) -> Result<Self, serde::DeError> {{ Ok({name}(serde::MapKey::from_key(key)?)) }}\n\
                 }}\n"
            ));
        }
    }

    code.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let mut code = String::new();

    code.push_str(&format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n"
    ));
    match &parsed.body {
        Body::NamedStruct(fields) => {
            code.push_str("        let _ = serde::expect_map(v)?;\n");
            code.push_str(&format!("        Ok({name} {{\n"));
            for f in fields {
                code.push_str(&format!("            {f}: serde::field(v, \"{f}\")?,\n"));
            }
            code.push_str("        })\n");
        }
        Body::TupleStruct(types) if types.len() == 1 => {
            code.push_str(&format!(
                "        Ok({name}(serde::Deserialize::from_value(v)?))\n"
            ));
        }
        Body::TupleStruct(types) => {
            let n = types.len();
            code.push_str(&format!(
                "        let items = serde::expect_seq(v, {n})?;\n"
            ));
            let elems: Vec<String> = (0..n)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            code.push_str(&format!("        Ok({name}({}))\n", elems.join(", ")));
        }
        Body::UnitStruct => {
            code.push_str(&format!("        let _ = v;\n        Ok({name})\n"));
        }
        Body::Enum(variants) => {
            code.push_str("        let (tag, payload) = serde::enum_tag(v)?;\n");
            code.push_str("        match tag {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        code.push_str(&format!(
                            "            \"{vn}\" => Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        code.push_str(&format!(
                            "            \"{vn}\" => {{\n\
                             \x20               let p = payload.ok_or_else(|| serde::DeError::custom(\"missing payload for variant `{vn}`\"))?;\n\
                             \x20               Ok({name}::{vn}(serde::Deserialize::from_value(p)?))\n\
                             \x20           }}\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        code.push_str(&format!(
                            "            \"{vn}\" => {{\n\
                             \x20               let p = payload.ok_or_else(|| serde::DeError::custom(\"missing payload for variant `{vn}`\"))?;\n\
                             \x20               let items = serde::expect_seq(p, {n})?;\n\
                             \x20               Ok({name}::{vn}({}))\n\
                             \x20           }}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: serde::field(p, \"{f}\")?"))
                            .collect();
                        code.push_str(&format!(
                            "            \"{vn}\" => {{\n\
                             \x20               let p = payload.ok_or_else(|| serde::DeError::custom(\"missing payload for variant `{vn}`\"))?;\n\
                             \x20               let _ = serde::expect_map(p)?;\n\
                             \x20               Ok({name}::{vn} {{ {} }})\n\
                             \x20           }}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            code.push_str(&format!(
                "            other => Err(serde::DeError::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n"
            ));
            code.push_str("        }\n");
        }
    }
    code.push_str("    }\n}\n");

    code.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}
