//! Minimal vendored stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde::Value` tree. Output format
//! matches real serde_json's compact (`to_string`) and pretty
//! (`to_string_pretty`) styles: no spaces in compact mode
//! (`{"key":1}`), two-space indentation in pretty mode.
//!
//! The parser is panic-free on arbitrary input: it returns `Err` for
//! malformed documents, enforces a nesting-depth limit, and rejects
//! trailing garbage.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON error (serialization or parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Maximum nesting depth accepted by the parser; prevents stack
/// exhaustion on adversarial inputs like `[[[[...`.
const MAX_DEPTH: usize = 128;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serialize to compact JSON (`{"key":1}` — no whitespace).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize to pretty JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Serialize directly into a generic `Value` tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a generic `Value` tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // `{:?}` round-trips f64 and always includes a fractional
            // or exponent part (`1.0`, `2.5e-3`) — valid JSON numbers.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parse a JSON document into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_document(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

fn parse_document(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("maximum nesting depth exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(pairs)),
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            let value = self.parse_value(depth + 1)?;
            items.push(value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::new("unpaired surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            let code =
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid surrogate pair"))?
                        } else {
                            char::from_u32(hi)
                                .ok_or_else(|| Error::new("invalid \\u escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(_) => return Err(Error::new("control character in string")),
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(Error::new("invalid number: no digits"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(Error::new("invalid number: no fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(Error::new("invalid number: no exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number bytes"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_has_no_spaces() {
        let v = Value::Map(vec![
            ("format_version".into(), Value::UInt(1)),
            ("name".into(), Value::Str("m".into())),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"format_version":1,"name":"m"}"#);
    }

    #[test]
    fn floats_keep_fraction() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn round_trip_nested() {
        let v = Value::Map(vec![(
            "a".into(),
            Value::Seq(vec![Value::Int(-3), Value::Null, Value::Bool(true)]),
        )]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trip() {
        let v = Value::Map(vec![("k".into(), Value::Seq(vec![Value::UInt(7)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} extra").is_err());
    }

    #[test]
    fn rejects_deep_nesting_without_panicking() {
        let s = "[".repeat(100_000);
        assert!(from_str::<Value>(&s).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1F600}".into());
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn surrogate_pair_parses() {
        let back: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(back, Value::Str("\u{1F600}".into()));
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in ["", "{", "[1,", "tru", "\"abc", "{\"a\":}", "01x", "-", "nul"] {
            assert!(from_str::<Value>(bad).is_err(), "input {bad:?} should fail");
        }
    }
}
