//! Crash-loop durability property: crash the store at *every* primitive
//! I/O operation of a mutation sequence and assert that a fresh process
//! reopening the directory always observes each artifact in its old or
//! its new state — never a torn intermediate.
//!
//! The sweep is seeded (`SOMMELIER_FAULT_SEED`, default 7) so the torn
//! prefix lengths vary across CI runs of the fault matrix while every
//! individual run stays deterministic and replayable.

use sommelier::fault::storage::{is_quarantine_name, is_temp_name};
use sommelier::fault::{FaultPlan, FaultyStorage, StdStorage, Storage};
use sommelier::index::persist;
use sommelier::prelude::*;
use sommelier::query::SnapshotRecovery;
use sommelier::runtime::metrics::counters;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const INDEX_FILE: &str = "sommelier.index.json";
const INDEX_FILE_BIN: &str = "sommelier.index.somb";

fn fault_seed() -> u64 {
    std::env::var("SOMMELIER_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sommelier-crash-{tag}-{}-{}",
        fault_seed(),
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Three same-family variants, so the index has real candidates.
fn build_models() -> Vec<Model> {
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 71);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.06);
    let mut rng = Prng::seed_from_u64(5);
    [
        ("series/alpha", 1.0, 4),
        ("beta", 0.75, 3),
        ("gamma", 0.5, 3),
    ]
    .into_iter()
    .map(|(name, width, depth)| {
        let mut frng = rng.fork();
        Family::Resnetish.build_scaled(
            name,
            &teacher,
            &bias,
            &FamilyScale::new(width, depth, 0.012),
            &mut frng,
        )
    })
    .collect()
}

fn small_config() -> SommelierConfig {
    let mut cfg = SommelierConfig {
        validation_rows: 128,
        ..SommelierConfig::default()
    };
    cfg.index.sample_size = 16;
    cfg
}

/// Publish alpha + beta and persist an index snapshot: the "old" state.
fn setup_base(dir: &Path, models: &[Model]) {
    let repo = Arc::new(OnDiskRepository::open(dir).unwrap());
    repo.publish("series/alpha", &models[0], false).unwrap();
    repo.publish("beta", &models[1], false).unwrap();
    let mut engine = Sommelier::connect(repo as Arc<dyn ModelRepository>, small_config());
    engine.index_existing().unwrap();
    engine.save_indices(&dir.join(INDEX_FILE)).unwrap();
}

/// The mutation whose every crash point the sweep exercises: an
/// overwriting publish, an exclusive publish, a chunked publish plus a
/// delta publish through the content-addressed chunk store, a JSON
/// snapshot save, and a binary (`.somb`) snapshot publish — every write
/// path goes through the same atomic-write protocol, so all must
/// survive a crash at any primitive op. Errors are swallowed —
/// mid-sequence crashes are the whole point.
fn mutate(dir: &Path, storage: Arc<dyn Storage>, alpha_v2: &Model, gamma: &Model) {
    let Ok(repo) = OnDiskRepository::open_with(dir, Arc::clone(&storage)) else {
        return;
    };
    let _ = repo.publish("series/alpha", alpha_v2, true);
    let _ = repo.publish("gamma", gamma, false);
    // Chunked-path coverage: a tiny fine-tune pair lands through the
    // chunk store — a full manifest, then a sparse delta against it.
    // Both under new keys, so the "old files never disappear"
    // invariant is unaffected; tiny tensors keep the op count sane.
    let fam_base = ModelBuilder::new("fam/base", TaskKind::Other, Shape::vector(4))
        .dense(2, &mut Prng::seed_from_u64(41))
        .build()
        .unwrap();
    let mut fam_ft = fam_base.renamed("fam/ft");
    let id = fam_ft.linear_layers()[0];
    let mut p = fam_ft.layer(id).params.clone();
    let w = p.weight.as_ref().unwrap();
    let mut data = w.as_slice().to_vec();
    data[0] += 0.5;
    p.weight = Some(Tensor::from_vec(w.rows(), w.cols(), data));
    fam_ft.set_params(id, p).unwrap();
    let _ = repo.publish_chunked("fam/base", &fam_base, false);
    let _ = repo.publish_delta("fam/ft", &fam_ft, "fam/base", false);
    // Re-persist the snapshot (same indices, bumped epoch): content is
    // irrelevant here, the write protocol under the crash is.
    let Ok(snapshot) = persist::read_snapshot(&dir.join(INDEX_FILE)) else {
        return;
    };
    let _ = persist::save_with(
        &*storage,
        &snapshot.semantic,
        &snapshot.resource,
        2,
        &dir.join(INDEX_FILE),
    );
    let _ = persist::save_binary_with(
        &*storage,
        &snapshot.semantic,
        &snapshot.resource,
        2,
        &dir.join(INDEX_FILE_BIN),
    );
}

/// Recursive snapshot of the store, keyed by `/`-separated relative
/// path — the chunk store lives in a `chunks/` subdirectory.
fn capture(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, prefix: &str, out: &mut BTreeMap<String, Vec<u8>>) {
        for e in std::fs::read_dir(root).unwrap().flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            let rel = if prefix.is_empty() {
                name
            } else {
                format!("{prefix}/{name}")
            };
            if e.path().is_dir() {
                walk(&e.path(), &rel, out);
            } else {
                out.insert(rel, std::fs::read(e.path()).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, "", &mut out);
    out
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).unwrap();
    for e in std::fs::read_dir(src).unwrap().flatten() {
        if e.path().is_dir() {
            copy_dir(&e.path(), &dst.join(e.file_name()));
        } else {
            std::fs::copy(e.path(), dst.join(e.file_name())).unwrap();
        }
    }
}

#[test]
fn reopen_after_crash_at_every_op_sees_old_or_new_state_never_torn() {
    let seed = fault_seed();
    let models = build_models();
    // The overwriting publish must actually change alpha's bytes.
    let alpha_v2 = {
        let mut m = models[2].clone();
        m.name = "series/alpha".into();
        m
    };

    let base = scratch("base");
    setup_base(&base, &models);
    let old_state = capture(&base);

    // Fault-free run: the "new" state and the sweep's op count.
    let committed = scratch("committed");
    copy_dir(&base, &committed);
    let counting = Arc::new(FaultyStorage::new(StdStorage, FaultPlan::count_only()));
    mutate(
        &committed,
        Arc::clone(&counting) as Arc<dyn Storage>,
        &alpha_v2,
        &models[2],
    );
    let total_ops = counting.ops();
    assert!(total_ops >= 10, "mutation sequence spans {total_ops} ops");
    let new_state = capture(&committed);
    assert_ne!(
        old_state.get("series%2Falpha.model.json"),
        new_state.get("series%2Falpha.model.json"),
        "overwrite must change the stored bytes"
    );
    assert!(new_state.contains_key("gamma.model.json"));
    assert!(
        new_state.contains_key(INDEX_FILE_BIN),
        "fault-free run must publish the binary snapshot"
    );
    assert!(new_state.contains_key("fam%2Fbase.manifest.json"));
    assert!(new_state.contains_key("fam%2Fft.manifest.json"));
    assert!(
        new_state.keys().any(|k| k.starts_with("chunks/")),
        "chunked publish must write content-addressed chunks"
    );

    let work = scratch("work");
    for crash_op in 0..total_ops {
        copy_dir(&base, &work);
        let faulty = Arc::new(FaultyStorage::new(
            StdStorage,
            FaultPlan::crash_at(seed, crash_op),
        ));
        mutate(
            &work,
            Arc::clone(&faulty) as Arc<dyn Storage>,
            &alpha_v2,
            &models[2],
        );
        assert!(faulty.is_dead(), "crash point {crash_op} must fire");

        // "Restart": plain std storage, like a fresh process would use.
        let after = capture(&work);
        for (name, bytes) in &after {
            // Stranded temps are expected crash debris (fsck's job),
            // never part of the visible store state. Keys are relative
            // paths now; the debris pattern is on the file name.
            let file = name.rsplit('/').next().unwrap_or(name);
            if is_temp_name(file) || is_quarantine_name(file) {
                continue;
            }
            let old = old_state.get(name);
            let new = new_state.get(name);
            assert!(
                old == Some(bytes) || new == Some(bytes),
                "crash at op {crash_op}: '{name}' is neither old nor new state \
                 ({} bytes; old {:?}, new {:?})",
                bytes.len(),
                old.map(Vec::len),
                new.map(Vec::len),
            );
        }
        for name in old_state.keys() {
            assert!(
                after.contains_key(name),
                "crash at op {crash_op}: '{name}' disappeared"
            );
        }

        // The repository reopens and serves every listed key whole, and
        // the snapshot (old or new) still parses.
        let repo = OnDiskRepository::open(&work).unwrap();
        for key in repo.try_keys().unwrap() {
            repo.load(&key)
                .unwrap_or_else(|e| panic!("crash at op {crash_op}: load '{key}': {e}"));
        }
        persist::read_snapshot(&work.join(INDEX_FILE))
            .unwrap_or_else(|e| panic!("crash at op {crash_op}: snapshot unreadable: {e}"));
        // The binary snapshot is either absent (crash before its
        // rename) or a complete image that decodes — never torn.
        if work.join(INDEX_FILE_BIN).exists() {
            persist::read_snapshot(&work.join(INDEX_FILE_BIN)).unwrap_or_else(|e| {
                panic!("crash at op {crash_op}: binary snapshot unreadable: {e}")
            });
        }
    }

    for dir in [&base, &committed, &work] {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// The binary format is a pure re-encoding: a JSON snapshot and its
/// `.somb` compaction must serve byte-identical query results at any
/// job count — the f64 payloads survive both round-trips exactly, and
/// the slab is re-derived the same way on both load paths.
#[test]
fn json_and_binary_snapshots_serve_byte_identical_results() {
    let models = build_models();
    let json_dir = scratch("fmt-json");
    setup_base(&json_dir, &models);

    // Compact a copy into the binary format, the way the CLI would.
    let bin_dir = scratch("fmt-bin");
    copy_dir(&json_dir, &bin_dir);
    let snapshot = persist::read_snapshot(&bin_dir.join(INDEX_FILE)).unwrap();
    persist::save_snapshot_as(
        &StdStorage,
        &snapshot,
        sommelier::index::SnapshotFormat::Binary,
        &bin_dir.join(INDEX_FILE_BIN),
    )
    .unwrap();
    std::fs::remove_file(bin_dir.join(INDEX_FILE)).unwrap();

    let serve = |dir: &Path, file: &str, jobs: usize| -> String {
        let repo = Arc::new(OnDiskRepository::open(dir).unwrap());
        let config = SommelierConfig {
            jobs,
            ..small_config()
        };
        let engine = Sommelier::connect_with_indices(
            repo as Arc<dyn ModelRepository>,
            config,
            &dir.join(file),
        )
        .unwrap();
        let results = engine
            .query("SELECT models 3 CORR beta WITHIN 0.5 ORDER BY similarity")
            .unwrap();
        assert!(!results.is_empty(), "query must have content to compare");
        format!("{results:?}")
    };

    let baseline = serve(&json_dir, INDEX_FILE, 1);
    for jobs in [1usize, 4, 8] {
        assert_eq!(
            serve(&json_dir, INDEX_FILE, jobs),
            baseline,
            "JSON snapshot diverged at jobs={jobs}"
        );
        assert_eq!(
            serve(&bin_dir, INDEX_FILE_BIN, jobs),
            baseline,
            "binary snapshot diverged at jobs={jobs}"
        );
    }

    for dir in [&json_dir, &bin_dir] {
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn corrupted_snapshot_is_quarantined_and_rebuilt_not_a_query_error() {
    let models = build_models();
    let dir = scratch("recover");
    setup_base(&dir, &models);

    // Tear the snapshot mid-file, as a crashed non-atomic writer would.
    let path = dir.join(INDEX_FILE);
    let whole = std::fs::read(&path).unwrap();
    std::fs::write(&path, &whole[..whole.len() / 2]).unwrap();

    let rebuilds = counters::get("recovery.rebuilds");
    let quarantined = counters::get("recovery.quarantined");
    let repo = Arc::new(OnDiskRepository::open(&dir).unwrap());
    let (engine, outcome) = Sommelier::connect_or_recover(
        repo as Arc<dyn ModelRepository>,
        small_config(),
        &path,
    )
    .expect("recovery must not surface as an error");
    match &outcome {
        SnapshotRecovery::RebuiltQuarantined(q) => {
            assert!(q.exists(), "quarantine file kept as evidence");
        }
        other => panic!("expected quarantine+rebuild, got {other:?}"),
    }
    assert!(counters::get("recovery.rebuilds") > rebuilds);
    assert!(counters::get("recovery.quarantined") > quarantined);

    // The rebuilt engine answers queries and re-persisted a snapshot
    // that now loads cleanly.
    let results = engine
        .query("SELECT models 2 CORR beta WITHIN 0.2")
        .expect("recovered engine serves queries");
    assert!(!results.is_empty());
    assert!(persist::read_snapshot(&path).is_ok());

    std::fs::remove_dir_all(&dir).ok();
}
