//! Integration: consistency invariants of the index structures under the
//! *production* analyzer (real equivalence measurements, not mocks).

use sommelier::index::CandidateKind;
use sommelier::prelude::*;
use std::sync::Arc;

fn engine(sample_size: usize) -> (Sommelier, Vec<String>) {
    let repo = Arc::new(InMemoryRepository::new());
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 1234);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.08);
    let mut cfg = SommelierConfig {
        validation_rows: 128,
        ..SommelierConfig::default()
    };
    cfg.index.sample_size = sample_size;
    cfg.index.segments = false;
    let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);
    let mut rng = Prng::seed_from_u64(5);
    let mut names = Vec::new();
    for (i, family) in [
        Family::Resnetish,
        Family::Vggish,
        Family::Inceptionish,
        Family::Mobilenetish,
        Family::Bertish,
        Family::Efficientnetish,
    ]
    .into_iter()
    .enumerate()
    {
        for size in 0..2 {
            let name = format!("{}-{size}", family.slug());
            let mut frng = rng.fork();
            let m = family.build_scaled(
                &name,
                &teacher,
                &bias,
                &FamilyScale::new(0.8 + 0.4 * size as f64, 3 + i % 2, 0.015),
                &mut frng,
            );
            engine.register(&m).unwrap();
            names.push(name);
        }
    }
    (engine, names)
}

#[test]
fn candidate_lists_are_sorted_and_self_free() {
    let (engine, names) = engine(16);
    for name in &names {
        let cands = engine.semantic_index().candidates_of(name);
        assert!(!cands.is_empty(), "{name} has no candidates");
        for w in cands.windows(2) {
            assert!(w[0].score >= w[1].score, "unsorted list for {name}");
        }
        assert!(
            cands.iter().all(|c| c.key != *name),
            "{name} lists itself as a candidate"
        );
        for c in cands {
            assert!(c.score >= 0.0 && c.score <= 1.0);
            assert!(c.diff_bound >= 0.0);
            assert!((c.score - (1.0 - c.diff_bound).max(0.0)).abs() < 1e-12);
        }
    }
}

#[test]
fn transitive_bounds_dominate_direct_measurements() {
    // Bounds recorded transitively must never be tighter than the direct
    // measurement would be (they are conservative by construction:
    // d(X,Z) ≤ d(X,Y) + d(Y,Z)).
    let (engine, names) = engine(3); // force transitive derivation
    for name in &names {
        let transitive: Vec<(String, f64)> = engine
            .semantic_index()
            .candidates_of(name)
            .iter()
            .filter(|c| matches!(c.kind, CandidateKind::Transitive { .. }))
            .map(|c| (c.key.clone(), c.diff_bound))
            .collect();
        for (other, bound) in transitive {
            let measured = engine.measure_diff(name, &other).unwrap();
            assert!(
                bound + 1e-9 >= measured,
                "{name}→{other}: transitive bound {bound} < measured {measured}"
            );
        }
    }
}

#[test]
fn resource_index_agrees_with_exhaustive_oracle() {
    let (engine, names) = engine(8);
    // Clone the index into exhaustive mode and compare on a grid of
    // constraints.
    let mut oracle = engine.resource_index().clone();
    oracle.exhaustive = true;
    for &frac in &[0.25f64, 0.5, 1.0, 2.0] {
        let base = engine
            .resource_index()
            .profile_of(&names[0])
            .unwrap()
            .memory_mb;
        let c = sommelier::index::ResourceConstraint {
            max_memory_mb: Some(base * frac),
            max_gflops: None,
            max_latency_ms: None,
        };
        let mut fast = engine.resource_index().query(&c);
        let mut slow = oracle.query(&c);
        fast.sort();
        slow.sort();
        assert_eq!(fast, slow, "divergence at frac {frac}");
    }
}

#[test]
fn query_results_never_violate_their_plan() {
    let (engine, names) = engine(8);
    for &thr in &[0.2f64, 0.5, 0.8] {
        for &mem in &[0.3f64, 0.7, 1.0] {
            let q = Query::corr(names[0].clone())
                .within(thr)
                .memory_at_most_frac(mem)
                .top(20);
            let results = engine.query_ast(&q).unwrap();
            let budget = mem
                * engine
                    .resource_index()
                    .profile_of(&names[0])
                    .unwrap()
                    .memory_mb;
            for r in &results {
                assert!(r.score >= thr - 1e-9, "score violates threshold");
                assert!(
                    r.profile.memory_mb <= budget + 1e-9,
                    "memory violates budget"
                );
            }
        }
    }
}
