//! Integration: parallel index construction is bit-for-bit deterministic.
//!
//! The build pipeline plans sequentially, fans the pairwise analyses out
//! across the thread pool, and applies the results in plan order; every
//! per-pair RNG is seeded from a stable hash of the pair. The persisted
//! `sommelier.index.json` must therefore be byte-identical at any
//! `--jobs` level, and with the pairwise cache enabled or disabled.

use sommelier::prelude::*;
use std::sync::Arc;

/// Publish a deterministic fleet of models into a fresh repository.
fn populate(repo: &InMemoryRepository) {
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 77);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.08);
    let mut rng = Prng::seed_from_u64(21);
    for (i, family) in [
        Family::Resnetish,
        Family::Mobilenetish,
        Family::Vggish,
        Family::Efficientnetish,
    ]
    .into_iter()
    .enumerate()
    {
        for size in 0..2 {
            let name = format!("{}-{size}", family.slug());
            let mut frng = rng.fork();
            let m = family.build_scaled(
                &name,
                &teacher,
                &bias,
                &FamilyScale::new(0.8 + 0.3 * size as f64, 3 + i % 2, 0.015),
                &mut frng,
            );
            repo.publish(&name, &m, true).unwrap();
        }
    }
}

/// Build all indices with the given knobs and return the snapshot bytes.
fn snapshot(jobs: usize, cache_cap: usize) -> Vec<u8> {
    let repo = Arc::new(InMemoryRepository::new());
    populate(&repo);
    let mut cfg = SommelierConfig {
        validation_rows: 64,
        jobs,
        cache_cap,
        ..SommelierConfig::default()
    };
    cfg.index.sample_size = 3;
    cfg.index.segments = false;
    let mut engine = Sommelier::connect(repo as Arc<dyn ModelRepository>, cfg);
    let indexed = engine.index_existing().unwrap();
    assert_eq!(indexed, 8, "all published models should be indexed");
    let path = std::env::temp_dir().join(format!(
        "sommelier-determinism-{}-j{jobs}-c{cache_cap}.index.json",
        std::process::id()
    ));
    engine.save_indices(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn snapshots_are_byte_identical_across_job_counts_and_cache_modes() {
    // jobs=1 + cache off is the sequential reference implementation.
    let reference = snapshot(1, 0);
    assert!(!reference.is_empty());
    // Parallel build, cache off.
    assert_eq!(reference, snapshot(8, 0), "jobs=8 diverged from jobs=1");
    // Parallel build, cache on (first build: all misses, but insertion
    // through the cache must not perturb results).
    assert_eq!(
        reference,
        snapshot(4, 4096),
        "cache-enabled build diverged from the sequential reference"
    );
}

#[test]
fn query_results_are_identical_across_job_counts() {
    let run = |jobs: usize| -> Vec<(String, u64)> {
        let repo = Arc::new(InMemoryRepository::new());
        populate(&repo);
        let mut cfg = SommelierConfig {
            validation_rows: 64,
            jobs,
            ..SommelierConfig::default()
        };
        cfg.index.sample_size = 3;
        cfg.index.segments = false;
        let mut engine = Sommelier::connect(repo as Arc<dyn ModelRepository>, cfg);
        engine.index_existing().unwrap();
        engine
            .query("SELECT models 5 CORR resnetish-0 ON memory <= 500% WITHIN 0.95")
            .unwrap()
            .into_iter()
            .map(|r| (r.key, r.score.to_bits()))
            .collect()
    };
    let sequential = run(1);
    assert_eq!(sequential, run(8), "parallel scoring reordered results");
}
