//! Integration: sanity of the TF-Hub-style catalog — every model in the
//! 163-model / 30-series hub must be valid, executable, serializable, and
//! behave like a model hub (series grow in cost, larger members are more
//! accurate, tasks are covered).

use sommelier::graph::cost::model_cost;
use sommelier::graph::serde_model;
use sommelier::prelude::*;
use sommelier::runtime::metrics::{qor_against_truth, GroundTruth};
use sommelier::zoo::series::{catalog_model_count, tfhub_catalog};
use std::collections::BTreeSet;

#[test]
fn every_catalog_model_is_valid_and_executable() {
    let catalog = tfhub_catalog(99);
    assert_eq!(catalog.len(), 30);
    assert_eq!(catalog_model_count(&catalog), 163);

    let mut names = BTreeSet::new();
    let mut tasks = BTreeSet::new();
    for series in &catalog {
        tasks.insert(series.task);
        for m in &series.models {
            assert!(names.insert(m.name.clone()), "duplicate name {}", m.name);
            // Execute on a tiny probe: must be finite and correctly
            // shaped.
            let mut rng = Prng::seed_from_u64(1);
            let x = Tensor::gaussian(2, m.input_width(), 1.0, &mut rng);
            let out = execute(m, &x).expect("catalog model executes");
            assert_eq!(out.cols(), m.output_width());
            assert!(out.as_slice().iter().all(|v| v.is_finite()));
        }
    }
    // All six paper task categories appear.
    assert_eq!(tasks.len(), 6);
}

#[test]
fn series_members_grow_in_cost() {
    let catalog = tfhub_catalog(99);
    for series in &catalog {
        let flops: Vec<u64> = series.models.iter().map(|m| model_cost(m).flops).collect();
        for w in flops.windows(2) {
            assert!(
                w[1] > w[0],
                "series {} is not monotone in cost: {flops:?}",
                series.name
            );
        }
    }
}

#[test]
fn larger_members_are_at_least_as_accurate_at_the_ends() {
    // Per-series: the largest member must beat the smallest on the
    // series' own task (intermediate members may wiggle with noise).
    let catalog = tfhub_catalog(99);
    let mut wins = 0usize;
    let mut total = 0usize;
    for series in &catalog {
        let teacher = Teacher::for_task(series.task, 99);
        let mut rng = Prng::seed_from_u64(7);
        let x = Tensor::gaussian(300, teacher.spec.input_width, 1.0, &mut rng);
        let truth = match series.task.output_style() {
            sommelier::graph::task::OutputStyle::Classification => {
                GroundTruth::Labels(teacher.labels(&x))
            }
            sommelier::graph::task::OutputStyle::Regression => {
                GroundTruth::Targets(teacher.outputs(&x))
            }
        };
        let qor = |m: &sommelier::graph::Model| {
            let out = execute(m, &x).expect("runs");
            qor_against_truth(series.task.output_style(), &out, &truth)
        };
        let small = qor(series.models.first().expect("non-empty"));
        let large = qor(series.models.last().expect("non-empty"));
        total += 1;
        if large >= small {
            wins += 1;
        }
    }
    assert!(
        wins * 10 >= total * 9,
        "only {wins}/{total} series have their largest member at least as accurate as their smallest"
    );
}

#[test]
fn catalog_models_round_trip_through_the_interchange_format() {
    let catalog = tfhub_catalog(99);
    // Spot-check one model per series (all 163 would be slow in CI).
    for series in &catalog {
        let m = &series.models[series.models.len() / 2];
        let restored = serde_model::from_json(&serde_model::to_json(m)).expect("round trip");
        assert_eq!(m, &restored);
    }
}

#[test]
fn metadata_records_provenance_for_every_model() {
    let catalog = tfhub_catalog(99);
    for series in &catalog {
        for m in &series.models {
            assert_eq!(m.metadata["series"], series.name);
            assert_eq!(m.metadata["dataset"], series.dataset);
            assert!(m.metadata.contains_key("base"));
            assert!(m.metadata.contains_key("family"));
        }
    }
}
