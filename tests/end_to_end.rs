//! End-to-end integration: zoo → repository → engine → query → load →
//! execute, spanning every crate in the workspace.

use sommelier::prelude::*;
use sommelier::index::CandidateKind;
use std::sync::Arc;

fn hub() -> (Sommelier, Arc<InMemoryRepository>, Teacher) {
    let repo = Arc::new(InMemoryRepository::new());
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 404);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.06);
    let mut cfg = SommelierConfig {
        validation_rows: 128,
        ..SommelierConfig::default()
    };
    cfg.index.sample_size = 16;
    let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);
    let mut rng = Prng::seed_from_u64(1);
    for (name, family, width, depth) in [
        ("resnetish-big", Family::Resnetish, 1.25, 5),
        ("resnetish-mid", Family::Resnetish, 1.0, 4),
        ("resnetish-small", Family::Resnetish, 0.5, 3),
        ("vggish-mid", Family::Vggish, 1.0, 5),
        ("mobilenetish-tiny", Family::Mobilenetish, 0.5, 2),
    ] {
        let mut frng = rng.fork();
        let m = family.build_scaled(
            name,
            &teacher,
            &bias,
            &FamilyScale::new(width, depth, 0.012),
            &mut frng,
        );
        engine.register(&m).unwrap();
    }
    (engine, repo, teacher)
}

#[test]
fn query_result_is_loadable_and_functional() {
    let (engine, repo, teacher) = hub();
    let results = engine
        .query("SELECT model CORR resnetish-big ON memory <= 95% WITHIN 0.4")
        .unwrap();
    assert!(!results.is_empty());
    let best = &results[0];

    // The returned key loads from the repository and actually performs
    // the task.
    let model = repo.load(&best.key).unwrap();
    let mut rng = Prng::seed_from_u64(9);
    let x = Tensor::gaussian(300, model.input_width(), 1.0, &mut rng);
    let labels = teacher.labels(&x);
    let out = sommelier::runtime::execute(&model, &x).unwrap();
    let acc = sommelier::runtime::metrics::top1_accuracy(&out, &labels);
    assert!(acc > 0.5, "returned model accuracy {acc}");
}

#[test]
fn returned_model_agrees_with_reference_as_scored() {
    let (engine, _repo, _) = hub();
    let results = engine
        .query("SELECT models 3 CORR resnetish-big WITHIN 0.3")
        .unwrap();
    for r in results
        .iter()
        .filter(|r| !matches!(r.kind, CandidateKind::Synthesized { .. }))
    {
        let measured = engine.measure_diff("resnetish-big", &r.key).unwrap();
        // The indexed diff bound must dominate the measured empirical
        // difference on the engine's own probe (up to the transitive
        // slack, which only ever loosens the bound).
        assert!(
            r.diff_bound + 1e-9 >= measured,
            "{}: bound {} < measured {}",
            r.key,
            r.diff_bound,
            measured
        );
    }
}

#[test]
fn resource_constraints_are_honored_end_to_end() {
    let (engine, _repo, _) = hub();
    let ref_mem = engine
        .resource_index()
        .profile_of("resnetish-big")
        .unwrap()
        .memory_mb;
    let results = engine
        .query("SELECT models 10 CORR resnetish-big ON memory <= 60% WITHIN 0.0 ORDER BY memory")
        .unwrap();
    assert!(!results.is_empty());
    for r in &results {
        assert!(
            r.profile.memory_mb <= 0.6 * ref_mem + 1e-9,
            "{} violates the memory budget",
            r.key
        );
    }
}

#[test]
fn index_persistence_survives_restart() {
    let (engine, _repo, _) = hub();
    let path = std::env::temp_dir().join(format!("somm-e2e-{}.json", std::process::id()));
    sommelier::index::persist::save(
        engine.semantic_index(),
        engine.resource_index(),
        engine.epoch(),
        &path,
    )
    .unwrap();
    let (sem, res) = sommelier::index::persist::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(sem.len(), engine.semantic_index().len());
    assert_eq!(res.len(), engine.resource_index().len());
    // Lookups on the reloaded index match the live one.
    let live = engine.semantic_index().lookup_key("resnetish-big", 0.3);
    let reloaded = sem.lookup_key("resnetish-big", 0.3);
    assert_eq!(live.len(), reloaded.len());
}

#[test]
fn on_disk_repository_integrates_with_engine() {
    let dir = std::env::temp_dir().join(format!("somm-e2e-repo-{}", std::process::id()));
    let repo = Arc::new(OnDiskRepository::open(&dir).unwrap());
    let teacher = Teacher::for_task(TaskKind::SentimentAnalysis, 17);
    let bias = DatasetBias::new(&teacher, "imdb", 0.05);
    let cfg = SommelierConfig {
        validation_rows: 64,
        ..SommelierConfig::default()
    };
    let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);
    let mut rng = Prng::seed_from_u64(3);
    for i in 0..3 {
        let mut frng = rng.fork();
        let m = Family::Bertish.build_scaled(
            format!("bertish-{i}"),
            &teacher,
            &bias,
            &FamilyScale::new(1.0 - 0.25 * i as f64, 3, 0.01),
            &mut frng,
        );
        engine.register(&m).unwrap();
    }
    let results = engine
        .query("SELECT model CORR bertish-0 WITHIN 0.3 ORDER BY flops")
        .unwrap();
    assert!(!results.is_empty());
    // Files really exist on disk.
    assert_eq!(repo.keys().len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_existing_picks_up_unindexed_repository_content() {
    let repo = Arc::new(InMemoryRepository::new());
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 5);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
    let mut rng = Prng::seed_from_u64(2);
    for i in 0..3 {
        let mut frng = rng.fork();
        let m = Family::Resnetish.build_scaled(
            format!("pre-{i}"),
            &teacher,
            &bias,
            &FamilyScale::new(1.0, 3, 0.01),
            &mut frng,
        );
        repo.publish(&m.name, &m, false).unwrap();
    }
    let cfg = SommelierConfig {
        validation_rows: 64,
        ..SommelierConfig::default()
    };
    let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);
    assert!(engine.is_empty());
    let added = engine.index_existing().unwrap();
    assert_eq!(added, 3);
    assert_eq!(engine.len(), 3);
    let again = engine.index_existing().unwrap();
    assert_eq!(again, 0, "re-indexing is idempotent");
}
