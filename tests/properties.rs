//! Property-based tests over the core data structures and invariants,
//! spanning crates (proptest).

use proptest::prelude::*;
use sommelier::equiv::propagation::{measured_norms, segment_diff_bound_with_norms};
use sommelier::equiv::segment::find_matched_segments;
use sommelier::graph::cost::model_cost;
use sommelier::graph::serde_model;
use sommelier::graph::{Fingerprint, Model, ModelBuilder, TaskKind};
use sommelier::runtime::{execute, execute_traced};
use sommelier::tensor::{linalg, ops, Prng, Shape, Tensor};

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut rng = Prng::seed_from_u64(seed);
        Tensor::gaussian(r, c, 1.0, &mut rng)
    })
}

/// A random small sequential model: seeded layer plan + seeded weights.
fn model_strategy() -> impl Strategy<Value = Model> {
    (
        2usize..24,                        // input width
        proptest::collection::vec(0u8..6, 1..6), // layer plan
        any::<u64>(),
    )
        .prop_map(|(input, plan, seed)| {
            let mut rng = Prng::seed_from_u64(seed);
            let mut b = ModelBuilder::new("prop", TaskKind::Other, Shape::vector(input));
            for op in plan {
                match op {
                    0 => {
                        let units = 1 + (rng.index(16));
                        b.dense(units, &mut rng);
                    }
                    1 => {
                        b.relu();
                    }
                    2 => {
                        b.tanh();
                    }
                    3 => {
                        let w = 1 + rng.index(3);
                        b.max_pool(w);
                    }
                    4 => {
                        b.scale(0.05, &mut rng);
                    }
                    _ => {
                        b.l2_normalize();
                    }
                };
            }
            b.build().expect("builder output validates")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(a in tensor_strategy(8), seed in any::<u64>()) {
        let mut rng = Prng::seed_from_u64(seed);
        let b = Tensor::gaussian(a.cols(), 5, 1.0, &mut rng);
        let c = Tensor::gaussian(a.cols(), 5, 1.0, &mut rng);
        let lhs = ops::matmul(&a, &b.zip_with(&c, |x, y| x + y));
        let rhs = ops::matmul(&a, &b).zip_with(&ops::matmul(&a, &c), |x, y| x + y);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs().max(y.abs())));
        }
    }

    #[test]
    fn transpose_is_involutive(t in tensor_strategy(12)) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn softmax_rows_are_distributions(t in tensor_strategy(10)) {
        let s = ops::softmax(&t);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn relu_and_pool_are_non_expansive(a in tensor_strategy(10), seed in any::<u64>()) {
        let mut rng = Prng::seed_from_u64(seed);
        let b = Tensor::gaussian(a.rows(), a.cols(), 1.0, &mut rng);
        // ‖relu(a) − relu(b)‖ ≤ ‖a − b‖ row-wise (1-Lipschitz).
        let ra = ops::relu(&a);
        let rb = ops::relu(&b);
        for r in 0..a.rows() {
            let d_in: f64 = a.row(r).iter().zip(b.row(r)).map(|(x, y)| ((x - y) as f64).powi(2)).sum();
            let d_out: f64 = ra.row(r).iter().zip(rb.row(r)).map(|(x, y)| ((x - y) as f64).powi(2)).sum();
            prop_assert!(d_out <= d_in + 1e-6);
        }
        let pa = ops::mean_pool(&a, 2);
        let pb = ops::mean_pool(&b, 2);
        for r in 0..a.rows() {
            let d_in: f64 = a.row(r).iter().zip(b.row(r)).map(|(x, y)| ((x - y) as f64).powi(2)).sum();
            let d_out: f64 = pa.row(r).iter().zip(pb.row(r)).map(|(x, y)| ((x - y) as f64).powi(2)).sum();
            prop_assert!(d_out <= d_in + 1e-6);
        }
    }

    #[test]
    fn spectral_norm_dominates_amplification(t in tensor_strategy(10), seed in any::<u64>()) {
        let sigma = linalg::spectral_norm_default(&t);
        let mut rng = Prng::seed_from_u64(seed);
        let v: Vec<f32> = (0..t.cols()).map(|_| rng.gaussian() as f32).collect();
        let out = linalg::matvec(&t, &v);
        prop_assert!(linalg::l2_norm(&out) <= sigma * linalg::l2_norm(&v) * (1.0 + 1e-3) + 1e-9);
    }

    #[test]
    fn random_models_execute_with_inferred_widths(m in model_strategy(), seed in any::<u64>()) {
        let mut rng = Prng::seed_from_u64(seed);
        let x = Tensor::gaussian(3, m.input_width(), 1.0, &mut rng);
        let out = execute(&m, &x).expect("validated models execute");
        prop_assert_eq!(out.cols(), m.output_width());
        prop_assert_eq!(out.rows(), 3);
        prop_assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn serde_round_trip_preserves_model_and_fingerprint(m in model_strategy()) {
        let restored = serde_model::from_json(&serde_model::to_json(&m)).expect("round trip");
        prop_assert_eq!(Fingerprint::of_model(&m), Fingerprint::of_model(&restored));
        prop_assert_eq!(m, restored);
    }

    #[test]
    fn fingerprint_ignores_name_but_not_weights(m in model_strategy(), seed in any::<u64>()) {
        let renamed = m.renamed("completely-different");
        prop_assert_eq!(Fingerprint::of_model(&m), Fingerprint::of_model(&renamed));
        // Perturbing any linear layer's weights must change the full
        // fingerprint but never the structural one.
        let linear = m.linear_layers();
        if let Some(&id) = linear.first() {
            let mut rng = Prng::seed_from_u64(seed);
            let mut p = m.layer(id).params.clone();
            if let Some(w) = p.weight.take() {
                let noise = Tensor::gaussian(w.rows(), w.cols(), 0.5, &mut rng);
                p.weight = Some(w.zip_with(&noise, |a, b| a + b));
                let mut m2 = m.clone();
                m2.set_params(id, p).expect("same shapes");
                prop_assert_ne!(Fingerprint::of_model(&m), Fingerprint::of_model(&m2));
                prop_assert_eq!(Fingerprint::structural(&m), Fingerprint::structural(&m2));
            }
        }
    }

    #[test]
    fn cost_accounting_is_monotone_in_batch_free_structure(m in model_strategy()) {
        let c = model_cost(&m);
        prop_assert_eq!(c.param_bytes as usize, m.param_count() * 4);
        // Activations: every layer contributes its width.
        let widths: u64 = (0..m.num_layers())
            .map(|i| m.width_of(sommelier::graph::LayerId(i)) as u64 * 4)
            .sum();
        prop_assert_eq!(c.activation_bytes, widths);
    }

    #[test]
    fn measured_segment_bound_dominates_observed_difference(
        base_seed in any::<u64>(),
        noise in 0.0f64..0.3,
    ) {
        // Two same-structure models whose weights differ by `noise`; for
        // every matched segment the propagated bound must dominate the
        // observed end-to-end output difference when the segments cover
        // the whole model.
        let mut rng = Prng::seed_from_u64(base_seed);
        let host = ModelBuilder::new("h", TaskKind::Other, Shape::vector(8))
            .dense(8, &mut rng)
            .relu()
            .dense(6, &mut rng)
            .build()
            .expect("valid");
        let mut donor = host.clone();
        let mut nrng = Prng::seed_from_u64(base_seed ^ 0xabc);
        for id in host.linear_layers() {
            let mut p = host.layer(id).params.clone();
            if let Some(w) = p.weight.take() {
                let delta = Tensor::gaussian(w.rows(), w.cols(), noise, &mut nrng);
                p.weight = Some(w.zip_with(&delta, |a, b| a + b));
            }
            donor.set_params(id, p).expect("same shape");
        }
        let segs = find_matched_segments(&host, &donor, 2);
        prop_assert!(!segs.is_empty());
        let x = Tensor::gaussian(16, 8, 1.0, &mut rng);
        let trace = execute_traced(&host, &x).expect("runs");
        // The single chain covers the whole model (≤ MAX_SEGMENT_LEN),
        // so the bound applies to the final output difference.
        if segs.len() == 1 && segs[0].len() == host.num_layers() - 1 {
            let norms = measured_norms(&host, &segs[0], &trace);
            let bound = segment_diff_bound_with_norms(&host, &donor, &segs[0], &norms);
            let oa = execute(&host, &x).expect("runs");
            let ob = execute(&donor, &x).expect("runs");
            for r in 0..x.rows() {
                let d: f64 = oa.row(r).iter().zip(ob.row(r))
                    .map(|(p, q)| ((p - q) as f64).powi(2)).sum();
                prop_assert!(d.sqrt() <= bound + 1e-6, "row {} diff {} > bound {}", r, d.sqrt(), bound);
            }
        }
    }

    #[test]
    fn model_codec_never_panics_on_corrupted_input(
        m in model_strategy(),
        cut in 0usize..2000,
        junk in "\\PC{0,40}",
    ) {
        // Truncations, injections, and arbitrary garbage must yield
        // errors, never panics.
        let json = serde_model::to_json(&m);
        if let Some(truncated) = json.get(..cut.min(json.len())) {
            let _ = serde_model::from_json(truncated);
        }
        let _ = serde_model::from_json(&junk);
        let injected = format!("{}{}", junk, json);
        let _ = serde_model::from_json(&injected);
    }

    #[test]
    fn lsh_self_collision_is_certain(v in proptest::collection::vec(-10.0f64..10.0, 4), seed in any::<u64>()) {
        let mut lsh = sommelier::index::CosineLsh::new(4, Default::default(), seed);
        lsh.insert(&v, 42);
        prop_assert_eq!(lsh.candidates(&v), vec![42]);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(text in "\\PC{0,80}") {
        // Arbitrary printable strings may fail to parse, but must never
        // panic the parser or lexer.
        let _ = sommelier::query::parse(&text);
    }

    #[test]
    fn parser_never_panics_on_keyword_soup(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "SELECT", "model", "models", "CORR", "TASK", "ON", "AND",
                "WITHIN", "ORDER", "BY", "EXEC", "memory", "flops",
                "latency", "similarity", "<", "<=", "=", "%", "MB", "ms",
                "0.5", "3", "resnetish-50",
            ]),
            0..12,
        )
    ) {
        let text = words.join(" ");
        let _ = sommelier::query::parse(&text);
    }

    #[test]
    fn query_text_round_trips_through_parser(
        threshold in 0.0f64..1.0,
        mem in 1.0f64..99.0,
        n in 1usize..9,
    ) {
        let text = format!(
            "SELECT models {n} CORR some-model ON memory <= {mem:.2}% WITHIN {threshold:.3} ORDER BY flops"
        );
        let q = sommelier::query::parse(&text).expect("valid query");
        prop_assert_eq!(q.select, sommelier::query::SelectKind::Models(n));
        let expected: f64 = format!("{:.3}", threshold).parse().unwrap();
        prop_assert!((q.threshold - expected).abs() < 1e-12);
    }
}
