//! Concurrency stress for the lock-free snapshot query path: readers
//! keep querying through cloned [`SommelierReader`]s while the engine
//! mutates and republishes, and every observed result set must be
//! internally consistent with exactly one publication epoch.

use sommelier::prelude::*;
use sommelier::query::SommelierReader;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Five same-family variants; `toggle` (the last) is the model the
/// mutator will repeatedly unregister and reregister.
fn fleet_engine() -> (Sommelier, Vec<String>, Model) {
    let repo = Arc::new(InMemoryRepository::new());
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 404);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.06);
    let mut cfg = SommelierConfig {
        validation_rows: 64,
        jobs: 8,
        ..SommelierConfig::default()
    };
    cfg.index.sample_size = 8;
    cfg.index.segments = false;
    let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);
    let mut rng = Prng::seed_from_u64(7);
    let mut names = Vec::new();
    let mut toggle_model = None;
    for (i, width) in [1.25_f64, 1.0, 0.75, 0.5, 0.9].into_iter().enumerate() {
        let mut frng = rng.fork();
        let m = Family::Resnetish.build_scaled(
            format!("stress-{i}"),
            &teacher,
            &bias,
            &FamilyScale::new(width, 3, 0.012),
            &mut frng,
        );
        engine.register(&m).unwrap();
        names.push(m.name.clone());
        if i == 4 {
            toggle_model = Some(m);
        }
    }
    (engine, names, toggle_model.expect("five models built"))
}

#[test]
fn concurrent_queries_never_block_on_reindex_or_mix_epochs() {
    let (mut engine, names, toggle_model) = fleet_engine();
    let toggle = toggle_model.name.clone();
    let query = format!("SELECT models 10 CORR {} WITHIN 0.95", names[0]);
    // The toggle is registered at the setup epoch; each mutator cycle
    // below removes it (epoch +1, absent) and re-adds it (epoch +1,
    // present), so presence alternates with epoch parity.
    let base_epoch = engine.epoch();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..3 {
            let reader: SommelierReader = engine.reader().clone();
            let query = &query;
            let toggle = &toggle;
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut batches = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let texts =
                        vec![query.clone(), query.clone(), query.clone()];
                    let items = reader.query_batch(&texts);
                    assert_eq!(items.len(), 3);
                    let epoch = items[0].epoch;
                    // The whole batch is served from ONE pinned
                    // snapshot — no item may see another epoch.
                    assert!(
                        items.iter().all(|i| i.epoch == epoch),
                        "mixed epochs within one batch"
                    );
                    // Publication is monotone; a reader can lag but
                    // never travel back.
                    assert!(epoch >= last_epoch, "epoch went backwards");
                    last_epoch = epoch;
                    for item in &items {
                        let results = item.results.as_ref().expect("query runs");
                        // At odd parity the toggle is unregistered: a
                        // result naming it would be a torn (mixed-epoch)
                        // view of the indices.
                        if (epoch - base_epoch) % 2 == 1 {
                            assert!(
                                results.iter().all(|r| {
                                    r.key != *toggle
                                        && !r.key.contains(&format!("+{toggle}"))
                                }),
                                "epoch {epoch} served unregistered '{toggle}'"
                            );
                        }
                    }
                    batches += 1;
                }
                batches
            }));
        }

        // Mutator: churn the published snapshot while readers run.
        for _ in 0..15 {
            assert!(engine.unregister(&toggle));
            engine.reregister(&toggle_model).unwrap();
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for handle in readers {
            let batches = handle.join().expect("reader thread panicked");
            assert!(batches > 0, "reader never completed a batch");
        }
    });
    assert_eq!(engine.epoch(), base_epoch + 30);
}

#[test]
fn frozen_snapshot_batches_are_byte_identical_across_lane_counts() {
    let (engine, names, _) = fleet_engine();
    let texts: Vec<String> = names
        .iter()
        .map(|n| format!("SELECT models 10 CORR {n} WITHIN 0.95 ORDER BY similarity"))
        .collect();
    let render = |reader: &SommelierReader| {
        reader
            .query_batch(&texts)
            .into_iter()
            .map(|item| format!("{}:{:?}", item.epoch, item.results))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let lane1 = render(&engine.reader().with_pool(1));
    let lane4 = render(&engine.reader().with_pool(4));
    let lane8 = render(&engine.reader().with_pool(8));
    assert_eq!(lane1, lane4, "lanes 1 vs 4 diverged");
    assert_eq!(lane4, lane8, "lanes 4 vs 8 diverged");
}

#[test]
fn pinned_snapshots_survive_mutations_without_blocking() {
    let (mut engine, names, toggle_model) = fleet_engine();
    let toggle = &toggle_model.name;
    let reader = engine.reader().clone();
    let pinned = reader.snapshot();
    assert!(pinned.semantic.contains(toggle));
    for _ in 0..5 {
        assert!(engine.unregister(toggle));
        engine.reregister(&toggle_model).unwrap();
    }
    // The pinned snapshot is untouched by ten publications since.
    assert!(pinned.semantic.contains(toggle));
    assert_eq!(reader.epoch(), pinned.epoch + 10);
    // And a live query still runs against the newest epoch.
    let items = reader.query_batch(&[format!(
        "SELECT models 5 CORR {} WITHIN 0.95",
        names[1]
    )]);
    assert_eq!(items[0].epoch, pinned.epoch + 10);
    assert!(items[0].results.is_ok());
}
