//! Integration: the full online pipeline of paper Section 7.1 — register
//! a model series, query Sommelier for serving variants, simulate the
//! cluster under load, and check the end-to-end claims hold.

use sommelier::prelude::*;
use sommelier::serving::{simulate, ClusterConfig};
use sommelier::zoo::series::build_series;
use std::sync::Arc;

fn serving_setup() -> (Vec<ModelChoice>, Vec<f64>) {
    let repo = Arc::new(InMemoryRepository::new());
    let mut engine = Sommelier::connect_default(Arc::clone(&repo) as Arc<dyn ModelRepository>);
    let mut rng = Prng::seed_from_u64(11);
    let series = build_series(
        "pipe",
        Family::Resnetish,
        TaskKind::ImageRecognition,
        "imagenet",
        5,
        99,
        0.08,
        &mut rng,
    );
    for m in &series.models {
        engine.register(m).unwrap();
    }
    let reference = &series.models.last().unwrap().name;
    let equivalents = engine
        .query(&format!(
            "SELECT models 10 CORR {reference} WITHIN 0.3 ORDER BY latency"
        ))
        .unwrap();
    assert!(
        equivalents.len() >= 2,
        "the query must surface serving variants"
    );

    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 99);
    let mut prng = Prng::seed_from_u64(5);
    let probe = Tensor::gaussian(300, teacher.spec.input_width, 1.0, &mut prng);
    let labels = teacher.labels(&probe);
    let mut keys: Vec<String> = equivalents
        .iter()
        .filter(|r| !matches!(r.kind, sommelier::index::CandidateKind::Synthesized { .. }))
        .map(|r| r.key.clone())
        .collect();
    keys.push(reference.clone());
    let gflops =
        |k: &str| engine.resource_index().profile_of(k).unwrap().gflops;
    let max_g = keys.iter().map(|k| gflops(k)).fold(0.0f64, f64::max);
    let mut variants: Vec<ModelChoice> = keys
        .iter()
        .map(|k| {
            let model = repo.load(k).unwrap();
            let out = execute(&model, &probe).unwrap();
            ModelChoice {
                name: k.clone(),
                service_time_s: 0.002 + 0.078 * gflops(k) / max_g,
                accuracy: sommelier::runtime::metrics::top1_accuracy(&out, &labels),
            }
        })
        .collect();
    variants.sort_by(|a, b| a.service_time_s.partial_cmp(&b.service_time_s).unwrap());

    let capacity = 1.0 / variants.last().unwrap().service_time_s;
    let workload = Workload::bursty(120.0, 0.3 * capacity, 0.92 * capacity);
    let mut arng = Prng::seed_from_u64(3);
    (variants, workload.arrivals(&mut arng))
}

#[test]
fn switching_beats_fixed_on_tail_latency_without_losing_accuracy() {
    let (variants, arrivals) = serving_setup();
    let biggest = variants.len() - 1;
    let sla = 1.5 * variants[biggest].service_time_s;
    let fixed = simulate(
        &ClusterConfig {
            servers: 1,
            policy: Policy::Fixed { index: biggest },
        },
        &arrivals,
        &variants,
    );
    let switching = simulate(
        &ClusterConfig {
            servers: 1,
            policy: Policy::Switching { sla_s: sla },
        },
        &arrivals,
        &variants,
    );
    let f = fixed.stats();
    let s = switching.stats();
    assert!(
        s.p90 < f.p90 / 2.0,
        "switching p90 {:.3}s must beat fixed p90 {:.3}s by >=2x",
        s.p90,
        f.p90
    );
    assert!(
        fixed.mean_accuracy - switching.mean_accuracy < 0.05,
        "accuracy cost must be small: {} vs {}",
        fixed.mean_accuracy,
        switching.mean_accuracy
    );
}

#[test]
fn accuracy_floor_policy_trades_latency_for_quality() {
    let (variants, arrivals) = serving_setup();
    let biggest = variants.len() - 1;
    let sla = 1.5 * variants[biggest].service_time_s;
    let floor_acc = variants[biggest].accuracy - 0.03;
    let plain = simulate(
        &ClusterConfig {
            servers: 1,
            policy: Policy::Switching { sla_s: sla },
        },
        &arrivals,
        &variants,
    );
    let floored = simulate(
        &ClusterConfig {
            servers: 1,
            policy: Policy::SwitchingFloor {
                sla_s: sla,
                min_accuracy: floor_acc,
            },
        },
        &arrivals,
        &variants,
    );
    assert!(
        floored.mean_accuracy >= plain.mean_accuracy - 1e-9,
        "floor must not lower accuracy: {} vs {}",
        floored.mean_accuracy,
        plain.mean_accuracy
    );
    assert!(
        floored.stats().p90 >= plain.stats().p90,
        "quality floor cannot also be faster"
    );
}

#[test]
fn combined_scale_out_and_switching_dominates_each_alone() {
    let (variants, arrivals) = serving_setup();
    let biggest = variants.len() - 1;
    let sla = 1.5 * variants[biggest].service_time_s;
    let run = |servers: usize, policy: Policy| {
        simulate(
            &ClusterConfig { servers, policy },
            &arrivals,
            &variants,
        )
        .stats()
        .p90
    };
    let scale_out = run(2, Policy::Fixed { index: biggest });
    let switching = run(1, Policy::Switching { sla_s: sla });
    let combined = run(2, Policy::Switching { sla_s: sla });
    assert!(combined <= scale_out + 1e-9);
    assert!(combined <= switching + 1e-9);
}
