//! Integration: the deep audit against sabotaged zoos.
//!
//! The contract under test (the PR's acceptance bar):
//!
//! 1. a clean seeded-and-indexed zoo audits to **zero** findings;
//! 2. every [`sabotage::Defect`] planted into a copy of that zoo is
//!    detected — the audit reports the defect's expected code;
//! 3. the JSON report is byte-identical at `--jobs 1/4/8`;
//! 4. a warm re-audit answers every unchanged model from the
//!    fingerprint memo.
//!
//! The zoo is built exactly the way the CLI builds one (`sommelier
//! seed` + `sommelier index`): same family rotation, same
//! `build_series` parameters, same default `SommelierConfig`, indices
//! persisted to `sommelier.index.json`.

use sommelier::lint::{Auditor, LintContext};
use sommelier::prelude::*;
use sommelier::zoo::sabotage::{self, Defect};
use sommelier::zoo::series::build_series;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use proptest::prelude::*;

const INDEX_FILE: &str = "sommelier.index.json";

/// Fresh scratch directory under the target dir (kept out of the repo
/// root and unique per label so parallel tests never collide).
fn scratch(label: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("audit-{label}"));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Seed and index a zoo at `dir`, mirroring `sommelier seed` +
/// `sommelier index` with `n_series` series.
fn seed_zoo(dir: &Path, n_series: usize, seed: u64) {
    let repo = Arc::new(OnDiskRepository::open(dir).unwrap());
    let families = [
        Family::Bitish,
        Family::Efficientnetish,
        Family::Resnetish,
        Family::Mobilenetish,
        Family::Vggish,
        Family::Inceptionish,
    ];
    let mut rng = Prng::seed_from_u64(seed);
    for i in 0..n_series {
        let family = families[i % families.len()];
        let series = build_series(
            &format!("{}-v{}", family.slug(), i / families.len() + 1),
            family,
            TaskKind::ImageRecognition,
            "imagenet",
            5,
            seed,
            0.12,
            &mut rng,
        );
        for m in &series.models {
            repo.publish(&m.name, m, true).unwrap();
        }
    }
    let mut engine = Sommelier::connect(repo as Arc<dyn ModelRepository>, SommelierConfig::default());
    engine.index_existing().unwrap();
    engine.save_indices(&dir.join(INDEX_FILE)).unwrap();
}

/// Flat-copy `src` into a fresh scratch dir named `label`.
fn copy_zoo(src: &Path, label: &str) -> PathBuf {
    let dst = scratch(label);
    for entry in std::fs::read_dir(src).unwrap() {
        let path = entry.unwrap().path();
        if path.is_file() {
            std::fs::copy(&path, dst.join(path.file_name().unwrap())).unwrap();
        }
    }
    dst
}

fn audit_codes(dir: &Path, jobs: usize) -> Vec<String> {
    let ctx = LintContext::from_repo_dir(dir).unwrap();
    let outcome = Auditor::new(jobs).audit(&ctx);
    outcome
        .report
        .diagnostics
        .iter()
        .map(|d| d.code.clone())
        .collect()
}

#[test]
fn sabotage_detection_matrix() {
    let golden = scratch("golden");
    seed_zoo(&golden, 2, 42);

    // 1. The clean zoo is silent — the audit's false-positive floor.
    let clean = audit_codes(&golden, 2);
    assert!(clean.is_empty(), "clean zoo raised findings: {clean:?}");

    // 2. Every planted defect is found under its expected code.
    for defect in Defect::ALL {
        let copy = copy_zoo(&golden, defect.name());
        let what = sabotage::plant(&copy, defect)
            .unwrap_or_else(|e| panic!("planting {defect:?} failed: {e}"));
        let codes = audit_codes(&copy, 2);
        assert!(
            codes.iter().any(|c| c == defect.expected_code()),
            "{defect:?} ({what}) not detected: audit raised {codes:?}, \
             expected {}",
            defect.expected_code()
        );
    }
}

#[test]
fn audit_reports_are_byte_identical_across_job_counts() {
    let dir = scratch("determinism");
    seed_zoo(&dir, 1, 7);
    // A sabotaged zoo gives the report actual content to keep stable.
    sabotage::plant(&dir, Defect::NonFiniteWeights).unwrap();
    sabotage::plant(&dir, Defect::DeadSubgraph).unwrap();

    let json: Vec<String> = [1usize, 4, 8]
        .iter()
        .map(|&jobs| {
            let ctx = LintContext::from_repo_dir(&dir).unwrap();
            Auditor::new(jobs).audit(&ctx).report.to_json()
        })
        .collect();
    assert!(!json[0].is_empty() && json[0] != "[]", "report unexpectedly empty");
    assert_eq!(json[0], json[1], "jobs=1 vs jobs=4 reports differ");
    assert_eq!(json[1], json[2], "jobs=4 vs jobs=8 reports differ");
}

#[test]
fn warm_reaudit_hits_the_fingerprint_memo() {
    let dir = scratch("warm");
    seed_zoo(&dir, 1, 11);
    let ctx = LintContext::from_repo_dir(&dir).unwrap();
    let auditor = Auditor::new(4);

    let cold = auditor.audit(&ctx);
    assert_eq!(cold.models_analyzed, ctx.models.len());
    assert_eq!(cold.memo_hits, 0);

    let warm = auditor.audit(&ctx);
    assert_eq!(warm.models_analyzed, 0, "warm audit re-analyzed models");
    assert_eq!(warm.memo_hits, ctx.models.len());
    assert_eq!(cold.report, warm.report, "memoized report drifted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Clean zoos are silent for arbitrary seeds, and a planted defect
    /// chosen by the seed is always caught. Three cases keep the
    /// end-to-end seeding cost bounded; the fixed-seed matrix above
    /// covers every defect deterministically.
    #[test]
    fn seeded_zoos_audit_clean_and_sabotage_is_caught(seed in 0u64..1000) {
        let label = format!("prop-{seed}");
        let dir = scratch(&label);
        seed_zoo(&dir, 1, seed);
        let clean = audit_codes(&dir, 2);
        prop_assert!(clean.is_empty(), "seed {} raised {:?}", seed, clean);

        let defect = Defect::ALL[(seed % Defect::ALL.len() as u64) as usize];
        sabotage::plant(&dir, defect).map_err(TestCaseError::fail)?;
        let codes = audit_codes(&dir, 2);
        prop_assert!(
            codes.iter().any(|c| c == defect.expected_code()),
            "seed {}: {:?} not detected in {:?}",
            seed, defect, codes
        );
    }
}
