//! Graph interpreter, latency model, and resource profiling.
//!
//! This crate is the reproduction's stand-in for the deep-learning engine
//! runtime the paper interfaces with (TensorFlow/CUDA). It provides:
//!
//! * [`executor`] — a forward interpreter over the `sommelier-graph` IR,
//!   with optional per-layer activation traces (the segment-equivalence
//!   assessment injects noise at intermediate layers, paper Section 4.2);
//! * [`latency`] — the Paleo-style per-operator latency table and
//!   longest-path estimator the paper describes for platform-aware metrics
//!   (Section 5.3);
//! * [`measure`] — wall-clock per-layer profiling and device calibration
//!   (the paper's locally-measured platform metrics, Section 5.5);
//! * [`profile`] — hardware-independent resource vectors (memory, FLOPs)
//!   plus execution-setting-dependent variation (device, batch size),
//!   feeding the resource index;
//! * [`metrics`] — quality-of-result measurement: top-1 accuracy,
//!   inter-model agreement (paper Figure 3), and the default mean-l2 QoR
//!   difference for regression outputs (Section 4.1).

pub mod executor;
pub mod latency;
pub mod measure;
pub mod metrics;
pub mod profile;

pub use executor::{execute, execute_traced, ExecError};
pub use latency::{DeviceProfile, LatencyModel};
pub use profile::{ExecSetting, ResourceProfile};
