//! Quality-of-result (QoR) measurement.
//!
//! Paper Section 4.1: "the QoR goal is just the optimization objective for
//! model training. Otherwise, we compute the l2 distance between the
//! outputs from the two models on the same input, then average this
//! distance over the dataset as the default QoR difference." For
//! classification tasks QoR is top-1 accuracy and the inter-model metric
//! is the *agreement ratio* — the statistic behind Figure 3's observation
//! that models agree with each other more than they agree with the ground
//! truth.

use sommelier_graph::task::OutputStyle;
use sommelier_tensor::{ops, Tensor};

/// Top-1 predictions for a batch of classification outputs.
pub fn top1_predictions(outputs: &Tensor) -> Vec<usize> {
    (0..outputs.rows()).map(|r| outputs.argmax_row(r)).collect()
}

/// Fraction of rows whose top-1 prediction matches the label.
/// Panics if lengths disagree; returns 1.0 for an empty batch.
pub fn top1_accuracy(outputs: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(outputs.rows(), labels.len(), "labels must match batch");
    if labels.is_empty() {
        return 1.0;
    }
    let correct = top1_predictions(outputs)
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Fraction of rows where two models produce the same top-1 prediction
/// (the off-diagonal entries of paper Figure 3).
pub fn agreement_ratio(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.rows(), b.rows(), "batches must match");
    if a.rows() == 0 {
        return 1.0;
    }
    let pa = top1_predictions(a);
    let pb = top1_predictions(b);
    let same = pa.iter().zip(&pb).filter(|(x, y)| x == y).count();
    same as f64 / a.rows() as f64
}

/// The default QoR *difference* between two models' outputs on the same
/// inputs, per the task's output style:
///
/// * classification → disagreement ratio (1 − agreement);
/// * regression → mean row-wise l2 distance, normalized by the mean output
///   norm so thresholds are scale-free.
pub fn qor_difference(style: OutputStyle, a: &Tensor, b: &Tensor) -> f64 {
    match style {
        OutputStyle::Classification => 1.0 - agreement_ratio(a, b),
        OutputStyle::Regression => {
            let raw = ops::mean_row_l2_distance(a, b);
            let scale = mean_row_norm(a).max(1e-12);
            raw / scale
        }
    }
}

fn mean_row_norm(t: &Tensor) -> f64 {
    if t.rows() == 0 {
        return 0.0;
    }
    let total: f64 = (0..t.rows())
        .map(|r| {
            t.row(r)
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>()
                .sqrt()
        })
        .sum();
    total / t.rows() as f64
}

/// QoR (higher is better) of outputs against ground truth, per style:
/// classification → accuracy; regression → `1 / (1 + normalized error)` so
/// it lands in `(0, 1]`.
pub fn qor_against_truth(style: OutputStyle, outputs: &Tensor, truth: &GroundTruth) -> f64 {
    match (style, truth) {
        (OutputStyle::Classification, GroundTruth::Labels(labels)) => {
            top1_accuracy(outputs, labels)
        }
        (OutputStyle::Regression, GroundTruth::Targets(targets)) => {
            let err = qor_difference(OutputStyle::Regression, targets, outputs);
            1.0 / (1.0 + err)
        }
        _ => panic!("ground-truth kind does not match the task's output style"),
    }
}

/// Ground truth for a validation batch.
#[derive(Clone, Debug)]
pub enum GroundTruth {
    /// Class labels for classification tasks.
    Labels(Vec<usize>),
    /// Target vectors for regression tasks.
    Targets(Tensor),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(rows, cols, v)
    }

    #[test]
    fn top1_accuracy_counts_matches() {
        let out = t(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert!((top1_accuracy(&out, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert!((top1_accuracy(&out, &[0, 1, 0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agreement_is_symmetric_and_reflexive() {
        let a = t(2, 2, vec![0.9, 0.1, 0.2, 0.8]);
        let b = t(2, 2, vec![0.7, 0.3, 0.9, 0.1]);
        assert_eq!(agreement_ratio(&a, &a), 1.0);
        assert_eq!(agreement_ratio(&a, &b), agreement_ratio(&b, &a));
        assert!((agreement_ratio(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classification_qor_difference_is_disagreement() {
        let a = t(2, 2, vec![0.9, 0.1, 0.2, 0.8]);
        let b = t(2, 2, vec![0.7, 0.3, 0.9, 0.1]);
        assert!(
            (qor_difference(OutputStyle::Classification, &a, &b) - 0.5).abs() < 1e-12
        );
    }

    #[test]
    fn regression_qor_difference_is_scale_free() {
        let a = t(1, 2, vec![3.0, 4.0]); // norm 5
        let b = t(1, 2, vec![3.0, 3.0]); // distance 1
        let d = qor_difference(OutputStyle::Regression, &a, &b);
        assert!((d - 0.2).abs() < 1e-6);
        // Scaling both outputs leaves the normalized difference unchanged.
        let a10 = a.map(|x| x * 10.0);
        let b10 = b.map(|x| x * 10.0);
        let d10 = qor_difference(OutputStyle::Regression, &a10, &b10);
        assert!((d - d10).abs() < 1e-6);
    }

    #[test]
    fn qor_against_truth_regression_in_unit_interval() {
        let target = t(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let perfect = qor_against_truth(
            OutputStyle::Regression,
            &target,
            &GroundTruth::Targets(target.clone()),
        );
        assert!((perfect - 1.0).abs() < 1e-12);
        let noisy = t(2, 2, vec![0.5, 0.5, 0.5, 0.5]);
        let q = qor_against_truth(
            OutputStyle::Regression,
            &noisy,
            &GroundTruth::Targets(target),
        );
        assert!(q > 0.0 && q < 1.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_ground_truth_panics() {
        let out = t(1, 2, vec![1.0, 0.0]);
        let _ = qor_against_truth(
            OutputStyle::Classification,
            &out,
            &GroundTruth::Targets(out.clone()),
        );
    }

    #[test]
    fn empty_batches_are_vacuously_perfect() {
        let e = Tensor::zeros(0, 3);
        assert_eq!(top1_accuracy(&e, &[]), 1.0);
        assert_eq!(agreement_ratio(&e, &e), 1.0);
    }
}
