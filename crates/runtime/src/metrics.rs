//! Quality-of-result (QoR) measurement.
//!
//! Paper Section 4.1: "the QoR goal is just the optimization objective for
//! model training. Otherwise, we compute the l2 distance between the
//! outputs from the two models on the same input, then average this
//! distance over the dataset as the default QoR difference." For
//! classification tasks QoR is top-1 accuracy and the inter-model metric
//! is the *agreement ratio* — the statistic behind Figure 3's observation
//! that models agree with each other more than they agree with the ground
//! truth.

use sommelier_graph::task::OutputStyle;
use sommelier_tensor::{ops, Tensor};

/// Process-wide named monotonic counters.
///
/// The reproduction's subsystems (the pairwise-analysis cache, the
/// parallel index build, the query engine) publish operational counters
/// here so tooling — the CLI, the benchmark harness, tests — can read
/// them without threading handles through every layer. Counters are
/// *observability*, not state: nothing in the system reads a counter to
/// make a decision, so the registry being process-global cannot affect
/// results.
///
/// Well-known names (kept in sync with README's metrics table):
/// `pairwise_cache.hits`, `pairwise_cache.misses`,
/// `pairwise_cache.evictions`, `pairwise_cache.entries`,
/// `index.pair_analyses`, `index.models_indexed`,
/// `query.candidates_scored`; from the durability layer:
/// `recovery.loads`, `recovery.rebuilds`, `recovery.quarantined`,
/// `recovery.resave_failures`, `recovery.retries`; and from the deep
/// audit: `audit.runs`, `audit.models_analyzed` (fingerprint-memo
/// misses), `audit.memo_hits`, `audit.findings_error`,
/// `audit.findings_warn`, `audit.findings_info`.
pub mod counters {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    type Registry = Mutex<BTreeMap<String, Arc<AtomicU64>>>;

    static REGISTRY: OnceLock<Registry> = OnceLock::new();

    fn registry() -> &'static Registry {
        REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    /// Get (or create) the counter registered under `name`. The handle
    /// can be cached and bumped without further registry locking.
    pub fn counter(name: &str) -> Arc<AtomicU64> {
        let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Add `delta` to the named counter.
    pub fn add(name: &str, delta: u64) {
        counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrite the named counter (used by subsystems that publish a
    /// snapshot of internally tracked atomics).
    pub fn set(name: &str, value: u64) {
        counter(name).store(value, Ordering::Relaxed);
    }

    /// Current value of the named counter (0 if never registered).
    pub fn get(name: &str) -> u64 {
        let map = registry().lock().unwrap_or_else(|e| e.into_inner());
        map.get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// All registered counters, sorted by name.
    ///
    /// Tear-resistant: the registry lock keeps the *set* of counters
    /// stable, and the values are re-read until two consecutive passes
    /// agree — a snapshot taken while writers are quiescent (the normal
    /// case: end of a bench phase, after a batch) is guaranteed
    /// internally consistent, and a snapshot racing live writers
    /// converges to a single coherent read instead of mixing reads that
    /// are many updates apart. (True cross-counter atomicity is
    /// impossible while handles update lock-free; bounded stabilization
    /// is the strongest property compatible with never slowing the hot
    /// path.)
    pub fn snapshot() -> Vec<(String, u64)> {
        let map = registry().lock().unwrap_or_else(|e| e.into_inner());
        let read = || -> Vec<(String, u64)> {
            map.iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::SeqCst)))
                .collect()
        };
        let mut prev = read();
        for _ in 0..4 {
            let next = read();
            if next == prev {
                break;
            }
            prev = next;
        }
        prev
    }

    /// Zero every registered counter. Existing handles stay valid (the
    /// atomics are reset in place, not replaced), so cached handles and
    /// the registry can never disagree. Bench runs call this so each
    /// phase starts from a clean slate.
    pub fn reset() {
        let map = registry().lock().unwrap_or_else(|e| e.into_inner());
        for v in map.values() {
            v.store(0, Ordering::SeqCst);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::MutexGuard;

        /// The registry is process-global and `reset()` touches every
        /// counter, so counter tests serialize on this lock.
        fn serialize() -> MutexGuard<'static, ()> {
            static LOCK: Mutex<()> = Mutex::new(());
            LOCK.lock().unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn counters_register_add_and_snapshot() {
            let _guard = serialize();
            let name = "test.metrics.counter_a";
            assert_eq!(get(name), 0);
            add(name, 3);
            add(name, 4);
            assert_eq!(get(name), 7);
            set(name, 2);
            assert_eq!(get(name), 2);
            let snap = snapshot();
            assert!(snap.iter().any(|(k, v)| k == name && *v == 2));
            // Sorted by name.
            assert!(snap.windows(2).all(|w| w[0].0 <= w[1].0));
            set(name, 0);
        }

        #[test]
        fn counter_handles_share_state() {
            let _guard = serialize();
            let name = "test.metrics.counter_b";
            let h1 = counter(name);
            let h2 = counter(name);
            h1.fetch_add(5, Ordering::Relaxed);
            assert_eq!(h2.load(Ordering::Relaxed), 5);
        }

        #[test]
        fn reset_zeroes_counters_but_keeps_handles_live() {
            let _guard = serialize();
            let name = "test.metrics.counter_c";
            let handle = counter(name);
            add(name, 9);
            reset();
            assert_eq!(get(name), 0);
            // The pre-reset handle still drives the registered counter.
            handle.fetch_add(2, Ordering::Relaxed);
            assert_eq!(get(name), 2);
            reset();
        }
    }
}

/// Latency histograms: named series of per-operation timings with
/// nearest-rank quantiles (p50/p90/p99).
///
/// The batched query path records one sample per lane here so tooling can
/// report tail latency without threading timers through the engine. Like
/// [`counters`], the registry is process-global observability state.
///
/// Two recording surfaces coexist:
///
/// * exact series ([`record`]/[`quantiles`]) — every sample is kept, the
///   quantiles are exact, and every `record` takes the registry lock.
///   Right for benches and tests, wrong for a server's per-request path.
/// * mergeable histograms ([`Histogram`]/[`LocalRecorder`]) — each
///   serving thread accumulates into a private fixed-size bucket array
///   (no lock, no allocation) and periodically merges it into a shared
///   [`Histogram`] with one relaxed atomic add per non-empty bucket.
///   Quantiles are read from the merged buckets at bounded relative
///   error (bucket bounds grow by √2). This is what the query daemon
///   records per-connection latency through.
pub mod latency {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    static SERIES: OnceLock<Mutex<BTreeMap<String, Vec<f64>>>> = OnceLock::new();

    fn series() -> &'static Mutex<BTreeMap<String, Vec<f64>>> {
        SERIES.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    /// Quantile summary of one named series.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct LatencyQuantiles {
        /// Recorded samples.
        pub count: usize,
        /// Median, in the recorded unit.
        pub p50: f64,
        /// 90th percentile.
        pub p90: f64,
        /// 99th percentile.
        pub p99: f64,
    }

    /// Record one sample (any unit; the engine records milliseconds).
    pub fn record(name: &str, sample: f64) {
        series()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(name.to_string())
            .or_default()
            .push(sample);
    }

    fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Quantiles of the named series (`None` if nothing was recorded).
    pub fn quantiles(name: &str) -> Option<LatencyQuantiles> {
        let map = series().lock().unwrap_or_else(|e| e.into_inner());
        let samples = map.get(name).filter(|s| !s.is_empty())?;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(LatencyQuantiles {
            count: sorted.len(),
            p50: nearest_rank(&sorted, 0.50),
            p90: nearest_rank(&sorted, 0.90),
            p99: nearest_rank(&sorted, 0.99),
        })
    }

    /// All named series with their quantiles, sorted by name.
    pub fn snapshot() -> Vec<(String, LatencyQuantiles)> {
        let names: Vec<String> = {
            let map = series().lock().unwrap_or_else(|e| e.into_inner());
            map.keys().cloned().collect()
        };
        names
            .into_iter()
            .filter_map(|n| quantiles(&n).map(|q| (n, q)))
            .collect()
    }

    /// Drop every recorded sample and zero every merged histogram.
    /// Histogram handles stay valid (buckets are zeroed in place, not
    /// replaced), mirroring [`super::counters::reset`].
    pub fn reset() {
        series()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        let map = histograms().lock().unwrap_or_else(|e| e.into_inner());
        for h in map.values() {
            h.reset();
        }
    }

    // -----------------------------------------------------------------
    // Mergeable histograms
    // -----------------------------------------------------------------

    /// Bucket count of the mergeable histograms. With √2 growth per
    /// bucket from a 1 µs base, 64 buckets span 1 µs … ~50 min.
    pub const HIST_BUCKETS: usize = 64;
    const HIST_BASE_MS: f64 = 1e-3;

    /// The bucket a millisecond sample lands in. Non-finite and
    /// non-positive samples clamp to bucket 0.
    fn bucket_of(ms: f64) -> usize {
        // NaN and non-positive samples clamp to bucket 0 (note the
        // comparison is false for NaN).
        if ms <= HIST_BASE_MS || ms.is_nan() {
            return 0;
        }
        let idx = ((ms / HIST_BASE_MS).log2() * 2.0).floor() as i64 + 1;
        idx.clamp(0, (HIST_BUCKETS - 1) as i64) as usize
    }

    /// Upper bound (ms) of a bucket — the value quantile reads report.
    fn bound_ms(bucket: usize) -> f64 {
        HIST_BASE_MS * 2f64.powf(bucket as f64 / 2.0)
    }

    /// A shared latency histogram: fixed log-scaled buckets behind
    /// relaxed atomics. Writers either [`Histogram::record`] directly
    /// (one atomic add) or batch through a [`LocalRecorder`] and merge.
    pub struct Histogram {
        buckets: [AtomicU64; HIST_BUCKETS],
        count: AtomicU64,
    }

    impl Default for Histogram {
        fn default() -> Self {
            Histogram {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
            }
        }
    }

    impl Histogram {
        pub fn new() -> Self {
            Self::default()
        }

        /// Record one millisecond sample (one relaxed atomic add).
        pub fn record(&self, ms: f64) {
            self.buckets[bucket_of(ms)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
        }

        /// Fold a local recorder's buckets in: one atomic add per
        /// non-empty bucket, however many samples it batched.
        pub fn merge(&self, local: &LocalRecorder) {
            for (i, &n) in local.buckets.iter().enumerate() {
                if n > 0 {
                    self.buckets[i].fetch_add(n, Ordering::Relaxed);
                }
            }
            if local.count > 0 {
                self.count.fetch_add(local.count, Ordering::Relaxed);
            }
        }

        /// Total merged samples.
        pub fn count(&self) -> u64 {
            self.count.load(Ordering::Relaxed)
        }

        /// Zero every bucket in place.
        pub fn reset(&self) {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            self.count.store(0, Ordering::Relaxed);
        }

        fn quantile(&self, counts: &[u64; HIST_BUCKETS], total: u64, q: f64) -> f64 {
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (i, &n) in counts.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bound_ms(i);
                }
            }
            bound_ms(HIST_BUCKETS - 1)
        }

        /// Merged quantiles (`None` when empty). Values are bucket
        /// upper bounds, so each quantile is within a √2 factor of the
        /// exact statistic.
        pub fn quantiles(&self) -> Option<LatencyQuantiles> {
            let counts: [u64; HIST_BUCKETS] =
                std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
            let total: u64 = counts.iter().sum();
            if total == 0 {
                return None;
            }
            Some(LatencyQuantiles {
                count: total as usize,
                p50: self.quantile(&counts, total, 0.50),
                p90: self.quantile(&counts, total, 0.90),
                p99: self.quantile(&counts, total, 0.99),
            })
        }
    }

    /// A thread-private recorder: a plain bucket array with no locking
    /// and no allocation on [`LocalRecorder::record`]. Flush into a
    /// shared [`Histogram`] at whatever cadence suits the caller (the
    /// daemon flushes every 64 requests and on connection close).
    #[derive(Clone)]
    pub struct LocalRecorder {
        buckets: [u64; HIST_BUCKETS],
        count: u64,
    }

    impl Default for LocalRecorder {
        fn default() -> Self {
            LocalRecorder {
                buckets: [0; HIST_BUCKETS],
                count: 0,
            }
        }
    }

    impl LocalRecorder {
        pub fn new() -> Self {
            Self::default()
        }

        /// Record one millisecond sample. No lock, no allocation.
        pub fn record(&mut self, ms: f64) {
            self.buckets[bucket_of(ms)] += 1;
            self.count += 1;
        }

        /// Samples recorded since the last flush.
        pub fn len(&self) -> u64 {
            self.count
        }

        pub fn is_empty(&self) -> bool {
            self.count == 0
        }

        /// Merge into `target` and clear this recorder.
        pub fn flush_into(&mut self, target: &Histogram) {
            if self.count == 0 {
                return;
            }
            target.merge(self);
            self.buckets = [0; HIST_BUCKETS];
            self.count = 0;
        }
    }

    type HistRegistry = Mutex<BTreeMap<String, Arc<Histogram>>>;

    static HISTOGRAMS: OnceLock<HistRegistry> = OnceLock::new();

    fn histograms() -> &'static HistRegistry {
        HISTOGRAMS.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    /// Get (or create) the shared histogram registered under `name`.
    /// The handle can be cached and recorded/merged into without
    /// further registry locking.
    pub fn histogram(name: &str) -> Arc<Histogram> {
        let mut map = histograms().lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Quantiles of the named merged histogram (`None` if empty or
    /// never registered).
    pub fn histogram_quantiles(name: &str) -> Option<LatencyQuantiles> {
        let map = histograms().lock().unwrap_or_else(|e| e.into_inner());
        map.get(name).and_then(|h| h.quantiles())
    }

    /// All non-empty merged histograms with their quantiles, sorted by
    /// name.
    pub fn histogram_snapshot() -> Vec<(String, LatencyQuantiles)> {
        let handles: Vec<(String, Arc<Histogram>)> = {
            let map = histograms().lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
        };
        handles
            .into_iter()
            .filter_map(|(n, h)| h.quantiles().map(|q| (n, q)))
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::MutexGuard;

        /// `reset()` clears every series, so latency tests serialize.
        fn serialize() -> MutexGuard<'static, ()> {
            static LOCK: Mutex<()> = Mutex::new(());
            LOCK.lock().unwrap_or_else(|e| e.into_inner())
        }

        #[test]
        fn quantiles_use_nearest_rank() {
            let _guard = serialize();
            let name = "test.latency.series_a";
            for v in 1..=100 {
                record(name, v as f64);
            }
            let q = quantiles(name).unwrap();
            assert_eq!(q.count, 100);
            assert_eq!(q.p50, 50.0);
            assert_eq!(q.p90, 90.0);
            assert_eq!(q.p99, 99.0);
            reset();
            assert!(quantiles(name).is_none());
        }

        #[test]
        fn single_sample_is_every_quantile() {
            let _guard = serialize();
            let name = "test.latency.series_b";
            record(name, 7.5);
            let q = quantiles(name).unwrap();
            assert_eq!((q.p50, q.p90, q.p99), (7.5, 7.5, 7.5));
            reset();
        }

        #[test]
        fn histogram_quantiles_within_bucket_error() {
            let _guard = serialize();
            let h = Histogram::new();
            for v in 1..=1000 {
                h.record(v as f64);
            }
            let q = h.quantiles().unwrap();
            assert_eq!(q.count, 1000);
            // Bucket bounds grow by √2, so each quantile reads the
            // upper bound of the bucket the exact value falls in:
            // within a factor of √2 above, never below.
            for (approx, exact) in [(q.p50, 500.0), (q.p90, 900.0), (q.p99, 990.0)] {
                assert!(approx >= exact, "{approx} < exact {exact}");
                assert!(approx <= exact * 1.4143, "{approx} > √2·{exact}");
            }
        }

        #[test]
        fn local_recorders_merge_across_threads() {
            let _guard = serialize();
            let h = histogram("test.hist.merge");
            h.reset();
            let threads: Vec<_> = (0..4)
                .map(|t| {
                    let h = Arc::clone(&h);
                    std::thread::spawn(move || {
                        let mut local = LocalRecorder::new();
                        for i in 0..250 {
                            local.record((t * 250 + i) as f64 * 0.01 + 0.01);
                            if local.len() == 64 {
                                local.flush_into(&h);
                            }
                        }
                        local.flush_into(&h);
                        assert!(local.is_empty());
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            let q = histogram_quantiles("test.hist.merge").unwrap();
            assert_eq!(q.count, 1000);
            assert!(q.p50 <= q.p90 && q.p90 <= q.p99);
            reset();
        }

        #[test]
        fn reset_zeroes_histograms_but_keeps_handles_live() {
            let _guard = serialize();
            let h = histogram("test.hist.reset");
            h.record(5.0);
            assert_eq!(h.count(), 1);
            reset();
            assert_eq!(h.count(), 0);
            assert!(histogram_quantiles("test.hist.reset").is_none());
            // The pre-reset handle still feeds the registered histogram.
            h.record(2.0);
            assert_eq!(histogram_quantiles("test.hist.reset").unwrap().count, 1);
            reset();
        }

        #[test]
        fn degenerate_samples_land_in_bucket_zero() {
            let h = Histogram::new();
            h.record(0.0);
            h.record(-3.0);
            h.record(f64::NAN);
            h.record(1e-9);
            let q = h.quantiles().unwrap();
            assert_eq!(q.count, 4);
            assert!(q.p99 <= 1e-3 + f64::EPSILON);
        }
    }
}

/// Reset every metrics surface (counters and latency series) to empty —
/// the bench harness calls this between phases.
pub fn reset() {
    counters::reset();
    latency::reset();
}

/// Top-1 predictions for a batch of classification outputs.
pub fn top1_predictions(outputs: &Tensor) -> Vec<usize> {
    (0..outputs.rows()).map(|r| outputs.argmax_row(r)).collect()
}

/// Fraction of rows whose top-1 prediction matches the label.
/// Panics if lengths disagree; returns 1.0 for an empty batch.
pub fn top1_accuracy(outputs: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(outputs.rows(), labels.len(), "labels must match batch");
    if labels.is_empty() {
        return 1.0;
    }
    let correct = top1_predictions(outputs)
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Fraction of rows where two models produce the same top-1 prediction
/// (the off-diagonal entries of paper Figure 3).
pub fn agreement_ratio(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.rows(), b.rows(), "batches must match");
    if a.rows() == 0 {
        return 1.0;
    }
    let pa = top1_predictions(a);
    let pb = top1_predictions(b);
    let same = pa.iter().zip(&pb).filter(|(x, y)| x == y).count();
    same as f64 / a.rows() as f64
}

/// The default QoR *difference* between two models' outputs on the same
/// inputs, per the task's output style:
///
/// * classification → disagreement ratio (1 − agreement);
/// * regression → mean row-wise l2 distance, normalized by the mean output
///   norm so thresholds are scale-free.
pub fn qor_difference(style: OutputStyle, a: &Tensor, b: &Tensor) -> f64 {
    match style {
        OutputStyle::Classification => 1.0 - agreement_ratio(a, b),
        OutputStyle::Regression => {
            let raw = ops::mean_row_l2_distance(a, b);
            let scale = mean_row_norm(a).max(1e-12);
            raw / scale
        }
    }
}

fn mean_row_norm(t: &Tensor) -> f64 {
    if t.rows() == 0 {
        return 0.0;
    }
    let total: f64 = (0..t.rows())
        .map(|r| {
            t.row(r)
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>()
                .sqrt()
        })
        .sum();
    total / t.rows() as f64
}

/// QoR (higher is better) of outputs against ground truth, per style:
/// classification → accuracy; regression → `1 / (1 + normalized error)` so
/// it lands in `(0, 1]`.
pub fn qor_against_truth(style: OutputStyle, outputs: &Tensor, truth: &GroundTruth) -> f64 {
    match (style, truth) {
        (OutputStyle::Classification, GroundTruth::Labels(labels)) => {
            top1_accuracy(outputs, labels)
        }
        (OutputStyle::Regression, GroundTruth::Targets(targets)) => {
            let err = qor_difference(OutputStyle::Regression, targets, outputs);
            1.0 / (1.0 + err)
        }
        _ => panic!("ground-truth kind does not match the task's output style"),
    }
}

/// Ground truth for a validation batch.
#[derive(Clone, Debug)]
pub enum GroundTruth {
    /// Class labels for classification tasks.
    Labels(Vec<usize>),
    /// Target vectors for regression tasks.
    Targets(Tensor),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(rows, cols, v)
    }

    #[test]
    fn top1_accuracy_counts_matches() {
        let out = t(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert!((top1_accuracy(&out, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert!((top1_accuracy(&out, &[0, 1, 0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agreement_is_symmetric_and_reflexive() {
        let a = t(2, 2, vec![0.9, 0.1, 0.2, 0.8]);
        let b = t(2, 2, vec![0.7, 0.3, 0.9, 0.1]);
        assert_eq!(agreement_ratio(&a, &a), 1.0);
        assert_eq!(agreement_ratio(&a, &b), agreement_ratio(&b, &a));
        assert!((agreement_ratio(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classification_qor_difference_is_disagreement() {
        let a = t(2, 2, vec![0.9, 0.1, 0.2, 0.8]);
        let b = t(2, 2, vec![0.7, 0.3, 0.9, 0.1]);
        assert!(
            (qor_difference(OutputStyle::Classification, &a, &b) - 0.5).abs() < 1e-12
        );
    }

    #[test]
    fn regression_qor_difference_is_scale_free() {
        let a = t(1, 2, vec![3.0, 4.0]); // norm 5
        let b = t(1, 2, vec![3.0, 3.0]); // distance 1
        let d = qor_difference(OutputStyle::Regression, &a, &b);
        assert!((d - 0.2).abs() < 1e-6);
        // Scaling both outputs leaves the normalized difference unchanged.
        let a10 = a.map(|x| x * 10.0);
        let b10 = b.map(|x| x * 10.0);
        let d10 = qor_difference(OutputStyle::Regression, &a10, &b10);
        assert!((d - d10).abs() < 1e-6);
    }

    #[test]
    fn qor_against_truth_regression_in_unit_interval() {
        let target = t(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let perfect = qor_against_truth(
            OutputStyle::Regression,
            &target,
            &GroundTruth::Targets(target.clone()),
        );
        assert!((perfect - 1.0).abs() < 1e-12);
        let noisy = t(2, 2, vec![0.5, 0.5, 0.5, 0.5]);
        let q = qor_against_truth(
            OutputStyle::Regression,
            &noisy,
            &GroundTruth::Targets(target),
        );
        assert!(q > 0.0 && q < 1.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_ground_truth_panics() {
        let out = t(1, 2, vec![1.0, 0.0]);
        let _ = qor_against_truth(
            OutputStyle::Classification,
            &out,
            &GroundTruth::Targets(out.clone()),
        );
    }

    #[test]
    fn empty_batches_are_vacuously_perfect() {
        let e = Tensor::zeros(0, 3);
        assert_eq!(top1_accuracy(&e, &[]), 1.0);
        assert_eq!(agreement_ratio(&e, &e), 1.0);
    }
}
