//! Quality-of-result (QoR) measurement.
//!
//! Paper Section 4.1: "the QoR goal is just the optimization objective for
//! model training. Otherwise, we compute the l2 distance between the
//! outputs from the two models on the same input, then average this
//! distance over the dataset as the default QoR difference." For
//! classification tasks QoR is top-1 accuracy and the inter-model metric
//! is the *agreement ratio* — the statistic behind Figure 3's observation
//! that models agree with each other more than they agree with the ground
//! truth.

use sommelier_graph::task::OutputStyle;
use sommelier_tensor::{ops, Tensor};

/// Process-wide named monotonic counters.
///
/// The reproduction's subsystems (the pairwise-analysis cache, the
/// parallel index build, the query engine) publish operational counters
/// here so tooling — the CLI, the benchmark harness, tests — can read
/// them without threading handles through every layer. Counters are
/// *observability*, not state: nothing in the system reads a counter to
/// make a decision, so the registry being process-global cannot affect
/// results.
///
/// Well-known names (kept in sync with README's metrics table):
/// `pairwise_cache.hits`, `pairwise_cache.misses`,
/// `pairwise_cache.evictions`, `pairwise_cache.entries`,
/// `index.pair_analyses`, `index.models_indexed`,
/// `query.candidates_scored`.
pub mod counters {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    type Registry = Mutex<BTreeMap<String, Arc<AtomicU64>>>;

    static REGISTRY: OnceLock<Registry> = OnceLock::new();

    fn registry() -> &'static Registry {
        REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    /// Get (or create) the counter registered under `name`. The handle
    /// can be cached and bumped without further registry locking.
    pub fn counter(name: &str) -> Arc<AtomicU64> {
        let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Add `delta` to the named counter.
    pub fn add(name: &str, delta: u64) {
        counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrite the named counter (used by subsystems that publish a
    /// snapshot of internally tracked atomics).
    pub fn set(name: &str, value: u64) {
        counter(name).store(value, Ordering::Relaxed);
    }

    /// Current value of the named counter (0 if never registered).
    pub fn get(name: &str) -> u64 {
        let map = registry().lock().unwrap_or_else(|e| e.into_inner());
        map.get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// All registered counters, sorted by name.
    pub fn snapshot() -> Vec<(String, u64)> {
        let map = registry().lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn counters_register_add_and_snapshot() {
            let name = "test.metrics.counter_a";
            assert_eq!(get(name), 0);
            add(name, 3);
            add(name, 4);
            assert_eq!(get(name), 7);
            set(name, 2);
            assert_eq!(get(name), 2);
            let snap = snapshot();
            assert!(snap.iter().any(|(k, v)| k == name && *v == 2));
            // Sorted by name.
            assert!(snap.windows(2).all(|w| w[0].0 <= w[1].0));
        }

        #[test]
        fn counter_handles_share_state() {
            let name = "test.metrics.counter_b";
            let h1 = counter(name);
            let h2 = counter(name);
            h1.fetch_add(5, Ordering::Relaxed);
            assert_eq!(h2.load(Ordering::Relaxed), 5);
        }
    }
}

/// Top-1 predictions for a batch of classification outputs.
pub fn top1_predictions(outputs: &Tensor) -> Vec<usize> {
    (0..outputs.rows()).map(|r| outputs.argmax_row(r)).collect()
}

/// Fraction of rows whose top-1 prediction matches the label.
/// Panics if lengths disagree; returns 1.0 for an empty batch.
pub fn top1_accuracy(outputs: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(outputs.rows(), labels.len(), "labels must match batch");
    if labels.is_empty() {
        return 1.0;
    }
    let correct = top1_predictions(outputs)
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Fraction of rows where two models produce the same top-1 prediction
/// (the off-diagonal entries of paper Figure 3).
pub fn agreement_ratio(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.rows(), b.rows(), "batches must match");
    if a.rows() == 0 {
        return 1.0;
    }
    let pa = top1_predictions(a);
    let pb = top1_predictions(b);
    let same = pa.iter().zip(&pb).filter(|(x, y)| x == y).count();
    same as f64 / a.rows() as f64
}

/// The default QoR *difference* between two models' outputs on the same
/// inputs, per the task's output style:
///
/// * classification → disagreement ratio (1 − agreement);
/// * regression → mean row-wise l2 distance, normalized by the mean output
///   norm so thresholds are scale-free.
pub fn qor_difference(style: OutputStyle, a: &Tensor, b: &Tensor) -> f64 {
    match style {
        OutputStyle::Classification => 1.0 - agreement_ratio(a, b),
        OutputStyle::Regression => {
            let raw = ops::mean_row_l2_distance(a, b);
            let scale = mean_row_norm(a).max(1e-12);
            raw / scale
        }
    }
}

fn mean_row_norm(t: &Tensor) -> f64 {
    if t.rows() == 0 {
        return 0.0;
    }
    let total: f64 = (0..t.rows())
        .map(|r| {
            t.row(r)
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>()
                .sqrt()
        })
        .sum();
    total / t.rows() as f64
}

/// QoR (higher is better) of outputs against ground truth, per style:
/// classification → accuracy; regression → `1 / (1 + normalized error)` so
/// it lands in `(0, 1]`.
pub fn qor_against_truth(style: OutputStyle, outputs: &Tensor, truth: &GroundTruth) -> f64 {
    match (style, truth) {
        (OutputStyle::Classification, GroundTruth::Labels(labels)) => {
            top1_accuracy(outputs, labels)
        }
        (OutputStyle::Regression, GroundTruth::Targets(targets)) => {
            let err = qor_difference(OutputStyle::Regression, targets, outputs);
            1.0 / (1.0 + err)
        }
        _ => panic!("ground-truth kind does not match the task's output style"),
    }
}

/// Ground truth for a validation batch.
#[derive(Clone, Debug)]
pub enum GroundTruth {
    /// Class labels for classification tasks.
    Labels(Vec<usize>),
    /// Target vectors for regression tasks.
    Targets(Tensor),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(rows, cols, v)
    }

    #[test]
    fn top1_accuracy_counts_matches() {
        let out = t(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert!((top1_accuracy(&out, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert!((top1_accuracy(&out, &[0, 1, 0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agreement_is_symmetric_and_reflexive() {
        let a = t(2, 2, vec![0.9, 0.1, 0.2, 0.8]);
        let b = t(2, 2, vec![0.7, 0.3, 0.9, 0.1]);
        assert_eq!(agreement_ratio(&a, &a), 1.0);
        assert_eq!(agreement_ratio(&a, &b), agreement_ratio(&b, &a));
        assert!((agreement_ratio(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classification_qor_difference_is_disagreement() {
        let a = t(2, 2, vec![0.9, 0.1, 0.2, 0.8]);
        let b = t(2, 2, vec![0.7, 0.3, 0.9, 0.1]);
        assert!(
            (qor_difference(OutputStyle::Classification, &a, &b) - 0.5).abs() < 1e-12
        );
    }

    #[test]
    fn regression_qor_difference_is_scale_free() {
        let a = t(1, 2, vec![3.0, 4.0]); // norm 5
        let b = t(1, 2, vec![3.0, 3.0]); // distance 1
        let d = qor_difference(OutputStyle::Regression, &a, &b);
        assert!((d - 0.2).abs() < 1e-6);
        // Scaling both outputs leaves the normalized difference unchanged.
        let a10 = a.map(|x| x * 10.0);
        let b10 = b.map(|x| x * 10.0);
        let d10 = qor_difference(OutputStyle::Regression, &a10, &b10);
        assert!((d - d10).abs() < 1e-6);
    }

    #[test]
    fn qor_against_truth_regression_in_unit_interval() {
        let target = t(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let perfect = qor_against_truth(
            OutputStyle::Regression,
            &target,
            &GroundTruth::Targets(target.clone()),
        );
        assert!((perfect - 1.0).abs() < 1e-12);
        let noisy = t(2, 2, vec![0.5, 0.5, 0.5, 0.5]);
        let q = qor_against_truth(
            OutputStyle::Regression,
            &noisy,
            &GroundTruth::Targets(target),
        );
        assert!(q > 0.0 && q < 1.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_ground_truth_panics() {
        let out = t(1, 2, vec![1.0, 0.0]);
        let _ = qor_against_truth(
            OutputStyle::Classification,
            &out,
            &GroundTruth::Targets(out.clone()),
        );
    }

    #[test]
    fn empty_batches_are_vacuously_perfect() {
        let e = Tensor::zeros(0, 3);
        assert_eq!(top1_accuracy(&e, &[]), 1.0);
        assert_eq!(agreement_ratio(&e, &e), 1.0);
    }
}
