//! Resource profiles and execution settings.
//!
//! The resource index (paper Section 5.3) stores one vector per model whose
//! fields are resource usage numbers — hardware-independent (memory,
//! FLOPs) plus optional hardware-dependent ones (latency). For relative
//! constraints the vectors are normalized to a reference model. Execution
//! settings (device, batch size) perturb the realized memory footprint;
//! Figure 12(a) of the paper shows ~25% variation across settings, which
//! [`ResourceProfile::under`] reproduces.

use crate::latency::{DeviceProfile, LatencyModel};
use serde::{Deserialize, Serialize};
use sommelier_graph::cost::{model_cost, ModelCost};
use sommelier_graph::Model;

/// An execution setting affecting realized resource usage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecSetting {
    /// Device the model would run on.
    pub device: DeviceProfile,
    /// Inference batch size.
    pub batch_size: usize,
    /// Framework workspace multiplier (e.g. cuDNN scratch buffers);
    /// 1.0 means no extra workspace.
    pub workspace_factor: f64,
}

impl ExecSetting {
    /// The default profiling setting: CPU, batch 1, no extra workspace.
    pub fn default_cpu() -> Self {
        ExecSetting {
            device: DeviceProfile::cpu(),
            batch_size: 1,
            workspace_factor: 1.0,
        }
    }

    /// A grid of representative settings (device × batch), used by the
    /// Figure 12(a) experiment to show memory variation.
    pub fn grid() -> Vec<ExecSetting> {
        let mut out = Vec::new();
        for device in [DeviceProfile::cpu(), DeviceProfile::gpu(), DeviceProfile::edge()] {
            for &batch in &[1usize, 4, 8] {
                out.push(ExecSetting {
                    device: device.clone(),
                    batch_size: batch,
                    workspace_factor: if device.name.starts_with("gpu") { 1.15 } else { 1.0 },
                });
            }
        }
        out
    }
}

/// A model's resource profile: the multi-dimensional key of the resource
/// index.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceProfile {
    /// Memory footprint in MB (parameters + activations, scaled by the
    /// execution setting).
    pub memory_mb: f64,
    /// Computational complexity in GFLOPs per inference.
    pub gflops: f64,
    /// Estimated single-item latency in milliseconds on the profiled
    /// device.
    pub latency_ms: f64,
}

impl ResourceProfile {
    /// Hardware-independent profile under the default setting.
    pub fn of(model: &Model) -> ResourceProfile {
        ResourceProfile::under(model, &ExecSetting::default_cpu())
    }

    /// Profile under a specific execution setting. Activations scale with
    /// the batch size and workspace factor; parameters do not.
    pub fn under(model: &Model, setting: &ExecSetting) -> ResourceProfile {
        let cost: ModelCost = model_cost(model);
        let act = cost.activation_bytes as f64 * setting.batch_size as f64
            * setting.workspace_factor;
        let memory_mb = (cost.param_bytes as f64 + act) / 1e6;
        let lm = LatencyModel::new(setting.device.clone());
        ResourceProfile {
            memory_mb,
            gflops: cost.gflops(),
            latency_ms: lm.batch_latency_us(model, setting.batch_size) / 1e3,
        }
    }

    /// The profile as a vector for LSH indexing: `(memory, gflops,
    /// latency)`.
    pub fn as_vector(&self) -> Vec<f64> {
        vec![self.memory_mb, self.gflops, self.latency_ms]
    }

    /// This profile expressed as fractions of a reference profile, the
    /// normalization the paper applies for relative resource constraints
    /// ("20% of ResNet memory consumption").
    pub fn relative_to(&self, reference: &ResourceProfile) -> ResourceProfile {
        let safe = |x: f64, r: f64| if r > 0.0 { x / r } else { f64::INFINITY };
        ResourceProfile {
            memory_mb: safe(self.memory_mb, reference.memory_mb),
            gflops: safe(self.gflops, reference.gflops),
            latency_ms: safe(self.latency_ms, reference.latency_ms),
        }
    }

    /// Whether every dimension is within the given (possibly partial)
    /// bounds. `None` bounds are unconstrained.
    pub fn within(
        &self,
        max_memory_mb: Option<f64>,
        max_gflops: Option<f64>,
        max_latency_ms: Option<f64>,
    ) -> bool {
        max_memory_mb.is_none_or(|m| self.memory_mb <= m)
            && max_gflops.is_none_or(|g| self.gflops <= g)
            && max_latency_ms.is_none_or(|l| self.latency_ms <= l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};

    fn model(units: usize) -> Model {
        let mut r = Prng::seed_from_u64(9);
        ModelBuilder::new("m", TaskKind::Other, Shape::vector(32))
            .dense(units, &mut r)
            .relu()
            .dense(16, &mut r)
            .build()
            .unwrap()
    }

    #[test]
    fn bigger_model_bigger_profile() {
        let small = ResourceProfile::of(&model(8));
        let big = ResourceProfile::of(&model(256));
        assert!(big.memory_mb > small.memory_mb);
        assert!(big.gflops > small.gflops);
        assert!(big.latency_ms > small.latency_ms);
    }

    #[test]
    fn batch_size_raises_memory_not_params() {
        let m = model(64);
        let b1 = ResourceProfile::under(
            &m,
            &ExecSetting {
                device: DeviceProfile::cpu(),
                batch_size: 1,
                workspace_factor: 1.0,
            },
        );
        let b32 = ResourceProfile::under(
            &m,
            &ExecSetting {
                device: DeviceProfile::cpu(),
                batch_size: 32,
                workspace_factor: 1.0,
            },
        );
        assert!(b32.memory_mb > b1.memory_mb);
        assert_eq!(b32.gflops, b1.gflops); // per-inference complexity fixed
    }

    #[test]
    fn settings_grid_produces_memory_variation() {
        let m = model(64);
        let mems: Vec<f64> = ExecSetting::grid()
            .iter()
            .map(|s| ResourceProfile::under(&m, s).memory_mb)
            .collect();
        let min = mems.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = mems.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "execution settings must vary memory");
    }

    #[test]
    fn relative_to_self_is_unity() {
        let p = ResourceProfile::of(&model(64));
        let rel = p.relative_to(&p);
        assert!((rel.memory_mb - 1.0).abs() < 1e-12);
        assert!((rel.gflops - 1.0).abs() < 1e-12);
        assert!((rel.latency_ms - 1.0).abs() < 1e-12);
    }

    #[test]
    fn within_checks_each_dimension() {
        let p = ResourceProfile {
            memory_mb: 10.0,
            gflops: 2.0,
            latency_ms: 5.0,
        };
        assert!(p.within(Some(11.0), Some(3.0), Some(6.0)));
        assert!(!p.within(Some(9.0), None, None));
        assert!(!p.within(None, Some(1.0), None));
        assert!(p.within(None, None, None));
    }

    #[test]
    fn vector_layout_is_stable() {
        let p = ResourceProfile {
            memory_mb: 1.0,
            gflops: 2.0,
            latency_ms: 3.0,
        };
        assert_eq!(p.as_vector(), vec![1.0, 2.0, 3.0]);
    }
}
