//! Measured (wall-clock) latency profiling.
//!
//! The estimated latency table (see [`crate::latency`]) is
//! hardware-independent; the paper additionally "prepares the inference
//! engine runtime for each new incoming model on locally available
//! hardware platforms … and collects the actual performance numbers"
//! (Section 5.5). This module measures real per-layer and per-model wall
//! times on the current machine and can calibrate a [`DeviceProfile`]
//! from them, closing the loop between estimates and reality.

use crate::executor::execute_layer_public as execute_layer;
use crate::latency::DeviceProfile;
use crate::ExecError;
use sommelier_graph::cost::layer_cost_in;
use sommelier_graph::{LayerId, Model, OpKind};
use sommelier_tensor::Tensor;
use std::time::Instant;

/// Wall-clock measurement of a single model.
#[derive(Clone, Debug)]
pub struct MeasuredLatency {
    /// Mean per-layer wall time in microseconds (indexed by layer id).
    pub per_layer_us: Vec<f64>,
    /// Mean end-to-end wall time per inference in microseconds.
    pub total_us: f64,
    /// Number of timed repetitions.
    pub reps: usize,
}

/// Measure per-layer and end-to-end wall times by executing the model
/// `reps` times on `input` (after one untimed warm-up pass).
pub fn measure(model: &Model, input: &Tensor, reps: usize) -> Result<MeasuredLatency, ExecError> {
    assert!(reps > 0, "need at least one repetition");
    let n = model.num_layers();
    let mut per_layer = vec![0.0f64; n];
    let mut total = 0.0f64;

    // Warm-up (allocators, caches).
    run_once(model, input, &mut vec![0.0; n])?;

    for _ in 0..reps {
        let mut layer_times = vec![0.0f64; n];
        let start = Instant::now();
        run_once(model, input, &mut layer_times)?;
        total += start.elapsed().as_secs_f64() * 1e6;
        for (acc, t) in per_layer.iter_mut().zip(&layer_times) {
            *acc += t;
        }
    }
    for t in &mut per_layer {
        *t /= reps as f64;
    }
    Ok(MeasuredLatency {
        per_layer_us: per_layer,
        total_us: total / reps as f64,
        reps,
    })
}

fn run_once(model: &Model, input: &Tensor, layer_times: &mut [f64]) -> Result<(), ExecError> {
    if input.cols() != model.input_width() {
        return Err(ExecError::InputWidthMismatch {
            expected: model.input_width(),
            actual: input.cols(),
        });
    }
    let mut acts: Vec<Tensor> = Vec::with_capacity(model.num_layers());
    for (i, slot) in layer_times.iter_mut().enumerate().take(model.num_layers()) {
        let start = Instant::now();
        let out = execute_layer(model, i, input, &acts);
        *slot = start.elapsed().as_secs_f64() * 1e6;
        acts.push(out);
    }
    Ok(())
}

/// Calibrate a [`DeviceProfile`] for the current machine from a measured
/// run: sustained throughput is estimated from the FLOP-heavy layers and
/// the per-operator overhead from the cheap ones.
pub fn calibrate_device(
    name: impl Into<String>,
    model: &Model,
    measured: &MeasuredLatency,
) -> DeviceProfile {
    let mut heavy_flops = 0.0f64;
    let mut heavy_time_us = 0.0f64;
    let mut light_time_us = 0.0f64;
    let mut light_count = 0usize;
    for i in 0..model.num_layers() {
        let id = LayerId(i);
        if model.layer(id).op.kind() == OpKind::Source {
            continue;
        }
        let flops = layer_cost_in(model, id).flops as f64;
        let t = measured.per_layer_us[i];
        if model.layer(id).op.kind() == OpKind::Linear && flops > 0.0 {
            heavy_flops += flops;
            heavy_time_us += t;
        } else {
            light_time_us += t;
            light_count += 1;
        }
    }
    // Throughput from the linear layers; overhead from the rest.
    let gflops_per_sec = if heavy_time_us > 0.0 {
        (heavy_flops / 1e9) / (heavy_time_us / 1e6)
    } else {
        1.0
    };
    let op_overhead_us = if light_count > 0 {
        light_time_us / light_count as f64
    } else {
        1.0
    };
    DeviceProfile {
        name: name.into(),
        gflops_per_sec: gflops_per_sec.max(1e-3),
        op_overhead_us: op_overhead_us.max(1e-3),
        invocation_overhead_us: 5.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};

    fn model(units: usize) -> Model {
        let mut rng = Prng::seed_from_u64(1);
        ModelBuilder::new("m", TaskKind::Other, Shape::vector(128))
            .dense(units, &mut rng)
            .relu()
            .dense(units, &mut rng)
            .relu()
            .dense(16, &mut rng)
            .build()
            .unwrap()
    }

    #[test]
    fn measure_produces_positive_times() {
        let m = model(128);
        let mut rng = Prng::seed_from_u64(2);
        let x = Tensor::gaussian(8, 128, 1.0, &mut rng);
        let lat = measure(&m, &x, 3).unwrap();
        assert_eq!(lat.per_layer_us.len(), m.num_layers());
        assert!(lat.total_us > 0.0);
        assert!(lat.per_layer_us.iter().skip(1).all(|&t| t >= 0.0));
        // The sum of per-layer times roughly accounts for the total.
        let sum: f64 = lat.per_layer_us.iter().sum();
        assert!(sum <= lat.total_us * 2.0 + 50.0);
    }

    #[test]
    fn bigger_layers_measure_slower() {
        let mut rng = Prng::seed_from_u64(3);
        let x = Tensor::gaussian(16, 128, 1.0, &mut rng);
        let small = measure(&model(32), &x, 3).unwrap();
        let big = measure(&model(512), &x, 3).unwrap();
        assert!(big.total_us > small.total_us);
    }

    #[test]
    fn input_mismatch_is_reported() {
        let m = model(32);
        let x = Tensor::zeros(1, 5);
        assert!(measure(&m, &x, 1).is_err());
    }

    #[test]
    fn calibrated_device_predicts_same_order_of_magnitude() {
        let m = model(256);
        let mut rng = Prng::seed_from_u64(4);
        let x = Tensor::gaussian(1, 128, 1.0, &mut rng);
        let measured = measure(&m, &x, 5).unwrap();
        let device = calibrate_device("local", &m, &measured);
        assert!(device.gflops_per_sec > 0.0);
        let lm = LatencyModel::new(device);
        let predicted = lm.model_latency_us(&m);
        // The calibrated estimator must land within ~20x of the measured
        // wall time (CI machines are noisy; we check order of magnitude).
        let ratio = predicted / measured.total_us.max(1e-9);
        assert!(
            (0.05..20.0).contains(&ratio),
            "predicted {predicted:.1}us vs measured {:.1}us",
            measured.total_us
        );
    }
}
