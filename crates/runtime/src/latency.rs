//! Per-operator latency estimation.
//!
//! Paper Section 5.3: "*Sommelier* follows the typical practice of
//! separately maintaining a per-operator latency table … its estimated
//! latency is essentially the sum of the individual latency of all
//! operators along the longest sequence between the input and the output"
//! — sequences sum, parallel branches take the max (critical path). This
//! module implements that estimator over device profiles; it is the
//! hardware-*dependent* layer on top of the FLOP/memory accounting in
//! `sommelier-graph::cost`.

use serde::{Deserialize, Serialize};
use sommelier_graph::cost::layer_cost_in;
use sommelier_graph::{LayerId, Model, OpKind};

/// An execution platform's throughput characteristics. These are the
/// "locally available hardware platforms" the paper profiles against
/// (Section 5.5); a small set covers the vast majority of workloads.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Device name, e.g. `"cpu-xeon"`, `"gpu-rtx2070"`.
    pub name: String,
    /// Sustained floating-point throughput in GFLOP/s.
    pub gflops_per_sec: f64,
    /// Fixed per-operator dispatch overhead in microseconds (kernel
    /// launches, framework bookkeeping).
    pub op_overhead_us: f64,
    /// Fixed per-inference overhead in microseconds (input staging).
    pub invocation_overhead_us: f64,
}

impl DeviceProfile {
    /// A modest 4-core server CPU.
    pub fn cpu() -> Self {
        DeviceProfile {
            name: "cpu-xeon".into(),
            gflops_per_sec: 50.0,
            op_overhead_us: 2.0,
            invocation_overhead_us: 30.0,
        }
    }

    /// A consumer GPU (higher throughput, higher per-op dispatch cost).
    pub fn gpu() -> Self {
        DeviceProfile {
            name: "gpu-rtx2070".into(),
            gflops_per_sec: 4000.0,
            op_overhead_us: 8.0,
            invocation_overhead_us: 80.0,
        }
    }

    /// An edge-class device.
    pub fn edge() -> Self {
        DeviceProfile {
            name: "edge-arm".into(),
            gflops_per_sec: 8.0,
            op_overhead_us: 1.0,
            invocation_overhead_us: 10.0,
        }
    }
}

/// The per-operator latency table plus critical-path estimator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Device the estimates are for.
    pub device: DeviceProfile,
}

impl LatencyModel {
    pub fn new(device: DeviceProfile) -> Self {
        LatencyModel { device }
    }

    /// Estimated latency of one layer on a single input, in microseconds.
    /// This is one entry of the paper's "per-operator latency table".
    pub fn layer_latency_us(&self, model: &Model, id: LayerId) -> f64 {
        let layer = model.layer(id);
        if layer.op.kind() == OpKind::Source {
            return 0.0;
        }
        let cost = layer_cost_in(model, id);
        self.device.op_overhead_us + cost.flops as f64 / (self.device.gflops_per_sec * 1e3)
    }

    /// Estimated single-item inference latency in microseconds: the
    /// invocation overhead plus the longest (weighted) path from input to
    /// output, where sequential operators add and parallel branches take
    /// the maximum.
    pub fn model_latency_us(&self, model: &Model) -> f64 {
        let n = model.num_layers();
        let mut finish = vec![0.0f64; n];
        for i in 0..n {
            let id = LayerId(i);
            let ready = model
                .layer(id)
                .inputs
                .iter()
                .map(|p| finish[p.index()])
                .fold(0.0f64, f64::max);
            finish[i] = ready + self.layer_latency_us(model, id);
        }
        self.device.invocation_overhead_us + finish.last().copied().unwrap_or(0.0)
    }

    /// Estimated latency for a batch of `batch` items, in microseconds.
    /// Work scales linearly; dispatch overheads are paid once per batch.
    pub fn batch_latency_us(&self, model: &Model, batch: usize) -> f64 {
        let single = self.model_latency_us(model);
        let overheads = self.device.invocation_overhead_us
            + self.device.op_overhead_us * (model.num_layers() as f64 - 1.0);
        let work = (single - overheads).max(0.0);
        overheads + work * batch as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};

    fn rng() -> Prng {
        Prng::seed_from_u64(21)
    }

    fn seq_model(units: usize) -> Model {
        let mut r = rng();
        ModelBuilder::new("m", TaskKind::Other, Shape::vector(64))
            .dense(units, &mut r)
            .relu()
            .dense(units, &mut r)
            .build()
            .unwrap()
    }

    #[test]
    fn source_layer_is_free() {
        let m = seq_model(8);
        let lm = LatencyModel::new(DeviceProfile::cpu());
        assert_eq!(lm.layer_latency_us(&m, LayerId(0)), 0.0);
        assert!(lm.layer_latency_us(&m, LayerId(1)) > 0.0);
    }

    #[test]
    fn bigger_layers_take_longer() {
        let small = seq_model(8);
        let big = seq_model(512);
        let lm = LatencyModel::new(DeviceProfile::cpu());
        assert!(lm.model_latency_us(&big) > lm.model_latency_us(&small));
    }

    #[test]
    fn faster_device_is_faster_on_heavy_models() {
        let mut r = rng();
        let m = ModelBuilder::new("heavy", TaskKind::Other, Shape::vector(1024))
            .dense(2048, &mut r)
            .relu()
            .dense(2048, &mut r)
            .build()
            .unwrap();
        let cpu = LatencyModel::new(DeviceProfile::cpu());
        let gpu = LatencyModel::new(DeviceProfile::gpu());
        assert!(gpu.model_latency_us(&m) < cpu.model_latency_us(&m));
    }

    #[test]
    fn gpu_overhead_dominates_tiny_models() {
        // For a tiny model the GPU's dispatch overhead outweighs its
        // throughput advantage — the effect that makes edge-class models
        // attractive under load (paper Section 7.1 footnote).
        let m = seq_model(4);
        let cpu = LatencyModel::new(DeviceProfile::cpu());
        let gpu = LatencyModel::new(DeviceProfile::gpu());
        assert!(gpu.model_latency_us(&m) > cpu.model_latency_us(&m));
    }

    #[test]
    fn sequential_latency_sums_layers() {
        let m = seq_model(16);
        let lm = LatencyModel::new(DeviceProfile::cpu());
        let sum: f64 = (0..m.num_layers())
            .map(|i| lm.layer_latency_us(&m, LayerId(i)))
            .sum();
        let total = lm.model_latency_us(&m);
        assert!((total - (sum + lm.device.invocation_overhead_us)).abs() < 1e-9);
    }

    #[test]
    fn parallel_branches_take_critical_path() {
        let mut r = rng();
        // Two parallel branches from the stem: a cheap one and an expensive
        // one; the estimate must track the expensive one, not the sum.
        let mut b = ModelBuilder::new("par", TaskKind::Other, Shape::vector(64));
        let stem = b.cursor();
        b.dense(8, &mut r); // cheap branch
        let cheap = b.cursor();
        b.goto(stem).dense(512, &mut r).relu().dense(64, &mut r);
        let exp_branch = b.cursor();
        b.goto(cheap).dense(64, &mut r); // align widths
        let cheap_out = b.cursor();
        let m = b.add_from(&[cheap_out, exp_branch]).build().unwrap();

        let lm = LatencyModel::new(DeviceProfile::cpu());
        let total = lm.model_latency_us(&m);
        let sum_all: f64 = (0..m.num_layers())
            .map(|i| lm.layer_latency_us(&m, LayerId(i)))
            .sum::<f64>()
            + lm.device.invocation_overhead_us;
        assert!(total < sum_all, "critical path must be below the flat sum");
    }

    #[test]
    fn batch_latency_grows_linearly_in_work() {
        let m = seq_model(256);
        let lm = LatencyModel::new(DeviceProfile::cpu());
        let b1 = lm.batch_latency_us(&m, 1);
        let b4 = lm.batch_latency_us(&m, 4);
        let b8 = lm.batch_latency_us(&m, 8);
        assert!(b4 > b1 && b8 > b4);
        // Work quadruples but overheads don't: b4 < 4*b1.
        assert!(b4 < 4.0 * b1);
    }
}
