//! Forward execution of a model graph.
//!
//! Layers are stored topologically, so execution is a single forward scan.
//! [`execute_traced`] additionally returns every intermediate activation;
//! the segment-equivalence assessment uses this to perturb a segment's
//! output with calibrated noise and re-run the remainder of the model
//! (paper Section 4.2, step ii).

use sommelier_graph::{LayerId, Model, Op};
use sommelier_tensor::{ops, Tensor};
use std::fmt;

/// Execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The input tensor width does not match the model's input layer.
    InputWidthMismatch { expected: usize, actual: usize },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InputWidthMismatch { expected, actual } => write!(
                f,
                "input width {actual} does not match model input width {expected}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Run the model on a `[batch, input_width]` tensor, returning the output
/// of the final layer.
pub fn execute(model: &Model, input: &Tensor) -> Result<Tensor, ExecError> {
    let trace = execute_traced(model, input)?;
    Ok(trace
        .into_iter()
        .next_back()
        .expect("validated model has at least one layer"))
}

/// Run the model and return the activation of *every* layer, indexed by
/// layer id. Entry 0 is the input itself.
pub fn execute_traced(model: &Model, input: &Tensor) -> Result<Vec<Tensor>, ExecError> {
    if input.cols() != model.input_width() {
        return Err(ExecError::InputWidthMismatch {
            expected: model.input_width(),
            actual: input.cols(),
        });
    }
    let mut acts: Vec<Tensor> = Vec::with_capacity(model.num_layers());
    for i in 0..model.num_layers() {
        let out = execute_layer(model, i, input, &acts);
        debug_assert_eq!(
            out.cols(),
            model.width_of(LayerId(i)),
            "layer {i} produced unexpected width"
        );
        acts.push(out);
    }
    Ok(acts)
}

/// Resume execution from a set of already-computed activations: layers with
/// ids in `overrides` take the provided tensor instead of being computed.
/// Used to emulate replacing a segment with a perturbed counterpart
/// (Section 4.2): run the model once, perturb the segment's tail
/// activation, then resume from there.
pub fn execute_with_overrides(
    model: &Model,
    input: &Tensor,
    overrides: &[(LayerId, Tensor)],
) -> Result<Tensor, ExecError> {
    if input.cols() != model.input_width() {
        return Err(ExecError::InputWidthMismatch {
            expected: model.input_width(),
            actual: input.cols(),
        });
    }
    let mut acts: Vec<Tensor> = Vec::with_capacity(model.num_layers());
    for i in 0..model.num_layers() {
        if let Some((_, t)) = overrides.iter().find(|(id, _)| id.index() == i) {
            acts.push(t.clone());
            continue;
        }
        let partial = execute_layer(model, i, input, &acts);
        acts.push(partial);
    }
    Ok(acts.into_iter().next_back().expect("non-empty"))
}

/// Execute a single layer against already-computed activations. Exposed
/// for the wall-clock profiler in [`crate::measure`].
pub fn execute_layer_public(model: &Model, i: usize, input: &Tensor, acts: &[Tensor]) -> Tensor {
    execute_layer(model, i, input, acts)
}

fn execute_layer(model: &Model, i: usize, input: &Tensor, acts: &[Tensor]) -> Tensor {
    let layer = &model.layers()[i];
    match &layer.op {
        Op::Input { .. } => input.clone(),
        Op::Dense { .. } => {
            let x = &acts[layer.inputs[0].index()];
            let w = layer.params.weight.as_ref().expect("dense weight");
            let y = ops::matmul(x, w);
            match &layer.params.bias {
                Some(b) => ops::add_bias(&y, b),
                None => y,
            }
        }
        Op::Conv1d { stride, .. } => ops::conv1d(
            &acts[layer.inputs[0].index()],
            layer.params.weight.as_ref().expect("conv kernel"),
            *stride,
        ),
        Op::Relu => ops::relu(&acts[layer.inputs[0].index()]),
        Op::LeakyRelu { slope } => ops::leaky_relu(&acts[layer.inputs[0].index()], *slope),
        Op::Tanh => ops::tanh(&acts[layer.inputs[0].index()]),
        Op::Sigmoid => ops::sigmoid(&acts[layer.inputs[0].index()]),
        Op::Softmax => ops::softmax(&acts[layer.inputs[0].index()]),
        Op::MaxPool { window } => ops::max_pool(&acts[layer.inputs[0].index()], *window),
        Op::MeanPool { window } => ops::mean_pool(&acts[layer.inputs[0].index()], *window),
        Op::L2Normalize => ops::l2_normalize(&acts[layer.inputs[0].index()]),
        Op::Scale => {
            let x = &acts[layer.inputs[0].index()];
            let scale = layer.params.weight.as_ref().expect("scale row");
            let mut y = Tensor::from_fn(x.rows(), x.cols(), |r, c| {
                x.get(r, c) * scale.get(0, c)
            });
            if let Some(shift) = &layer.params.bias {
                y = ops::add_bias(&y, shift);
            }
            y
        }
        Op::Add | Op::Multiply | Op::Concat => {
            let inputs: Vec<&Tensor> = layer.inputs.iter().map(|id| &acts[id.index()]).collect();
            match &layer.op {
                Op::Add => ops::add_n(&inputs),
                Op::Multiply => ops::multiply_n(&inputs),
                _ => ops::concat(&inputs),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_graph::{ModelBuilder, TaskKind};
    use sommelier_tensor::{Prng, Shape};

    fn rng() -> Prng {
        Prng::seed_from_u64(3)
    }

    #[test]
    fn dense_relu_forward_matches_hand_computation() {
        let w = Tensor::from_vec(2, 2, vec![1., -1., 2., 0.5]);
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(2))
            .dense_with(w, None)
            .relu()
            .build()
            .unwrap();
        let x = Tensor::row_vector(vec![1.0, 2.0]);
        let y = execute(&m, &x).unwrap();
        // x·W = [1+4, -1+1] = [5, 0] → relu → [5, 0]
        assert_eq!(y.as_slice(), &[5.0, 0.0]);
    }

    #[test]
    fn residual_add_feeds_both_paths() {
        let w = Tensor::identity(2);
        let mut b = ModelBuilder::new("m", TaskKind::Other, Shape::vector(2));
        let stem = b.cursor();
        b.dense_with(w, None);
        let branch = b.cursor();
        let m = b.add_from(&[stem, branch]).build().unwrap();
        let x = Tensor::row_vector(vec![3.0, 4.0]);
        let y = execute(&m, &x).unwrap();
        assert_eq!(y.as_slice(), &[6.0, 8.0]); // x + Ix
    }

    #[test]
    fn input_width_mismatch_rejected() {
        let mut r = rng();
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(4))
            .dense(2, &mut r)
            .build()
            .unwrap();
        let err = execute(&m, &Tensor::zeros(1, 5)).unwrap_err();
        assert_eq!(
            err,
            ExecError::InputWidthMismatch {
                expected: 4,
                actual: 5
            }
        );
    }

    #[test]
    fn trace_has_one_activation_per_layer() {
        let mut r = rng();
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(4))
            .dense(3, &mut r)
            .relu()
            .dense(2, &mut r)
            .build()
            .unwrap();
        let trace = execute_traced(&m, &Tensor::ones(2, 4)).unwrap();
        assert_eq!(trace.len(), m.num_layers());
        assert_eq!(trace[0].cols(), 4);
        assert_eq!(trace.last().unwrap().cols(), 2);
        assert_eq!(trace.last().unwrap().rows(), 2);
    }

    #[test]
    fn overrides_substitute_activations() {
        let mut r = rng();
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(3))
            .dense(3, &mut r)
            .relu()
            .dense(2, &mut r)
            .build()
            .unwrap();
        let x = Tensor::ones(1, 3);
        // Overriding the relu output with zeros must propagate: the final
        // dense layer sees zeros, so output is its bias (zero).
        let zero_relu = Tensor::zeros(1, 3);
        let y = execute_with_overrides(&m, &x, &[(LayerId(2), zero_relu)]).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn overrides_empty_matches_plain_execution() {
        let mut r = rng();
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(5))
            .dense(4, &mut r)
            .tanh()
            .dense(3, &mut r)
            .softmax()
            .build()
            .unwrap();
        let x = Tensor::gaussian(4, 5, 1.0, &mut r);
        let a = execute(&m, &x).unwrap();
        let b = execute_with_overrides(&m, &x, &[]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn batch_rows_execute_independently() {
        let mut r = rng();
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(6))
            .dense(4, &mut r)
            .relu()
            .dense(2, &mut r)
            .build()
            .unwrap();
        let x = Tensor::gaussian(3, 6, 1.0, &mut r);
        let batched = execute(&m, &x).unwrap();
        for row in 0..3 {
            let single = execute(&m, &x.row_tensor(row)).unwrap();
            for c in 0..2 {
                assert!((batched.get(row, c) - single.get(0, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn scale_applies_affine_per_feature() {
        let scale = Tensor::from_vec(1, 3, vec![2.0, 0.5, -1.0]);
        let shift = Tensor::from_vec(1, 3, vec![1.0, 0.0, 10.0]);
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(3))
            .scale_with(scale, Some(shift))
            .build()
            .unwrap();
        let x = Tensor::row_vector(vec![3.0, 4.0, 5.0]);
        let y = execute(&m, &x).unwrap();
        assert_eq!(y.as_slice(), &[7.0, 2.0, 5.0]);
    }

    #[test]
    fn unrolled_rnn_executes_and_is_bounded_by_tanh() {
        let mut r = rng();
        let m = ModelBuilder::new("rnn", TaskKind::Other, Shape::vector(6))
            .unrolled_rnn(4, &mut r)
            .build()
            .unwrap();
        let x = Tensor::gaussian(2, 6, 1.0, &mut r);
        let y = execute(&m, &x).unwrap();
        assert!(y.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn pooling_and_concat_execute() {
        let r = rng();
        let mut b = ModelBuilder::new("m", TaskKind::Other, Shape::vector(8));
        let stem = b.cursor();
        b.max_pool(2);
        let p1 = b.cursor();
        b.goto(stem).mean_pool(2);
        let p2 = b.cursor();
        let m = b.concat_from(&[p1, p2]).build().unwrap();
        let x = Tensor::row_vector(vec![1., 3., 2., 2., 5., 1., 0., 4.]);
        let y = execute(&m, &x).unwrap();
        assert_eq!(y.as_slice(), &[3., 2., 5., 4., 2., 2., 3., 2.]);
        let _ = r;
    }
}
