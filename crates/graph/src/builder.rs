//! Fluent model construction.
//!
//! [`ModelBuilder`] appends layers in topological order, tracking feature
//! widths so linear layers can size and initialize their weights. A
//! *cursor* points at the layer the next operation consumes; branching
//! (residual connections, Inception-style parallel paths) is expressed by
//! saving the cursor with [`ModelBuilder::cursor`], moving it with
//! [`ModelBuilder::goto`], and merging with the multi-source methods.

use crate::layer::{Layer, LayerId, Params};
use crate::model::{Model, ModelError};
use crate::op::Op;
use crate::task::TaskKind;
use sommelier_tensor::{Prng, Shape, Tensor};

/// Incremental builder for [`Model`].
///
/// ```
/// use sommelier_graph::{ModelBuilder, TaskKind};
/// use sommelier_tensor::{Prng, Shape};
///
/// let mut rng = Prng::seed_from_u64(1);
/// let model = ModelBuilder::new("mlp", TaskKind::Other, Shape::vector(8))
///     .dense(4, &mut rng)
///     .relu()
///     .dense(2, &mut rng)
///     .softmax()
///     .build()
///     .unwrap();
/// assert_eq!(model.output_width(), 2);
/// ```
pub struct ModelBuilder {
    name: String,
    task: TaskKind,
    input_shape: Shape,
    layers: Vec<Layer>,
    widths: Vec<usize>,
    cursor: LayerId,
}

impl ModelBuilder {
    /// Start a model; the input layer is created immediately with the
    /// flattened width of `input_shape`.
    pub fn new(name: impl Into<String>, task: TaskKind, input_shape: Shape) -> Self {
        let width = input_shape.flattened();
        ModelBuilder {
            name: name.into(),
            task,
            input_shape,
            layers: vec![Layer::new(
                "input",
                Op::Input { width },
                Vec::new(),
                Params::none(),
            )],
            widths: vec![width],
            cursor: LayerId(0),
        }
    }

    /// Id of the layer the next operation will consume.
    pub fn cursor(&self) -> LayerId {
        self.cursor
    }

    /// Move the cursor to an existing layer (to start a parallel branch).
    /// Panics on an out-of-range id.
    pub fn goto(&mut self, id: LayerId) -> &mut Self {
        assert!(id.index() < self.layers.len(), "goto out of range");
        self.cursor = id;
        self
    }

    /// Feature width at the cursor.
    pub fn current_width(&self) -> usize {
        self.widths[self.cursor.index()]
    }

    /// Number of layers appended so far.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        false // the input layer always exists
    }

    fn push(&mut self, name: String, op: Op, inputs: Vec<LayerId>, params: Params) -> LayerId {
        let in_widths: Vec<usize> = inputs.iter().map(|i| self.widths[i.index()]).collect();
        let out = op
            .output_width(&in_widths)
            .unwrap_or_else(|| panic!("builder produced invalid widths for {op}"));
        let id = LayerId(self.layers.len());
        self.layers.push(Layer::new(name, op, inputs, params));
        self.widths.push(out);
        self.cursor = id;
        id
    }

    fn push_unary(&mut self, op: Op, params: Params) -> LayerId {
        let name = format!("{}_{}", op.type_tag(), self.layers.len());
        let input = self.cursor;
        self.push(name, op, vec![input], params)
    }

    /// Append a fully-connected layer with He-initialized weights and zero
    /// bias.
    pub fn dense(&mut self, units: usize, rng: &mut Prng) -> &mut Self {
        let fan_in = self.current_width();
        let std_dev = (2.0 / fan_in as f64).sqrt();
        let weight = Tensor::gaussian(fan_in, units, std_dev, rng);
        let bias = Tensor::zeros(1, units);
        self.push_unary(Op::Dense { units }, Params::with_weight_bias(weight, bias));
        self
    }

    /// Append a fully-connected layer with explicit parameters.
    pub fn dense_with(&mut self, weight: Tensor, bias: Option<Tensor>) -> &mut Self {
        let units = weight.cols();
        let params = match bias {
            Some(b) => Params::with_weight_bias(weight, b),
            None => Params::with_weight(weight),
        };
        self.push_unary(Op::Dense { units }, params);
        self
    }

    /// Append a 1-D convolution with He-initialized kernel.
    pub fn conv1d(
        &mut self,
        out_channels: usize,
        kernel_size: usize,
        stride: usize,
        rng: &mut Prng,
    ) -> &mut Self {
        let std_dev = (2.0 / kernel_size as f64).sqrt();
        let kernel = Tensor::gaussian(out_channels, kernel_size, std_dev, rng);
        self.push_unary(
            Op::Conv1d {
                out_channels,
                kernel_size,
                stride,
            },
            Params::with_weight(kernel),
        );
        self
    }

    /// Append a 1-D convolution with an explicit kernel
    /// (`[out_channels, kernel_size]`).
    pub fn conv1d_with(&mut self, kernel: Tensor, stride: usize) -> &mut Self {
        let (out_channels, kernel_size) = (kernel.rows(), kernel.cols());
        self.push_unary(
            Op::Conv1d {
                out_channels,
                kernel_size,
                stride,
            },
            Params::with_weight(kernel),
        );
        self
    }

    /// Append a ReLU activation.
    pub fn relu(&mut self) -> &mut Self {
        self.push_unary(Op::Relu, Params::none());
        self
    }

    /// Append a leaky ReLU activation.
    pub fn leaky_relu(&mut self, slope: f32) -> &mut Self {
        self.push_unary(Op::LeakyRelu { slope }, Params::none());
        self
    }

    /// Append a tanh activation.
    pub fn tanh(&mut self) -> &mut Self {
        self.push_unary(Op::Tanh, Params::none());
        self
    }

    /// Append a sigmoid activation.
    pub fn sigmoid(&mut self) -> &mut Self {
        self.push_unary(Op::Sigmoid, Params::none());
        self
    }

    /// Append a softmax readout.
    pub fn softmax(&mut self) -> &mut Self {
        self.push_unary(Op::Softmax, Params::none());
        self
    }

    /// Append non-overlapping max pooling.
    pub fn max_pool(&mut self, window: usize) -> &mut Self {
        self.push_unary(Op::MaxPool { window }, Params::none());
        self
    }

    /// Append non-overlapping mean pooling.
    pub fn mean_pool(&mut self, window: usize) -> &mut Self {
        self.push_unary(Op::MeanPool { window }, Params::none());
        self
    }

    /// Append row-wise l2 normalization.
    pub fn l2_normalize(&mut self) -> &mut Self {
        self.push_unary(Op::L2Normalize, Params::none());
        self
    }

    /// Append a per-feature affine transform (inference-time batch norm)
    /// initialized near identity: scale ≈ 1 ± jitter, shift ≈ 0 ± jitter.
    pub fn scale(&mut self, jitter: f64, rng: &mut Prng) -> &mut Self {
        let w = self.current_width();
        let scale = Tensor::from_fn(1, w, |_, _| 1.0 + rng.gaussian_with(0.0, jitter) as f32);
        let shift = Tensor::from_fn(1, w, |_, _| rng.gaussian_with(0.0, jitter) as f32);
        self.push_unary(Op::Scale, Params::with_weight_bias(scale, shift));
        self
    }

    /// Append a per-feature affine transform with explicit scale and
    /// shift rows (each `[1, width]`).
    pub fn scale_with(&mut self, scale: Tensor, shift: Option<Tensor>) -> &mut Self {
        let params = match shift {
            Some(b) => Params::with_weight_bias(scale, b),
            None => Params::with_weight(scale),
        };
        self.push_unary(Op::Scale, params);
        self
    }

    /// Append an unrolled recurrent cell: `steps` iterations of
    /// `h ← tanh(h·W_h + x·W_x)` where `x` is the activation at entry.
    /// The paper treats recurrent operators as compositions of basic
    /// operators — "each recurrent operator itself can be treated as a
    /// model segment" (Section 4.2); this builds exactly that segment.
    pub fn unrolled_rnn(&mut self, steps: usize, rng: &mut Prng) -> &mut Self {
        let x = self.cursor();
        let width = self.current_width();
        for _ in 0..steps {
            let h = self.cursor();
            self.goto(x).dense(width, rng);
            let from_x = self.cursor();
            self.goto(h).dense(width, rng);
            let from_h = self.cursor();
            self.add_from(&[from_x, from_h]).tanh();
        }
        self
    }

    /// Merge several branches element-wise (`Add`); the cursor moves to the
    /// merge layer.
    pub fn add_from(&mut self, inputs: &[LayerId]) -> &mut Self {
        let name = format!("add_{}", self.layers.len());
        self.push(name, Op::Add, inputs.to_vec(), Params::none());
        self
    }

    /// Merge several branches element-wise (`Multiply`).
    pub fn multiply_from(&mut self, inputs: &[LayerId]) -> &mut Self {
        let name = format!("multiply_{}", self.layers.len());
        self.push(name, Op::Multiply, inputs.to_vec(), Params::none());
        self
    }

    /// Concatenate several branches along the feature axis.
    pub fn concat_from(&mut self, inputs: &[LayerId]) -> &mut Self {
        let name = format!("concat_{}", self.layers.len());
        self.push(name, Op::Concat, inputs.to_vec(), Params::none());
        self
    }

    /// A residual block: two dense+ReLU layers whose output is added back
    /// to the block input (the idiom of ResNet [He et al. 2016], which the
    /// paper calls out as the structure transferred across 50+ models).
    pub fn residual_block(&mut self, rng: &mut Prng) -> &mut Self {
        let entry = self.cursor;
        let width = self.current_width();
        self.dense(width, rng).relu().dense(width, rng);
        let branch = self.cursor;
        self.add_from(&[entry, branch]).relu();
        self
    }

    /// Finish and validate the model.
    pub fn build(&mut self) -> Result<Model, ModelError> {
        Model::new(
            self.name.clone(),
            self.task,
            self.input_shape.clone(),
            self.layers.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Prng {
        Prng::seed_from_u64(7)
    }

    #[test]
    fn sequential_build_infers_widths() {
        let mut r = rng();
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(16))
            .dense(8, &mut r)
            .relu()
            .max_pool(2)
            .dense(5, &mut r)
            .softmax()
            .build()
            .unwrap();
        assert_eq!(m.output_width(), 5);
        assert_eq!(m.num_layers(), 6);
    }

    #[test]
    fn residual_block_round_trips_width() {
        let mut r = rng();
        let m = ModelBuilder::new("res", TaskKind::Other, Shape::vector(8))
            .residual_block(&mut r)
            .residual_block(&mut r)
            .build()
            .unwrap();
        assert_eq!(m.output_width(), 8);
        // input + 2 * (dense, relu, dense, add, relu)
        assert_eq!(m.num_layers(), 11);
    }

    #[test]
    fn branching_with_concat() {
        let mut r = rng();
        let mut b = ModelBuilder::new("inception", TaskKind::Other, Shape::vector(12));
        let stem = b.cursor();
        b.dense(4, &mut r).relu();
        let branch_a = b.cursor();
        b.goto(stem).dense(6, &mut r).tanh();
        let branch_b = b.cursor();
        let m = b.concat_from(&[branch_a, branch_b]).build().unwrap();
        assert_eq!(m.output_width(), 10);
    }

    #[test]
    fn cursor_tracks_last_layer() {
        let mut r = rng();
        let mut b = ModelBuilder::new("m", TaskKind::Other, Shape::vector(4));
        assert_eq!(b.cursor(), LayerId(0));
        b.dense(2, &mut r);
        assert_eq!(b.cursor(), LayerId(1));
        assert_eq!(b.current_width(), 2);
    }

    #[test]
    #[should_panic(expected = "goto out of range")]
    fn goto_rejects_bad_id() {
        let mut b = ModelBuilder::new("m", TaskKind::Other, Shape::vector(4));
        b.goto(LayerId(5));
    }

    #[test]
    fn scale_layer_keeps_width_and_params() {
        let mut r = rng();
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(6))
            .dense(4, &mut r)
            .scale(0.01, &mut r)
            .build()
            .unwrap();
        assert_eq!(m.output_width(), 4);
        let scale_layer = m.layer(LayerId(2));
        assert_eq!(scale_layer.op.type_tag(), "scale");
        assert_eq!(scale_layer.params.weight.as_ref().unwrap().cols(), 4);
        // near-identity: values around 1.
        for &v in scale_layer.params.weight.as_ref().unwrap().as_slice() {
            assert!((v - 1.0).abs() < 0.1);
        }
    }

    #[test]
    fn scale_dense_equivalent_is_diagonal() {
        let scale = Tensor::from_vec(1, 3, vec![2.0, -1.0, 0.5]);
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(3))
            .scale_with(scale, None)
            .build()
            .unwrap();
        let d = m.dense_equivalent(LayerId(1)).unwrap();
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(1, 1), -1.0);
        assert_eq!(d.get(2, 2), 0.5);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn unrolled_rnn_builds_recurrent_composition() {
        let mut r = rng();
        let m = ModelBuilder::new("rnn", TaskKind::Other, Shape::vector(8))
            .unrolled_rnn(3, &mut r)
            .build()
            .unwrap();
        assert_eq!(m.output_width(), 8);
        // 3 steps × (dense, dense, add, tanh) after the input.
        assert_eq!(m.num_layers(), 1 + 3 * 4);
        let tags = m.op_tags();
        assert_eq!(tags.iter().filter(|t| *t == "tanh").count(), 3);
        assert_eq!(tags.iter().filter(|t| *t == "add").count(), 3);
    }

    #[test]
    fn dense_with_uses_given_weights() {
        let w = Tensor::from_fn(4, 2, |r, c| (r + c) as f32);
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(4))
            .dense_with(w.clone(), None)
            .build()
            .unwrap();
        assert_eq!(m.layer(LayerId(1)).params.weight.as_ref().unwrap(), &w);
    }
}
