//! Graphviz (DOT) export of model graphs.
//!
//! Visual inspection of the DAG is invaluable when debugging segment
//! matching or explaining why two models share structure. The export
//! renders one node per layer — labeled with its operator tag, output
//! width, and parameter count — and one edge per dataflow dependency.

use crate::layer::LayerId;
use crate::model::Model;
use crate::op::OpKind;
use std::fmt::Write as _;

/// Render the model as a Graphviz `digraph`.
///
/// Optionally, a set of layer ids can be highlighted (e.g. a matched
/// segment): those nodes are drawn filled.
pub fn to_dot(model: &Model, highlight: &[LayerId]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(&model.name));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (i, layer) in model.layers().iter().enumerate() {
        let id = LayerId(i);
        let params = layer.param_count();
        let label = if params > 0 {
            format!(
                "{}\\n[{} wide, {} params]",
                layer.op.type_tag(),
                model.width_of(id),
                params
            )
        } else {
            format!("{}\\n[{} wide]", layer.op.type_tag(), model.width_of(id))
        };
        let mut attrs = format!("label=\"{label}\"");
        if layer.op.kind() == OpKind::Source {
            attrs.push_str(", shape=ellipse");
        }
        if highlight.contains(&id) {
            attrs.push_str(", style=filled, fillcolor=lightblue");
        }
        let _ = writeln!(out, "  n{i} [{attrs}];");
    }
    for (i, layer) in model.layers().iter().enumerate() {
        for input in &layer.inputs {
            let _ = writeln!(out, "  n{} -> n{i};", input.index());
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c == '"' || c == '\\' { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::task::TaskKind;
    use sommelier_tensor::{Prng, Shape};

    fn model() -> Model {
        let mut rng = Prng::seed_from_u64(1);
        let mut b = ModelBuilder::new("dot-test", TaskKind::Other, Shape::vector(8));
        let stem = b.cursor();
        b.dense(4, &mut rng).relu();
        let a = b.cursor();
        b.goto(stem).dense(4, &mut rng);
        let c = b.cursor();
        b.add_from(&[a, c]).softmax();
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_every_node_and_edge() {
        let m = model();
        let dot = to_dot(&m, &[]);
        assert!(dot.starts_with("digraph \"dot-test\""));
        for i in 0..m.num_layers() {
            assert!(dot.contains(&format!("n{i} [")), "missing node {i}");
        }
        // The add layer has two incoming edges.
        let add_idx = m
            .op_tags()
            .iter()
            .position(|t| t == "add")
            .expect("add exists");
        let edge_count = dot.matches(&format!("-> n{add_idx};")).count();
        assert_eq!(edge_count, 2);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn highlight_fills_selected_nodes() {
        let m = model();
        let dot = to_dot(&m, &[LayerId(1)]);
        assert!(dot.contains("n1 [label=\"dense:4"));
        assert!(dot.contains("fillcolor=lightblue"));
        assert_eq!(dot.matches("fillcolor").count(), 1);
    }

    #[test]
    fn quotes_in_names_are_sanitized() {
        let m = model().renamed("evil\"name");
        let dot = to_dot(&m, &[]);
        assert!(dot.contains("digraph \"evil_name\""));
    }

    #[test]
    fn source_node_is_an_ellipse() {
        let dot = to_dot(&model(), &[]);
        assert!(dot.contains("shape=ellipse"));
    }
}
