//! The operator taxonomy.
//!
//! Paper Section 4.2 classifies DNN layers into *linear* operators
//! (everything that multiplies by a weight matrix), *non-linear* operators
//! (activations, pooling, normalization), and *multi-source combinations*
//! (add, multiply, concat). Recurrent cells are compositions of these and
//! are therefore not separate primitives. The classification drives both
//! the error-propagation bounds and the per-operator latency table.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An atomic DNN operator. Parameters (weights) live on the layer, not the
/// operator; the operator records only structural attributes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Source node publishing the model input; `width` is the flattened
    /// feature width.
    Input { width: usize },
    /// Fully-connected layer producing `units` features. Weight is
    /// `[in, units]`, bias `[1, units]`.
    Dense { units: usize },
    /// 1-D local convolution over the feature axis: `out_channels` kernels
    /// of `kernel_size` slide with `stride`. Kernel tensor is
    /// `[out_channels, kernel_size]`.
    Conv1d {
        out_channels: usize,
        kernel_size: usize,
        stride: usize,
    },
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with the given negative-side slope (serialized as f32).
    LeakyRelu { slope: f32 },
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Row-wise softmax.
    Softmax,
    /// Non-overlapping max pooling with the given window.
    MaxPool { window: usize },
    /// Non-overlapping mean pooling with the given window.
    MeanPool { window: usize },
    /// Row-wise l2 normalization.
    L2Normalize,
    /// Per-feature affine transform `x·diag(scale) + shift` — the
    /// inference-time form of batch normalization. Weight is the
    /// `[1, width]` scale row; bias the `[1, width]` shift row.
    Scale,
    /// Element-wise sum of all inputs (equal widths).
    Add,
    /// Element-wise product of all inputs (equal widths).
    Multiply,
    /// Feature-axis concatenation of all inputs.
    Concat,
}

/// Coarse operator category, per the paper's Section 4.2 taxonomy. The
/// error-propagation analysis dispatches on this.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// The model input source.
    Source,
    /// Matrix-multiplication kernels (Dense, Conv1d, Embedding, …).
    Linear,
    /// Point-wise activations (ReLU family, tanh, sigmoid, softmax).
    Activation,
    /// Pooling reductions.
    Pooling,
    /// Normalization layers.
    Normalization,
    /// Multi-input combinations (add, multiply, concat).
    MultiSource,
}

impl Op {
    /// The taxonomy category of this operator.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Input { .. } => OpKind::Source,
            Op::Dense { .. } | Op::Conv1d { .. } | Op::Scale => OpKind::Linear,
            Op::Relu | Op::LeakyRelu { .. } | Op::Tanh | Op::Sigmoid | Op::Softmax => {
                OpKind::Activation
            }
            Op::MaxPool { .. } | Op::MeanPool { .. } => OpKind::Pooling,
            Op::L2Normalize => OpKind::Normalization,
            Op::Add | Op::Multiply | Op::Concat => OpKind::MultiSource,
        }
    }

    /// Whether the operator carries trainable parameters.
    pub fn has_params(&self) -> bool {
        self.kind() == OpKind::Linear
    }

    /// Number of inputs the operator expects: `0` for the source, `None`
    /// for variadic multi-source operators, `Some(1)` otherwise.
    pub fn arity(&self) -> Option<usize> {
        match self.kind() {
            OpKind::Source => Some(0),
            OpKind::MultiSource => None,
            _ => Some(1),
        }
    }

    /// Output feature width given the widths of all inputs, or `None` if
    /// the inputs are invalid for this operator (wrong count, mismatched
    /// widths, or a kernel larger than its input).
    pub fn output_width(&self, input_widths: &[usize]) -> Option<usize> {
        match self {
            Op::Input { width } => input_widths.is_empty().then_some(*width),
            Op::Dense { units } => (input_widths.len() == 1).then_some(*units),
            Op::Conv1d {
                out_channels,
                kernel_size,
                stride,
            } => {
                let [input] = input_widths else {
                    return None;
                };
                if *kernel_size > *input || *stride == 0 {
                    return None;
                }
                Some(out_channels * ((input - kernel_size) / stride + 1))
            }
            Op::Relu | Op::LeakyRelu { .. } | Op::Tanh | Op::Sigmoid | Op::Softmax
            | Op::L2Normalize | Op::Scale => (input_widths.len() == 1).then(|| input_widths[0]),
            Op::MaxPool { window } | Op::MeanPool { window } => {
                if input_widths.len() != 1 || *window == 0 {
                    return None;
                }
                Some(input_widths[0].div_ceil(*window))
            }
            Op::Add | Op::Multiply => {
                let first = *input_widths.first()?;
                input_widths.iter().all(|&w| w == first).then_some(first)
            }
            Op::Concat => {
                if input_widths.is_empty() {
                    return None;
                }
                Some(input_widths.iter().sum())
            }
        }
    }

    /// A short stable mnemonic for the operator type (weights excluded).
    /// Used in structural fingerprints and chain signatures.
    pub fn type_tag(&self) -> String {
        match self {
            Op::Input { width } => format!("input:{width}"),
            Op::Dense { units } => format!("dense:{units}"),
            Op::Conv1d {
                out_channels,
                kernel_size,
                stride,
            } => format!("conv1d:{out_channels}x{kernel_size}s{stride}"),
            Op::Relu => "relu".into(),
            Op::LeakyRelu { slope } => format!("lrelu:{slope}"),
            Op::Tanh => "tanh".into(),
            Op::Sigmoid => "sigmoid".into(),
            Op::Softmax => "softmax".into(),
            Op::MaxPool { window } => format!("maxpool:{window}"),
            Op::MeanPool { window } => format!("meanpool:{window}"),
            Op::L2Normalize => "l2norm".into(),
            Op::Scale => "scale".into(),
            Op::Add => "add".into(),
            Op::Multiply => "multiply".into(),
            Op::Concat => "concat".into(),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.type_tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_follow_paper_taxonomy() {
        assert_eq!(Op::Dense { units: 4 }.kind(), OpKind::Linear);
        assert_eq!(
            Op::Conv1d {
                out_channels: 2,
                kernel_size: 3,
                stride: 1
            }
            .kind(),
            OpKind::Linear
        );
        assert_eq!(Op::Relu.kind(), OpKind::Activation);
        assert_eq!(Op::Softmax.kind(), OpKind::Activation);
        assert_eq!(Op::MaxPool { window: 2 }.kind(), OpKind::Pooling);
        assert_eq!(Op::L2Normalize.kind(), OpKind::Normalization);
        assert_eq!(Op::Add.kind(), OpKind::MultiSource);
        assert_eq!(Op::Input { width: 8 }.kind(), OpKind::Source);
    }

    #[test]
    fn only_linear_ops_have_params() {
        assert!(Op::Dense { units: 4 }.has_params());
        assert!(!Op::Relu.has_params());
        assert!(!Op::Concat.has_params());
    }

    #[test]
    fn arity_rules() {
        assert_eq!(Op::Input { width: 8 }.arity(), Some(0));
        assert_eq!(Op::Relu.arity(), Some(1));
        assert_eq!(Op::Add.arity(), None);
    }

    #[test]
    fn dense_output_width_is_units() {
        assert_eq!(Op::Dense { units: 10 }.output_width(&[7]), Some(10));
        assert_eq!(Op::Dense { units: 10 }.output_width(&[7, 7]), None);
    }

    #[test]
    fn conv_output_width_matches_geometry() {
        let op = Op::Conv1d {
            out_channels: 3,
            kernel_size: 4,
            stride: 2,
        };
        // windows = (10-4)/2+1 = 4 → 12 outputs
        assert_eq!(op.output_width(&[10]), Some(12));
        // kernel larger than input is invalid
        assert_eq!(op.output_width(&[3]), None);
    }

    #[test]
    fn elementwise_preserves_width() {
        assert_eq!(Op::Relu.output_width(&[9]), Some(9));
        assert_eq!(Op::L2Normalize.output_width(&[9]), Some(9));
    }

    #[test]
    fn pool_width_rounds_up() {
        assert_eq!(Op::MaxPool { window: 2 }.output_width(&[5]), Some(3));
        assert_eq!(Op::MeanPool { window: 4 }.output_width(&[8]), Some(2));
        assert_eq!(Op::MaxPool { window: 0 }.output_width(&[8]), None);
    }

    #[test]
    fn add_requires_equal_widths() {
        assert_eq!(Op::Add.output_width(&[4, 4, 4]), Some(4));
        assert_eq!(Op::Add.output_width(&[4, 5]), None);
        assert_eq!(Op::Add.output_width(&[]), None);
    }

    #[test]
    fn concat_sums_widths() {
        assert_eq!(Op::Concat.output_width(&[2, 3, 4]), Some(9));
    }

    #[test]
    fn type_tags_are_distinct_per_config() {
        assert_ne!(
            Op::Dense { units: 4 }.type_tag(),
            Op::Dense { units: 8 }.type_tag()
        );
        assert_eq!(Op::Relu.type_tag(), "relu");
    }
}
