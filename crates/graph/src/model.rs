//! The model DAG.
//!
//! A [`Model`] is a validated directed acyclic graph of [`Layer`]s stored
//! in topological order: every layer's inputs have strictly smaller ids, so
//! acyclicity holds by construction and a plain forward scan is a valid
//! execution order. The first layer is the unique `Input` source and the
//! last layer is the model output.

use crate::layer::{Layer, LayerId, Params};
use crate::op::{Op, OpKind};
use crate::task::TaskKind;
use serde::{Deserialize, Serialize};
use sommelier_tensor::{Shape, Tensor};
use std::collections::BTreeMap;
use std::fmt;

/// Structural validation failure for a model.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// Model has no layers.
    Empty,
    /// The first layer must be the unique `Input`.
    MissingInput,
    /// An `Input` operator appeared after layer 0.
    ExtraInput { layer: usize },
    /// The declared logical input shape flattens to a different width than
    /// the `Input` layer publishes.
    InputShapeMismatch { declared: usize, layer_width: usize },
    /// A layer referenced an input id ≥ its own id (breaks topological
    /// order) or an id out of range.
    BadInputRef { layer: usize, input: usize },
    /// A layer received the wrong number of inputs for its operator.
    BadArity {
        layer: usize,
        expected: usize,
        actual: usize,
    },
    /// The operator rejected its input widths (e.g. mismatched `Add`
    /// widths, kernel larger than its input).
    BadWidths { layer: usize },
    /// Parameter tensors have the wrong shape for the operator.
    BadParams { layer: usize, detail: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Empty => write!(f, "model has no layers"),
            ModelError::MissingInput => write!(f, "layer 0 must be an Input operator"),
            ModelError::ExtraInput { layer } => {
                write!(f, "layer {layer}: Input operators are only allowed at position 0")
            }
            ModelError::InputShapeMismatch {
                declared,
                layer_width,
            } => write!(
                f,
                "declared input shape flattens to {declared} but the Input layer publishes {layer_width}"
            ),
            ModelError::BadInputRef { layer, input } => {
                write!(f, "layer {layer}: input reference {input} is not an earlier layer")
            }
            ModelError::BadArity {
                layer,
                expected,
                actual,
            } => write!(f, "layer {layer}: expected {expected} inputs, got {actual}"),
            ModelError::BadWidths { layer } => {
                write!(f, "layer {layer}: operator rejected its input widths")
            }
            ModelError::BadParams { layer, detail } => {
                write!(f, "layer {layer}: bad parameters: {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A validated DNN model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Repository-visible model name, e.g. `"resnetish-50"`.
    pub name: String,
    /// Version string; repositories key on `(name, version)`.
    pub version: String,
    /// Inference task category.
    pub task: TaskKind,
    /// Logical (pre-flattening) input shape, e.g. `[224, 224, 3]`.
    pub input_shape: Shape,
    /// Optional per-dimension output labels for classification tasks
    /// (paper Section 4.1: syntax check between models).
    pub output_syntax: Option<Vec<String>>,
    /// Free-form annotations (provenance, series, notes).
    pub metadata: BTreeMap<String, String>,
    layers: Vec<Layer>,
    /// Cached inferred output width of each layer.
    widths: Vec<usize>,
}

impl Model {
    /// Validate and construct a model. See [`ModelError`] for the checks.
    pub fn new(
        name: impl Into<String>,
        task: TaskKind,
        input_shape: Shape,
        layers: Vec<Layer>,
    ) -> Result<Model, ModelError> {
        if layers.is_empty() {
            return Err(ModelError::Empty);
        }
        let Op::Input { width } = layers[0].op else {
            return Err(ModelError::MissingInput);
        };
        if input_shape.flattened() != width {
            return Err(ModelError::InputShapeMismatch {
                declared: input_shape.flattened(),
                layer_width: width,
            });
        }
        let mut widths = Vec::with_capacity(layers.len());
        for (i, layer) in layers.iter().enumerate() {
            if i > 0 && matches!(layer.op, Op::Input { .. }) {
                return Err(ModelError::ExtraInput { layer: i });
            }
            if let Some(expected) = layer.op.arity() {
                if layer.inputs.len() != expected {
                    return Err(ModelError::BadArity {
                        layer: i,
                        expected,
                        actual: layer.inputs.len(),
                    });
                }
            } else if layer.inputs.is_empty() {
                return Err(ModelError::BadArity {
                    layer: i,
                    expected: 1,
                    actual: 0,
                });
            }
            let mut in_widths = Vec::with_capacity(layer.inputs.len());
            for &input in &layer.inputs {
                if input.index() >= i {
                    return Err(ModelError::BadInputRef {
                        layer: i,
                        input: input.index(),
                    });
                }
                in_widths.push(widths[input.index()]);
            }
            let out = layer
                .op
                .output_width(&in_widths)
                .ok_or(ModelError::BadWidths { layer: i })?;
            Self::check_params(i, layer, &in_widths)?;
            widths.push(out);
        }
        Ok(Model {
            name: name.into(),
            version: "1".into(),
            task,
            input_shape,
            output_syntax: None,
            metadata: BTreeMap::new(),
            layers,
            widths,
        })
    }

    fn check_params(i: usize, layer: &Layer, in_widths: &[usize]) -> Result<(), ModelError> {
        let bad = |detail: String| ModelError::BadParams { layer: i, detail };
        match &layer.op {
            Op::Dense { units } => {
                let w = layer
                    .params
                    .weight
                    .as_ref()
                    .ok_or_else(|| bad("Dense layer requires a weight".into()))?;
                if w.rows() != in_widths[0] || w.cols() != *units {
                    return Err(bad(format!(
                        "Dense weight is {}x{}, expected {}x{}",
                        w.rows(),
                        w.cols(),
                        in_widths[0],
                        units
                    )));
                }
                if let Some(b) = &layer.params.bias {
                    if b.rows() != 1 || b.cols() != *units {
                        return Err(bad(format!(
                            "Dense bias is {}x{}, expected 1x{}",
                            b.rows(),
                            b.cols(),
                            units
                        )));
                    }
                }
            }
            Op::Conv1d {
                out_channels,
                kernel_size,
                ..
            } => {
                let w = layer
                    .params
                    .weight
                    .as_ref()
                    .ok_or_else(|| bad("Conv1d layer requires a kernel".into()))?;
                if w.rows() != *out_channels || w.cols() != *kernel_size {
                    return Err(bad(format!(
                        "Conv1d kernel is {}x{}, expected {}x{}",
                        w.rows(),
                        w.cols(),
                        out_channels,
                        kernel_size
                    )));
                }
                if layer.params.bias.is_some() {
                    return Err(bad("Conv1d does not take a bias".into()));
                }
            }
            Op::Scale => {
                let width = in_widths[0];
                let w = layer
                    .params
                    .weight
                    .as_ref()
                    .ok_or_else(|| bad("Scale layer requires a scale row".into()))?;
                if w.rows() != 1 || w.cols() != width {
                    return Err(bad(format!(
                        "Scale weight is {}x{}, expected 1x{width}",
                        w.rows(),
                        w.cols()
                    )));
                }
                if let Some(b) = &layer.params.bias {
                    if b.rows() != 1 || b.cols() != width {
                        return Err(bad(format!(
                            "Scale shift is {}x{}, expected 1x{width}",
                            b.rows(),
                            b.cols()
                        )));
                    }
                }
            }
            _ => {
                if layer.params.count() != 0 {
                    return Err(bad("non-linear operators carry no parameters".into()));
                }
            }
        }
        Ok(())
    }

    /// All layers in topological order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Layer lookup by id.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.index()]
    }

    /// Number of layers (including the input source).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Output feature width of a layer.
    pub fn width_of(&self, id: LayerId) -> usize {
        self.widths[id.index()]
    }

    /// Flattened input width.
    pub fn input_width(&self) -> usize {
        self.widths[0]
    }

    /// Width of the model output (the last layer).
    pub fn output_width(&self) -> usize {
        *self.widths.last().expect("validated model is non-empty")
    }

    /// Id of the output layer.
    pub fn output_id(&self) -> LayerId {
        LayerId(self.layers.len() - 1)
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Ids of layers carrying parameters (the linear operators), in order.
    pub fn linear_layers(&self) -> Vec<LayerId> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.op.kind() == OpKind::Linear)
            .map(|(i, _)| LayerId(i))
            .collect()
    }

    /// For each layer, the ids of the layers that consume its output.
    pub fn consumers(&self) -> Vec<Vec<LayerId>> {
        let mut out = vec![Vec::new(); self.layers.len()];
        for (i, layer) in self.layers.iter().enumerate() {
            for &input in &layer.inputs {
                out[input.index()].push(LayerId(i));
            }
        }
        out
    }

    /// Longest path length (in layers) from input to output; a proxy for
    /// model depth `d` in the generalization bound (paper Section 4.1).
    pub fn depth(&self) -> usize {
        let mut dist = vec![0usize; self.layers.len()];
        for (i, layer) in self.layers.iter().enumerate() {
            let longest_in = layer
                .inputs
                .iter()
                .map(|id| dist[id.index()])
                .max()
                .unwrap_or(0);
            dist[i] = longest_in + usize::from(i > 0);
        }
        *dist.last().unwrap_or(&0)
    }

    /// The dense-equivalent weight matrix of a linear layer: a `[in, out]`
    /// matrix `M` such that the layer computes `x · M` (plus bias, for
    /// Dense). Returns `None` for non-linear layers.
    ///
    /// Convolution kernels are materialized into their (sparse) dense form,
    /// which is how the paper's analysis treats them (Section 4.2: kernels
    /// "are always internally reshaped into a single 2D matrix").
    pub fn dense_equivalent(&self, id: LayerId) -> Option<Tensor> {
        let layer = self.layer(id);
        match &layer.op {
            Op::Dense { .. } => layer.params.weight.clone(),
            Op::Scale => {
                let scale = layer.params.weight.as_ref()?;
                let w = scale.cols();
                let mut diag = Tensor::zeros(w, w);
                for i in 0..w {
                    diag.set(i, i, scale.get(0, i));
                }
                Some(diag)
            }
            Op::Conv1d {
                out_channels,
                kernel_size,
                stride,
            } => {
                let input_width = self.width_of(layer.inputs[0]);
                let windows = (input_width - kernel_size) / stride + 1;
                let kernel = layer.params.weight.as_ref()?;
                let mut dense = Tensor::zeros(input_width, out_channels * windows);
                for o in 0..*out_channels {
                    for j in 0..windows {
                        for c in 0..*kernel_size {
                            let r = j * stride + c;
                            let col = o * windows + j;
                            dense.set(r, col, dense.get(r, col) + kernel.get(o, c));
                        }
                    }
                }
                Some(dense)
            }
            _ => None,
        }
    }

    /// Replace the parameters of a layer, revalidating shapes. Used by the
    /// zoo's fine-tuning simulation and by segment replacement.
    pub fn set_params(&mut self, id: LayerId, params: Params) -> Result<(), ModelError> {
        let in_widths: Vec<usize> = self.layers[id.index()]
            .inputs
            .iter()
            .map(|i| self.widths[i.index()])
            .collect();
        let mut candidate = self.layers[id.index()].clone();
        candidate.params = params;
        Self::check_params(id.index(), &candidate, &in_widths)?;
        self.layers[id.index()] = candidate;
        Ok(())
    }

    /// Split the model into a parameter-free *skeleton* plus the
    /// extracted `(layer, params)` pairs, in layer order. This is the
    /// storage shape of `sommelier-repo`'s chunked manifests: the
    /// skeleton travels inline in the manifest while the parameter
    /// tensors travel as content-addressed chunks. The skeleton is not
    /// a valid executable model (its linear layers are bare) and exists
    /// only to be rehydrated by [`Model::attach_params`].
    pub fn strip_params(&self) -> (Model, Vec<(LayerId, Params)>) {
        let mut skeleton = self.clone();
        let mut extracted = Vec::new();
        for (i, layer) in skeleton.layers.iter_mut().enumerate() {
            if layer.params.count() != 0 {
                let params = std::mem::replace(&mut layer.params, Params::none());
                extracted.push((LayerId(i), params));
            }
        }
        (skeleton, extracted)
    }

    /// Rehydrate a skeleton produced by [`Model::strip_params`]:
    /// reattach every extracted parameter set, revalidating shapes,
    /// then re-check the whole graph so a parameterized operator left
    /// bare (a truncated manifest) is rejected rather than producing a
    /// model that fails at execution time.
    pub fn attach_params(
        skeleton: &Model,
        params: impl IntoIterator<Item = (LayerId, Params)>,
    ) -> Result<Model, ModelError> {
        let mut model = skeleton.clone();
        for (id, p) in params {
            if id.index() >= model.layers.len() {
                return Err(ModelError::BadParams {
                    layer: id.index(),
                    detail: format!("no such layer (model has {})", model.layers.len()),
                });
            }
            model.set_params(id, p)?;
        }
        for (i, layer) in model.layers.iter().enumerate() {
            let in_widths: Vec<usize> = layer
                .inputs
                .iter()
                .map(|x| model.widths[x.index()])
                .collect();
            Self::check_params(i, layer, &in_widths)?;
        }
        Ok(model)
    }

    /// A copy of this model under a new name (same structure and weights).
    pub fn renamed(&self, name: impl Into<String>) -> Model {
        let mut m = self.clone();
        m.name = name.into();
        m
    }

    /// Operator type tags along the topological order — the "operational
    /// sequence" view used by segment extraction (paper Section 4.2).
    pub fn op_tags(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.op.type_tag()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use sommelier_tensor::Prng;

    fn tiny_model() -> Model {
        let mut rng = Prng::seed_from_u64(1);
        ModelBuilder::new("tiny", TaskKind::ImageRecognition, Shape::vector(8))
            .dense(4, &mut rng)
            .relu()
            .dense(3, &mut rng)
            .softmax()
            .build()
            .unwrap()
    }

    #[test]
    fn empty_model_rejected() {
        assert_eq!(
            Model::new("m", TaskKind::Other, Shape::vector(1), vec![]),
            Err(ModelError::Empty)
        );
    }

    #[test]
    fn first_layer_must_be_input() {
        let layers = vec![Layer::new("r", Op::Relu, vec![], Params::none())];
        assert_eq!(
            Model::new("m", TaskKind::Other, Shape::vector(1), layers),
            Err(ModelError::MissingInput)
        );
    }

    #[test]
    fn input_shape_must_flatten_to_input_width() {
        let layers = vec![Layer::new(
            "in",
            Op::Input { width: 10 },
            vec![],
            Params::none(),
        )];
        let err = Model::new("m", TaskKind::Other, Shape::vector(9), layers).unwrap_err();
        assert!(matches!(err, ModelError::InputShapeMismatch { .. }));
    }

    #[test]
    fn forward_references_rejected() {
        let layers = vec![
            Layer::new("in", Op::Input { width: 4 }, vec![], Params::none()),
            Layer::new("r", Op::Relu, vec![LayerId(1)], Params::none()),
        ];
        let err = Model::new("m", TaskKind::Other, Shape::vector(4), layers).unwrap_err();
        assert!(matches!(err, ModelError::BadInputRef { layer: 1, input: 1 }));
    }

    #[test]
    fn dense_weight_shape_checked() {
        let layers = vec![
            Layer::new("in", Op::Input { width: 4 }, vec![], Params::none()),
            Layer::new(
                "d",
                Op::Dense { units: 3 },
                vec![LayerId(0)],
                Params::with_weight(Tensor::zeros(5, 3)), // wrong in-width
            ),
        ];
        let err = Model::new("m", TaskKind::Other, Shape::vector(4), layers).unwrap_err();
        assert!(matches!(err, ModelError::BadParams { layer: 1, .. }));
    }

    #[test]
    fn widths_inferred_along_graph() {
        let m = tiny_model();
        assert_eq!(m.input_width(), 8);
        assert_eq!(m.output_width(), 3);
        assert_eq!(m.width_of(LayerId(1)), 4);
    }

    #[test]
    fn param_count_totals_linear_layers() {
        let m = tiny_model();
        // dense1: 8*4 + 4; dense2: 4*3 + 3
        assert_eq!(m.param_count(), 32 + 4 + 12 + 3);
        assert_eq!(m.linear_layers().len(), 2);
    }

    #[test]
    fn depth_counts_longest_path() {
        let m = tiny_model();
        assert_eq!(m.depth(), 4); // dense, relu, dense, softmax
    }

    #[test]
    fn consumers_inverts_edges() {
        let m = tiny_model();
        let cons = m.consumers();
        assert_eq!(cons[0], vec![LayerId(1)]);
        assert!(cons[m.output_id().index()].is_empty());
    }

    #[test]
    fn dense_equivalent_of_conv_matches_execution() {
        use sommelier_tensor::ops;
        let mut rng = Prng::seed_from_u64(2);
        let m = ModelBuilder::new("c", TaskKind::Other, Shape::vector(6))
            .conv1d(2, 3, 1, &mut rng)
            .build()
            .unwrap();
        let conv_id = LayerId(1);
        let dense = m.dense_equivalent(conv_id).unwrap();
        let x = Tensor::gaussian(3, 6, 1.0, &mut rng);
        let kernel = m.layer(conv_id).params.weight.as_ref().unwrap();
        let direct = ops::conv1d(&x, kernel, 1);
        let via_dense = ops::matmul(&x, &dense);
        for (a, b) in direct.as_slice().iter().zip(via_dense.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn set_params_revalidates() {
        let mut m = tiny_model();
        let id = m.linear_layers()[0];
        let err = m.set_params(id, Params::with_weight(Tensor::zeros(1, 1)));
        assert!(err.is_err());
        let ok = m.set_params(
            id,
            Params::with_weight_bias(Tensor::zeros(8, 4), Tensor::zeros(1, 4)),
        );
        assert!(ok.is_ok());
        assert_eq!(m.layer(id).params.weight.as_ref().unwrap().max_abs(), 0.0);
    }

    #[test]
    fn strip_then_attach_round_trips() {
        let m = tiny_model();
        let (skeleton, params) = m.strip_params();
        assert_eq!(skeleton.param_count(), 0);
        assert_eq!(skeleton.op_tags(), m.op_tags());
        assert_eq!(params.len(), 2);
        let back = Model::attach_params(&skeleton, params).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn attach_rejects_bare_parameterized_layers() {
        let m = tiny_model();
        let (skeleton, mut params) = m.strip_params();
        params.pop(); // lose the last dense layer's weights
        let err = Model::attach_params(&skeleton, params).unwrap_err();
        assert!(matches!(err, ModelError::BadParams { .. }));
    }

    #[test]
    fn attach_rejects_out_of_range_layer() {
        let m = tiny_model();
        let (skeleton, mut params) = m.strip_params();
        params.push((LayerId(99), Params::with_weight(Tensor::zeros(1, 1))));
        assert!(Model::attach_params(&skeleton, params).is_err());
    }

    #[test]
    fn extra_input_rejected() {
        let layers = vec![
            Layer::new("in", Op::Input { width: 4 }, vec![], Params::none()),
            Layer::new("in2", Op::Input { width: 4 }, vec![], Params::none()),
        ];
        let err = Model::new("m", TaskKind::Other, Shape::vector(4), layers).unwrap_err();
        assert_eq!(err, ModelError::ExtraInput { layer: 1 });
    }

    #[test]
    fn op_tags_reflect_structure() {
        let m = tiny_model();
        assert_eq!(
            m.op_tags(),
            vec!["input:8", "dense:4", "relu", "dense:3", "softmax"]
        );
    }
}
