//! Hardware-independent cost accounting.
//!
//! The paper's resource profiles are "actually computational complexity
//! profiles: TFLOPS captures the time complexity whereas memory usage
//! measures space complexity" (Sections 1 and 5.5). This module computes
//! both from the graph alone: floating-point operations per single-item
//! inference, parameter bytes, and intermediate activation bytes. The
//! hardware-*dependent* latency estimate built on top of these lives in
//! `sommelier-runtime::latency`.

use crate::layer::{Layer, LayerId};
use crate::model::Model;
use crate::op::Op;
use serde::{Deserialize, Serialize};

/// Bytes per scalar (all tensors are f32).
pub const BYTES_PER_SCALAR: usize = 4;

/// Cost of executing one layer on a single input row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Floating-point operations (multiply-accumulate counted as 2).
    pub flops: u64,
    /// Bytes of trainable parameters.
    pub param_bytes: u64,
    /// Bytes of the layer's output activation.
    pub activation_bytes: u64,
}

/// Aggregate cost of a whole model (per single-item inference).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelCost {
    pub flops: u64,
    pub param_bytes: u64,
    pub activation_bytes: u64,
}

impl ModelCost {
    /// Total memory footprint: parameters plus every intermediate
    /// activation, following the paper's "sum up the TFLOPS and
    /// intermediate data sizes of all computation-intensive operators"
    /// (Section 5.3).
    pub fn memory_bytes(&self) -> u64 {
        self.param_bytes + self.activation_bytes
    }

    /// FLOPs expressed in GFLOPs.
    pub fn gflops(&self) -> f64 {
        self.flops as f64 / 1e9
    }

    /// Memory expressed in MB.
    pub fn memory_mb(&self) -> f64 {
        self.memory_bytes() as f64 / 1e6
    }
}

/// Cost of a single layer given the widths of its inputs and output.
pub fn layer_cost(layer: &Layer, input_widths: &[usize], output_width: usize) -> LayerCost {
    let out = output_width as u64;
    let flops = match &layer.op {
        Op::Input { .. } => 0,
        // MAC = 2 flops; bias add = 1 per output.
        Op::Dense { units } => {
            let inputs = input_widths[0] as u64;
            2 * inputs * (*units as u64) + layer.params.bias.as_ref().map_or(0, |_| *units as u64)
        }
        Op::Conv1d { kernel_size, .. } => 2 * (*kernel_size as u64) * out,
        Op::Relu | Op::LeakyRelu { .. } => out,
        // exp + sub + div (+max scan) per element.
        Op::Softmax => 5 * out,
        // tanh/sigmoid ≈ a handful of flops per element.
        Op::Tanh | Op::Sigmoid => 4 * out,
        // Each output scans its window once.
        Op::MaxPool { .. } | Op::MeanPool { .. } => input_widths[0] as u64,
        // Norm computation + scale.
        Op::L2Normalize => 3 * out,
        // Multiply by the scale and add the shift per feature.
        Op::Scale => 2 * out,
        Op::Add | Op::Multiply => (input_widths.len() as u64).saturating_sub(1) * out,
        Op::Concat => 0,
    };
    LayerCost {
        flops,
        param_bytes: (layer.param_count() * BYTES_PER_SCALAR) as u64,
        activation_bytes: (output_width * BYTES_PER_SCALAR) as u64,
    }
}

/// Cost of a single layer within its model context.
pub fn layer_cost_in(model: &Model, id: LayerId) -> LayerCost {
    let layer = model.layer(id);
    let input_widths: Vec<usize> = layer
        .inputs
        .iter()
        .map(|i| model.width_of(*i))
        .collect();
    layer_cost(layer, &input_widths, model.width_of(id))
}

/// Aggregate cost of a model.
pub fn model_cost(model: &Model) -> ModelCost {
    let mut total = ModelCost::default();
    for i in 0..model.num_layers() {
        let c = layer_cost_in(model, LayerId(i));
        total.flops += c.flops;
        total.param_bytes += c.param_bytes;
        total.activation_bytes += c.activation_bytes;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::task::TaskKind;
    use sommelier_tensor::{Prng, Shape};

    #[test]
    fn dense_flops_count_macs_and_bias() {
        let mut r = Prng::seed_from_u64(1);
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(8))
            .dense(4, &mut r)
            .build()
            .unwrap();
        let c = layer_cost_in(&m, LayerId(1));
        assert_eq!(c.flops, 2 * 8 * 4 + 4);
        assert_eq!(c.param_bytes, ((8 * 4 + 4) * 4) as u64);
        assert_eq!(c.activation_bytes, 16);
    }

    #[test]
    fn conv_flops_scale_with_output() {
        let mut r = Prng::seed_from_u64(1);
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(10))
            .conv1d(3, 4, 2, &mut r)
            .build()
            .unwrap();
        // windows = 4, out = 12, per-output 2*4 flops
        let c = layer_cost_in(&m, LayerId(1));
        assert_eq!(c.flops, 2 * 4 * 12);
    }

    #[test]
    fn model_cost_sums_layers() {
        let mut r = Prng::seed_from_u64(1);
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(8))
            .dense(8, &mut r)
            .relu()
            .dense(4, &mut r)
            .build()
            .unwrap();
        let total = model_cost(&m);
        let by_hand: u64 = (0..m.num_layers())
            .map(|i| layer_cost_in(&m, LayerId(i)).flops)
            .sum();
        assert_eq!(total.flops, by_hand);
        assert_eq!(total.param_bytes as usize, m.param_count() * 4);
    }

    #[test]
    fn bigger_models_cost_more() {
        let mut r = Prng::seed_from_u64(1);
        let small = ModelBuilder::new("s", TaskKind::Other, Shape::vector(16))
            .dense(16, &mut r)
            .build()
            .unwrap();
        let large = ModelBuilder::new("l", TaskKind::Other, Shape::vector(16))
            .dense(256, &mut r)
            .dense(256, &mut r)
            .build()
            .unwrap();
        assert!(model_cost(&large).flops > model_cost(&small).flops);
        assert!(model_cost(&large).memory_bytes() > model_cost(&small).memory_bytes());
    }

    #[test]
    fn unit_conversions() {
        let c = ModelCost {
            flops: 3_000_000_000,
            param_bytes: 2_000_000,
            activation_bytes: 1_000_000,
        };
        assert!((c.gflops() - 3.0).abs() < 1e-12);
        assert!((c.memory_mb() - 3.0).abs() < 1e-12);
    }
}
