//! Inference task categories.
//!
//! The paper's evaluation spans six task categories — three computer-vision
//! and three NLP (Section 7, "DNN model benchmarks"). A task category is
//! used to (a) pick a default reference model when a query does not name
//! one (Section 5.1), and (b) decide how model outputs define semantics:
//! *classification* reads the arg-max dimension; *regression* reads the
//! whole output vector (Section 4.1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An inference task category.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TaskKind {
    /// Image classification (e.g. ImageNet-style object recognition).
    ImageRecognition,
    /// Object detection (regression-style box outputs).
    ObjectDetection,
    /// Semantic segmentation.
    SemanticSegmentation,
    /// Sentiment analysis over text.
    SentimentAnalysis,
    /// Extractive question answering.
    QuestionAnswering,
    /// Named entity recognition.
    NamedEntityRecognition,
    /// Anything else; compared structurally only.
    Other,
}

/// How a task's output defines semantics (paper Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutputStyle {
    /// Semantics carried by the highest-valued output dimension.
    Classification,
    /// Semantics carried by the whole output vector.
    Regression,
}

impl TaskKind {
    /// All concrete task categories (excluding `Other`).
    pub const ALL: [TaskKind; 6] = [
        TaskKind::ImageRecognition,
        TaskKind::ObjectDetection,
        TaskKind::SemanticSegmentation,
        TaskKind::SentimentAnalysis,
        TaskKind::QuestionAnswering,
        TaskKind::NamedEntityRecognition,
    ];

    /// Whether this is one of the paper's computer-vision tasks.
    pub fn is_vision(&self) -> bool {
        matches!(
            self,
            TaskKind::ImageRecognition
                | TaskKind::ObjectDetection
                | TaskKind::SemanticSegmentation
        )
    }

    /// How outputs carry semantics for this task.
    pub fn output_style(&self) -> OutputStyle {
        match self {
            TaskKind::ImageRecognition
            | TaskKind::SentimentAnalysis
            | TaskKind::NamedEntityRecognition => OutputStyle::Classification,
            TaskKind::ObjectDetection
            | TaskKind::SemanticSegmentation
            | TaskKind::QuestionAnswering
            | TaskKind::Other => OutputStyle::Regression,
        }
    }

    /// Stable lowercase name, used in query syntax and repository keys.
    pub fn slug(&self) -> &'static str {
        match self {
            TaskKind::ImageRecognition => "image-recognition",
            TaskKind::ObjectDetection => "object-detection",
            TaskKind::SemanticSegmentation => "semantic-segmentation",
            TaskKind::SentimentAnalysis => "sentiment-analysis",
            TaskKind::QuestionAnswering => "question-answering",
            TaskKind::NamedEntityRecognition => "named-entity-recognition",
            TaskKind::Other => "other",
        }
    }

    /// Parse a slug back into a task kind.
    pub fn from_slug(s: &str) -> Option<TaskKind> {
        TaskKind::ALL
            .iter()
            .copied()
            .chain(std::iter::once(TaskKind::Other))
            .find(|t| t.slug() == s)
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vision_split() {
        assert!(TaskKind::ImageRecognition.is_vision());
        assert!(!TaskKind::SentimentAnalysis.is_vision());
    }

    #[test]
    fn output_styles() {
        assert_eq!(
            TaskKind::ImageRecognition.output_style(),
            OutputStyle::Classification
        );
        assert_eq!(
            TaskKind::ObjectDetection.output_style(),
            OutputStyle::Regression
        );
    }

    #[test]
    fn slug_round_trip() {
        for t in TaskKind::ALL.iter().chain([&TaskKind::Other]) {
            assert_eq!(TaskKind::from_slug(t.slug()), Some(*t));
        }
        assert_eq!(TaskKind::from_slug("nope"), None);
    }
}
