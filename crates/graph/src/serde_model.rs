//! Model interchange format.
//!
//! The paper imports/exports DNNs through ONNX so the query engine stays
//! framework-agnostic (Section 6). This reproduction's equivalent is a
//! self-describing JSON envelope with a format-version field; everything a
//! model contains (graph, parameters, task, metadata) round-trips through
//! it. Repositories (`sommelier-repo`) store models in this format.

use crate::model::Model;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// The serialization envelope.
#[derive(Serialize, Deserialize)]
struct Envelope {
    format_version: u32,
    model: Model,
}

/// Errors while encoding/decoding models.
#[derive(Debug)]
pub enum CodecError {
    /// I/O failure reading or writing the file.
    Io(io::Error),
    /// Malformed JSON or schema mismatch.
    Format(String),
    /// The file declares an unsupported format version.
    UnsupportedVersion { found: u32 },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "model file I/O error: {e}"),
            CodecError::Format(e) => write!(f, "malformed model file: {e}"),
            CodecError::UnsupportedVersion { found } => {
                write!(f, "unsupported model format version {found} (supported: {FORMAT_VERSION})")
            }
        }
    }
}

impl std::error::Error for CodecError {}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Serialize a model to its JSON interchange form.
pub fn to_json(model: &Model) -> String {
    let envelope = Envelope {
        format_version: FORMAT_VERSION,
        model: model.clone(),
    };
    serde_json::to_string(&envelope).expect("model serialization is infallible")
}

/// Deserialize a model from its JSON interchange form.
pub fn from_json(json: &str) -> Result<Model, CodecError> {
    let envelope: Envelope =
        serde_json::from_str(json).map_err(|e| CodecError::Format(e.to_string()))?;
    if envelope.format_version != FORMAT_VERSION {
        return Err(CodecError::UnsupportedVersion {
            found: envelope.format_version,
        });
    }
    Ok(envelope.model)
}

/// Write a model to a file.
pub fn save(model: &Model, path: &Path) -> Result<(), CodecError> {
    fs::write(path, to_json(model))?;
    Ok(())
}

/// Read a model from a file.
pub fn load(path: &Path) -> Result<Model, CodecError> {
    let json = fs::read_to_string(path)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::fingerprint::Fingerprint;
    use crate::task::TaskKind;
    use sommelier_tensor::{Prng, Shape};

    fn model() -> Model {
        let mut rng = Prng::seed_from_u64(5);
        let mut m = ModelBuilder::new("serde-test", TaskKind::ImageRecognition, Shape::vector(6))
            .dense(4, &mut rng)
            .relu()
            .dense(3, &mut rng)
            .softmax()
            .build()
            .unwrap();
        m.metadata.insert("series".into(), "unit-test".into());
        m.output_syntax = Some(vec!["cat".into(), "dog".into(), "bird".into()]);
        m
    }

    #[test]
    fn json_round_trip_preserves_model() {
        let m = model();
        let restored = from_json(&to_json(&m)).unwrap();
        assert_eq!(m, restored);
        assert_eq!(Fingerprint::of_model(&m), Fingerprint::of_model(&restored));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sommelier-serde-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        let m = model();
        save(&m, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(m, restored);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(matches!(from_json("not json"), Err(CodecError::Format(_))));
        assert!(matches!(
            from_json("{\"wrong\": true}"),
            Err(CodecError::Format(_))
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut json = to_json(&model());
        json = json.replace("\"format_version\":1", "\"format_version\":999");
        assert!(matches!(
            from_json(&json),
            Err(CodecError::UnsupportedVersion { found: 999 })
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/sommelier/m.json")).unwrap_err();
        assert!(matches!(err, CodecError::Io(_)));
    }
}
