//! Stable model fingerprints.
//!
//! The semantic index (paper Section 5.2) is a hashtable whose keys are
//! "hash fingerprints" of DNN models. We provide two flavours:
//!
//! * [`Fingerprint::of_model`] — hashes structure *and* parameters, so two
//!   models differing only in weights (e.g. fine-tuned variants) get
//!   distinct keys;
//! * [`Fingerprint::structural`] — hashes operator types and edges only,
//!   used to detect structurally identical models/segments (Section 4.2
//!   requires segment counterparts to be structurally identical).
//!
//! The hash is FNV-1a over a canonical byte serialization; it is stable
//! across processes and platforms (no `DefaultHasher` seeds involved).

use crate::model::Model;
use serde::{Deserialize, Serialize};
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit stable content hash.
///
/// ```
/// use sommelier_graph::{Fingerprint, ModelBuilder, TaskKind};
/// use sommelier_tensor::{Prng, Shape};
///
/// let mut rng = Prng::seed_from_u64(1);
/// let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(4))
///     .dense(2, &mut rng)
///     .build()
///     .unwrap();
/// // Renaming never changes the fingerprint; it keys the semantic index.
/// assert_eq!(Fingerprint::of_model(&m), Fingerprint::of_model(&m.renamed("x")));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fingerprint(pub u64);

/// Incremental FNV-1a hasher over byte chunks.
#[derive(Clone, Debug)]
pub struct FnvHasher {
    state: u64,
}

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher { state: FNV_OFFSET }
    }
}

impl FnvHasher {
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a usize as little-endian u64.
    pub fn update_usize(&mut self, v: usize) {
        self.update(&(v as u64).to_le_bytes());
    }

    /// Absorb an f32's bit pattern.
    pub fn update_f32(&mut self, v: f32) {
        self.update(&v.to_bits().to_le_bytes());
    }

    /// Finish.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Fingerprint {
    /// Full fingerprint: structure plus every parameter value.
    pub fn of_model(model: &Model) -> Fingerprint {
        let mut h = Self::hash_structure(model);
        for layer in model.layers() {
            if let Some(w) = &layer.params.weight {
                for &v in w.as_slice() {
                    h.update_f32(v);
                }
            }
            if let Some(b) = &layer.params.bias {
                for &v in b.as_slice() {
                    h.update_f32(v);
                }
            }
        }
        h.finish()
    }

    /// Structure-only fingerprint: operator type tags and edges, ignoring
    /// parameter values, the model name, and metadata.
    pub fn structural(model: &Model) -> Fingerprint {
        Self::hash_structure(model).finish()
    }

    fn hash_structure(model: &Model) -> FnvHasher {
        let mut h = FnvHasher::new();
        h.update_usize(model.num_layers());
        for layer in model.layers() {
            let tag = layer.op.type_tag();
            h.update_usize(tag.len());
            h.update(tag.as_bytes());
            h.update_usize(layer.inputs.len());
            for input in &layer.inputs {
                h.update_usize(input.index());
            }
        }
        h
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::task::TaskKind;
    use sommelier_tensor::{Prng, Shape};

    fn model(seed: u64) -> Model {
        let mut rng = Prng::seed_from_u64(seed);
        ModelBuilder::new("m", TaskKind::Other, Shape::vector(8))
            .dense(4, &mut rng)
            .relu()
            .dense(2, &mut rng)
            .build()
            .unwrap()
    }

    #[test]
    fn identical_models_share_fingerprints() {
        let a = model(1);
        let b = model(1);
        assert_eq!(Fingerprint::of_model(&a), Fingerprint::of_model(&b));
        assert_eq!(Fingerprint::structural(&a), Fingerprint::structural(&b));
    }

    #[test]
    fn weights_change_full_but_not_structural() {
        let a = model(1);
        let b = model(2); // different weight init, same structure
        assert_ne!(Fingerprint::of_model(&a), Fingerprint::of_model(&b));
        assert_eq!(Fingerprint::structural(&a), Fingerprint::structural(&b));
    }

    #[test]
    fn structure_change_changes_both() {
        let a = model(1);
        let mut rng = Prng::seed_from_u64(1);
        let c = ModelBuilder::new("m", TaskKind::Other, Shape::vector(8))
            .dense(4, &mut rng)
            .tanh() // relu → tanh
            .dense(2, &mut rng)
            .build()
            .unwrap();
        assert_ne!(Fingerprint::structural(&a), Fingerprint::structural(&c));
        assert_ne!(Fingerprint::of_model(&a), Fingerprint::of_model(&c));
    }

    #[test]
    fn name_does_not_affect_fingerprint() {
        let a = model(1);
        let renamed = a.renamed("other-name");
        assert_eq!(Fingerprint::of_model(&a), Fingerprint::of_model(&renamed));
    }

    #[test]
    fn hex_display_is_sixteen_chars() {
        let fp = Fingerprint(0xdead_beef);
        assert_eq!(fp.to_string(), "00000000deadbeef");
    }

    #[test]
    fn fnv_empty_input_is_offset_basis() {
        assert_eq!(FnvHasher::new().finish(), Fingerprint(super::FNV_OFFSET));
    }
}
