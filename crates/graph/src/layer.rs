//! Layers: operators plus attributes and parameters.
//!
//! Following paper Figure 2, a layer couples an operator with its
//! *attributes* (which layers feed it; widths are inferred by the model)
//! and *parameters* (weight/bias tensors for linear operators).

use crate::op::Op;
use serde::{Deserialize, Serialize};
use sommelier_tensor::Tensor;

/// Index of a layer within its model. Layers are stored in topological
/// order, so a layer's inputs always have smaller ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerId(pub usize);

impl LayerId {
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Trainable parameters of a layer.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Params {
    /// Main weight tensor: `[in, units]` for `Dense`,
    /// `[out_channels, kernel_size]` for `Conv1d`.
    pub weight: Option<Tensor>,
    /// Bias row vector `[1, units]` (Dense only; optional).
    pub bias: Option<Tensor>,
}

impl Params {
    /// Empty parameter set (for non-linear operators).
    pub fn none() -> Self {
        Params::default()
    }

    /// Weight-only parameters.
    pub fn with_weight(weight: Tensor) -> Self {
        Params {
            weight: Some(weight),
            bias: None,
        }
    }

    /// Weight and bias.
    pub fn with_weight_bias(weight: Tensor, bias: Tensor) -> Self {
        Params {
            weight: Some(weight),
            bias: Some(bias),
        }
    }

    /// Total number of scalar parameters.
    pub fn count(&self) -> usize {
        self.weight.as_ref().map_or(0, Tensor::len) + self.bias.as_ref().map_or(0, Tensor::len)
    }
}

/// A single node in the model DAG.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name (unique within a model is conventional but not
    /// required; ids are the identity).
    pub name: String,
    /// The operator this layer applies.
    pub op: Op,
    /// Ids of the layers feeding this one, in positional order.
    pub inputs: Vec<LayerId>,
    /// Trainable parameters (empty for non-linear operators).
    pub params: Params,
}

impl Layer {
    /// Construct a layer.
    pub fn new(name: impl Into<String>, op: Op, inputs: Vec<LayerId>, params: Params) -> Self {
        Layer {
            name: name.into(),
            op,
            inputs,
            params,
        }
    }

    /// Number of scalar parameters in this layer.
    pub fn param_count(&self) -> usize {
        self.params.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_count_sums_weight_and_bias() {
        let p = Params::with_weight_bias(Tensor::zeros(3, 4), Tensor::zeros(1, 4));
        assert_eq!(p.count(), 16);
        assert_eq!(Params::none().count(), 0);
    }

    #[test]
    fn layer_param_count_delegates() {
        let l = Layer::new(
            "d",
            Op::Dense { units: 4 },
            vec![LayerId(0)],
            Params::with_weight(Tensor::zeros(2, 4)),
        );
        assert_eq!(l.param_count(), 8);
    }

    #[test]
    fn layer_ids_order() {
        assert!(LayerId(1) < LayerId(2));
        assert_eq!(LayerId(3).index(), 3);
    }
}
