//! Maximal linear chain extraction.
//!
//! Segment equivalence (paper Section 4.2, Figure 4) operates on
//! *operational sequences*: runs of layers connected head-to-tail with no
//! branching. Optimal common-subgraph detection is NP-hard, but DNNs
//! connect layers mostly sequentially with a few local parallel branches,
//! so the paper extracts the longest operator sequences from each DAG and
//! intersects them in `O(N²)` via longest-common-subsequence matching
//! (that matching lives in `sommelier-equiv`; this module supplies the
//! chains).
//!
//! A *chain* here is a maximal path `l₁ → l₂ → … → lₖ` such that every
//! interior edge is the sole connection on both sides: each `lᵢ` (i > 1)
//! has exactly one input, and each `lᵢ` (i < k) has exactly one consumer.
//! Branch points terminate chains, which reproduces the recursive
//! decomposition of Figure 4 (`S1` on the trunk, `S2`/`S3` inside the
//! parallel operator).

use crate::layer::LayerId;
use crate::model::Model;
use crate::op::OpKind;
use serde::{Deserialize, Serialize};

/// A maximal sequential run of layers within one model.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chain {
    /// Layer ids in execution order.
    pub layers: Vec<LayerId>,
}

impl Chain {
    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The operator type tags along the chain — the signature used for
    /// structural matching between models.
    pub fn signature(&self, model: &Model) -> Vec<String> {
        self.layers
            .iter()
            .map(|id| model.layer(*id).op.type_tag())
            .collect()
    }
}

/// Extract every maximal chain of length ≥ `min_len` from the model.
///
/// The `Input` source never participates in a chain (replacing it is
/// meaningless), and chains are reported in ascending order of their first
/// layer id, making the output deterministic.
pub fn extract_chains(model: &Model, min_len: usize) -> Vec<Chain> {
    let consumers = model.consumers();
    let n = model.num_layers();
    // A layer can sit mid-chain only with exactly one input and one
    // consumer; it can start a chain regardless of its input fan-in.
    let single_input = |i: usize| model.layer(LayerId(i)).inputs.len() == 1;
    let single_consumer = |i: usize| consumers[i].len() == 1;
    let eligible = |i: usize| model.layer(LayerId(i)).op.kind() != OpKind::Source;

    let mut chains = Vec::new();
    let mut claimed = vec![false; n];
    for start in 0..n {
        if claimed[start] || !eligible(start) {
            continue;
        }
        // `start` begins a chain if its predecessor cannot extend into it:
        // predecessor is a source, is branching (multiple consumers), or
        // `start` has multiple inputs.
        let pred_extends = single_input(start) && {
            let p = model.layer(LayerId(start)).inputs[0].index();
            eligible(p) && single_consumer(p) && !claimed[p]
        };
        if pred_extends {
            continue; // it will be claimed when we walk from the true start
        }
        let mut chain = vec![LayerId(start)];
        claimed[start] = true;
        let mut cur = start;
        loop {
            if !single_consumer(cur) {
                break;
            }
            let next = consumers[cur][0].index();
            if !eligible(next) || !single_input(next) || claimed[next] {
                break;
            }
            chain.push(LayerId(next));
            claimed[next] = true;
            cur = next;
        }
        if chain.len() >= min_len {
            chains.push(Chain { layers: chain });
        }
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::task::TaskKind;
    use sommelier_tensor::{Prng, Shape};

    fn rng() -> Prng {
        Prng::seed_from_u64(11)
    }

    #[test]
    fn sequential_model_is_one_chain() {
        let mut r = rng();
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(8))
            .dense(4, &mut r)
            .relu()
            .dense(2, &mut r)
            .softmax()
            .build()
            .unwrap();
        let chains = extract_chains(&m, 1);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].len(), 4); // input excluded
        assert_eq!(
            chains[0].signature(&m),
            vec!["dense:4", "relu", "dense:2", "softmax"]
        );
    }

    #[test]
    fn residual_block_splits_chains() {
        let mut r = rng();
        let m = ModelBuilder::new("res", TaskKind::Other, Shape::vector(8))
            .residual_block(&mut r)
            .build()
            .unwrap();
        // Graph: input → [dense relu dense] → add(input, ·) → relu
        // input has two consumers (dense and add) → branch point.
        let chains = extract_chains(&m, 1);
        // chain A: dense, relu, dense; chain B: add, relu
        assert_eq!(chains.len(), 2);
        let sigs: Vec<Vec<String>> = chains.iter().map(|c| c.signature(&m)).collect();
        assert!(sigs.contains(&vec![
            "dense:8".to_string(),
            "relu".to_string(),
            "dense:8".to_string()
        ]));
        assert!(sigs.iter().any(|s| s[0] == "add"));
    }

    #[test]
    fn min_len_filters_short_chains() {
        let mut r = rng();
        let m = ModelBuilder::new("res", TaskKind::Other, Shape::vector(8))
            .residual_block(&mut r)
            .build()
            .unwrap();
        let chains = extract_chains(&m, 3);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].len(), 3);
    }

    #[test]
    fn parallel_branches_yield_separate_chains() {
        let mut r = rng();
        let mut b = ModelBuilder::new("inc", TaskKind::Other, Shape::vector(8));
        let stem = b.cursor();
        b.dense(4, &mut r).relu();
        let a = b.cursor();
        b.goto(stem).dense(4, &mut r).tanh();
        let c = b.cursor();
        let m = b.add_from(&[a, c]).build().unwrap();
        let chains = extract_chains(&m, 1);
        assert_eq!(chains.len(), 3); // two branches + the add tail
        let lens: Vec<usize> = chains.iter().map(Chain::len).collect();
        assert_eq!(lens.iter().filter(|&&l| l == 2).count(), 2);
    }

    #[test]
    fn chains_never_include_the_input_source() {
        let mut r = rng();
        let m = ModelBuilder::new("m", TaskKind::Other, Shape::vector(4))
            .dense(4, &mut r)
            .build()
            .unwrap();
        for chain in extract_chains(&m, 1) {
            assert!(chain.layers.iter().all(|id| id.index() != 0));
        }
    }

    #[test]
    fn chains_partition_eligible_layers() {
        // Every non-source layer appears in exactly one chain (min_len 1).
        let mut r = rng();
        let m = ModelBuilder::new("res", TaskKind::Other, Shape::vector(8))
            .residual_block(&mut r)
            .residual_block(&mut r)
            .dense(3, &mut r)
            .build()
            .unwrap();
        let chains = extract_chains(&m, 1);
        let mut seen = std::collections::BTreeSet::new();
        for chain in &chains {
            for id in &chain.layers {
                assert!(seen.insert(id.index()), "layer {id:?} in two chains");
            }
        }
        assert_eq!(seen.len(), m.num_layers() - 1);
    }
}
