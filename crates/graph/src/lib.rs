//! DNN graph intermediate representation.
//!
//! A DNN model in Sommelier is a directed acyclic graph of layers
//! (paper Figure 2): each node is an atomic operator with *attributes*
//! (tensor shapes and dependencies) and *parameters* (weights/biases). This
//! crate defines that IR along with everything the layers above need to
//! reason about a model without executing it:
//!
//! * the operator taxonomy ([`op`]) used by the error-propagation analysis
//!   — linear / activation / pooling / normalization / multi-source
//!   (paper Section 4.2);
//! * the model DAG itself ([`model`]) with structural validation and width
//!   inference;
//! * fluent construction ([`builder`]);
//! * stable content fingerprints ([`fingerprint`]) that key the semantic
//!   index (Section 5.2);
//! * hardware-independent cost accounting ([`cost`]): FLOPs, parameter
//!   counts, and memory — the paper's "computational complexity profiles"
//!   (Section 5.3);
//! * maximal linear chain extraction ([`chains`]) feeding the model-segment
//!   analysis (Section 4.2, Figure 4);
//! * an on-disk interchange format ([`serde_model`]), standing in for ONNX.

pub mod builder;
pub mod chains;
pub mod cost;
pub mod dot;
pub mod fingerprint;
pub mod layer;
pub mod model;
pub mod op;
pub mod serde_model;
pub mod task;

pub use builder::ModelBuilder;
pub use fingerprint::Fingerprint;
pub use layer::{Layer, LayerId, Params};
pub use model::{Model, ModelError};
pub use op::{Op, OpKind};
pub use task::TaskKind;
