//! Figure 9(c): run-time inference latency under four serving setups.
//!
//! A bursty request stream hits an inference server. Compared systems:
//!
//! 1. **baseline** — one server, fixed (largest) model;
//! 2. **scale-out** — an idealized standby twin server sharing the queue
//!    (the classic system optimization);
//! 3. **Sommelier** — one server with automated model switching among the
//!    functionally equivalent variants a Sommelier query returned;
//! 4. **combined** — scale-out *and* switching.
//!
//! Paper's claims: switching cuts p90 tail latency ~6× without extra
//! resources — far more than scale-out (~33%) — and composes with it
//! (another ~15%); the accuracy cost is negligible (90th-percentile
//! relative accuracy change within ~2.4%).
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin fig9c_tail_latency
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, write_json};
use sommelier_graph::TaskKind;
use sommelier_query::Sommelier;
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_runtime::execute;
use sommelier_runtime::metrics::top1_accuracy;
use sommelier_serving::stats::cdf_points;
use sommelier_serving::{simulate, ClusterConfig, ModelChoice, Policy, Workload};
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::series::build_series;
use sommelier_zoo::families::Family;
use sommelier_zoo::teacher::Teacher;
use std::sync::Arc;

#[derive(Serialize)]
struct SystemResult {
    system: String,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    mean_accuracy: f64,
    cdf: Vec<(f64, f64)>,
}

fn main() {
    // Functionally equivalent variants, found by a Sommelier query over a
    // registered series (as the serving integration would do online).
    let repo = Arc::new(InMemoryRepository::new());
    let mut engine = Sommelier::connect_default(Arc::clone(&repo) as Arc<dyn ModelRepository>);
    let mut rng = Prng::seed_from_u64(11);
    let series = build_series(
        "servenet",
        Family::Resnetish,
        TaskKind::ImageRecognition,
        "imagenet",
        6,
        2024,
        0.08,
        &mut rng,
    );
    for m in &series.models {
        engine.register(m).expect("fresh");
    }
    let reference = &series.models.last().expect("non-empty").name;
    let equivalents = engine
        .query(&format!(
            "SELECT models 10 CORR {reference} WITHIN 0.3 ORDER BY latency"
        ))
        .expect("query runs");

    // Variant table: service time ∝ computational complexity, anchored at
    // 80 ms for the largest (production scale); accuracy measured on a
    // validation set.
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 2024);
    let mut prng = Prng::seed_from_u64(5);
    let probe = Tensor::gaussian(600, teacher.spec.input_width, 1.0, &mut prng);
    let labels = teacher.labels(&probe);
    let mut keys: Vec<String> = equivalents
        .iter()
        .filter(|r| !matches!(r.kind, sommelier_index::CandidateKind::Synthesized { .. }))
        .map(|r| r.key.clone())
        .collect();
    keys.push(reference.clone());
    let gflops_of = |k: &str| engine.resource_index().profile_of(k).expect("profiled").gflops;
    let max_gflops = keys.iter().map(|k| gflops_of(k)).fold(0.0f64, f64::max);
    let mut variants: Vec<ModelChoice> = keys
        .iter()
        .map(|k| {
            let model = repo.load(k).expect("stored");
            let out = execute(&model, &probe).expect("runs");
            ModelChoice {
                name: k.clone(),
                service_time_s: 0.002 + 0.078 * gflops_of(k) / max_gflops,
                accuracy: top1_accuracy(&out, &labels),
            }
        })
        .collect();
    variants.sort_by(|a, b| a.service_time_s.partial_cmp(&b.service_time_s).expect("finite"));
    let biggest = variants.len() - 1;
    println!("serving variants (from one Sommelier query):");
    for v in &variants {
        println!(
            "  {:<22} service {:>5.1} ms  accuracy {:.3}",
            v.name,
            v.service_time_s * 1e3,
            v.accuracy
        );
    }

    // Bursty load: the middle third pushes the single big-model server
    // to ~92% utilization — heavy queueing without runaway saturation,
    // the regime the paper's comparison operates in.
    let capacity = 1.0 / variants[biggest].service_time_s;
    let workload = Workload::bursty(240.0, 0.35 * capacity, 0.92 * capacity);
    let mut arng = Prng::seed_from_u64(3);
    let arrivals = workload.arrivals(&mut arng);
    println!("\n{} requests over {:.0} s", arrivals.len(), workload.duration_s());

    let sla = 1.2 * variants[biggest].service_time_s;
    let setups: [(&str, ClusterConfig); 4] = [
        (
            "baseline (fixed model)",
            ClusterConfig {
                servers: 1,
                policy: Policy::Fixed { index: biggest },
            },
        ),
        (
            "scale-out (2 servers)",
            ClusterConfig {
                servers: 2,
                policy: Policy::Fixed { index: biggest },
            },
        ),
        (
            "sommelier switching",
            ClusterConfig {
                servers: 1,
                policy: Policy::Switching { sla_s: sla },
            },
        ),
        (
            "combined",
            ClusterConfig {
                servers: 2,
                policy: Policy::Switching { sla_s: sla },
            },
        ),
    ];

    let mut results = Vec::new();
    for (name, cfg) in &setups {
        let sim = simulate(cfg, &arrivals, &variants);
        let stats = sim.stats();
        results.push(SystemResult {
            system: name.to_string(),
            p50_ms: stats.p50 * 1e3,
            p90_ms: stats.p90 * 1e3,
            p99_ms: stats.p99 * 1e3,
            mean_accuracy: sim.mean_accuracy,
            cdf: cdf_points(&sim.latencies, 100)
                .into_iter()
                .map(|(l, f)| (l * 1e3, f))
                .collect(),
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                format!("{:.0}", r.p50_ms),
                format!("{:.0}", r.p90_ms),
                format!("{:.0}", r.p99_ms),
                format!("{:.3}", r.mean_accuracy),
            ]
        })
        .collect();
    print_table(
        "Figure 9(c): inference latency by serving setup",
        &["System", "p50 (ms)", "p90 (ms)", "p99 (ms)", "accuracy"],
        &rows,
    );

    let base = &results[0];
    let scale = &results[1];
    let somm = &results[2];
    let combined = &results[3];
    println!(
        "\np90 reduction — scale-out: {:.0}% | sommelier: {:.1}x | combined over sommelier: {:.0}% further",
        100.0 * (1.0 - scale.p90_ms / base.p90_ms),
        base.p90_ms / somm.p90_ms,
        100.0 * (1.0 - combined.p90_ms / somm.p90_ms),
    );
    println!(
        "accuracy cost of switching: {:.1}% (paper: 90th-pct relative change within 2.4%)",
        100.0 * (base.mean_accuracy - somm.mean_accuracy)
    );
    println!("(paper: switching ~6x, scale-out ~33%, combined ~15% further)");
    write_json("fig9c_tail_latency", &results);
}
