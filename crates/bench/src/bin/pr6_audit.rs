//! PR 6 performance gate: the deep audit's fingerprint memo.
//!
//! Workload (the "re-audit" curation sweep): seed a zoo fleet, run the
//! deep audit cold (empty memo — every model pays the full
//! abstract-interpretation + round-trip analysis), then run it again
//! warm on the same `Auditor` (every unchanged model answers from the
//! fingerprint memo). Both sweeps run at `--jobs 1` and `--jobs 4`.
//!
//! Gates asserted by CI via `scripts/bench.sh`:
//!
//! * `warm_speedup` (the smaller of the per-jobs warm/cold throughput
//!   ratios) must be ≥ 2× — the memo has to actually buy re-audits;
//! * the cold and warm reports must be identical at every job count
//!   (asserted here, before anything is reported).
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin pr6_audit
//! # SOMMELIER_PR6_MODE=full for a larger fleet
//! ```

use serde::Serialize;
use sommelier_bench::{fmt, print_table, timed, write_json};
use sommelier_graph::{Model, TaskKind};
use sommelier_lint::{Auditor, LintContext};
use sommelier_tensor::Prng;
use sommelier_zoo::families::Family;
use sommelier_zoo::series::build_series;

#[derive(Serialize)]
struct RunReport {
    jobs: usize,
    models: usize,
    cold_seconds: f64,
    cold_models_per_sec: f64,
    warm_seconds: f64,
    warm_models_per_sec: f64,
    warm_over_cold: f64,
    findings: usize,
}

#[derive(Serialize)]
struct Bench {
    experiment: &'static str,
    mode: String,
    runs: Vec<RunReport>,
    /// The smaller of the per-jobs warm/cold throughput ratios — the
    /// number `scripts/bench.sh` gates on.
    warm_speedup: f64,
    reports_identical: bool,
}

fn fleet(n_series: usize) -> Vec<Model> {
    let families = [
        Family::Bitish,
        Family::Efficientnetish,
        Family::Resnetish,
        Family::Mobilenetish,
        Family::Vggish,
        Family::Inceptionish,
    ];
    let mut rng = Prng::seed_from_u64(2026);
    let mut models = Vec::new();
    for i in 0..n_series {
        let family = families[i % families.len()];
        let series = build_series(
            &format!("{}-v{}", family.slug(), i / families.len() + 1),
            family,
            TaskKind::ImageRecognition,
            "imagenet",
            5,
            2026,
            0.12,
            &mut rng,
        );
        models.extend(series.models);
    }
    models
}

fn run(models: &[Model], jobs: usize) -> (RunReport, String) {
    let mut ctx = LintContext::new();
    for m in models {
        ctx.models.push((m.name.clone(), m.clone()));
    }
    let auditor = Auditor::new(jobs);
    let (cold, cold_seconds) = timed(|| auditor.audit(&ctx));
    assert_eq!(cold.models_analyzed, models.len(), "cold run must analyze all");
    let (warm, warm_seconds) = timed(|| auditor.audit(&ctx));
    assert_eq!(warm.memo_hits, models.len(), "warm run must hit the memo");
    assert_eq!(cold.report, warm.report, "memoized report drifted");
    let n = models.len() as f64;
    let report = RunReport {
        jobs,
        models: models.len(),
        cold_seconds,
        cold_models_per_sec: n / cold_seconds,
        warm_seconds,
        warm_models_per_sec: n / warm_seconds,
        warm_over_cold: (n / warm_seconds) / (n / cold_seconds),
        findings: cold.report.diagnostics.len(),
    };
    (report, cold.report.to_json())
}

fn main() {
    let mode = std::env::var("SOMMELIER_PR6_MODE").unwrap_or_else(|_| "quick".into());
    let n_series = if mode == "full" { 12 } else { 6 };
    let models = fleet(n_series);

    let (run1, json1) = run(&models, 1);
    let (run4, json4) = run(&models, 4);
    let reports_identical = json1 == json4;
    assert!(reports_identical, "jobs=1 vs jobs=4 audit reports differ");
    let warm_speedup = run1.warm_over_cold.min(run4.warm_over_cold);

    let rows: Vec<Vec<String>> = [&run1, &run4]
        .iter()
        .map(|r| {
            vec![
                r.jobs.to_string(),
                r.models.to_string(),
                fmt(r.cold_models_per_sec, 1),
                fmt(r.warm_models_per_sec, 1),
                fmt(r.warm_over_cold, 1),
            ]
        })
        .collect();
    print_table(
        "PR6: deep-audit throughput, cold vs fingerprint-memo warm",
        &["jobs", "models", "cold models/s", "warm models/s", "warm/cold"],
        &rows,
    );
    println!("warm_speedup (gated >= 2.0): {}", fmt(warm_speedup, 2));

    let bench = Bench {
        experiment: "pr6_audit",
        mode,
        runs: vec![run1, run4],
        warm_speedup,
        reports_identical,
    };
    write_json("pr6_audit", &bench);
}
