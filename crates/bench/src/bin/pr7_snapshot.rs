//! PR 7 performance gate: the binary (`.somb`) snapshot format.
//!
//! Two halves, two acceptance bars:
//!
//! 1. **Cold-open latency.** A large synthetic snapshot (≥5k models,
//!    built through the `from_parts` constructors so the index shape is
//!    controlled exactly) is persisted in both formats and reopened
//!    from scratch repeatedly. The gate is binary cold-open ≥ 10×
//!    faster than JSON: the `.somb` path validates an O(1) CRC header
//!    and block-copies sections where the JSON path parses the world.
//!
//! 2. **Query latency by format.** A real fleet is indexed once and the
//!    snapshot saved in both formats; two engines restore from them and
//!    serve the same workload. Both runs report p50/p99; the gate is
//!    binary p50 no worse than JSON p50 (ratio ≥ 0.9) — the formats
//!    restore identical in-memory indices, so serving must not regress.
//!    Result sets are asserted byte-identical across formats first.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin pr7_snapshot
//! # SOMMELIER_PR7_MODE=full for a larger snapshot and longer workload
//! ```

use serde::Serialize;
use sommelier_bench::{fmt, print_table, timed, write_json};
use sommelier_graph::{Fingerprint, Model, TaskKind};
use sommelier_index::lsh::LshConfig;
use sommelier_index::semantic::{CandidateKind, CandidateRecord, SemanticIndexConfig};
use sommelier_index::{persist, ResourceIndex, SemanticIndex};
use sommelier_query::{Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_runtime::metrics::latency;
use sommelier_runtime::ResourceProfile;
use sommelier_tensor::Prng;
use sommelier_zoo::families::Family;
use sommelier_zoo::series::build_series;
use std::path::{Path, PathBuf};
use std::sync::Arc;

#[derive(Serialize)]
struct ColdOpen {
    models: usize,
    candidate_records: usize,
    json_bytes: u64,
    binary_bytes: u64,
    json_open_ms: f64,
    binary_open_ms: f64,
    /// `json_open_ms / binary_open_ms` — gated ≥ 10 by bench.sh.
    speedup: f64,
}

#[derive(Serialize)]
struct QueryRun {
    format: &'static str,
    queries: usize,
    queries_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct Bench {
    experiment: &'static str,
    mode: String,
    cold_open: ColdOpen,
    query_json: QueryRun,
    query_binary: QueryRun,
    /// `json p50 / binary p50` — gated ≥ 0.9 by bench.sh (the binary
    /// restore must not regress serving).
    query_p50_json_over_binary: f64,
    results_identical: bool,
}

/// A controlled-shape index pair: `models` keys, each with `cands`
/// candidate records (Whole and Transitive mixed), every key carrying a
/// resource profile. Deterministic arithmetic stands in for analysis so
/// the snapshot is large without costing minutes to build.
fn synthetic(models: usize, cands: usize) -> (SemanticIndex, ResourceIndex) {
    let keys: Vec<String> = (0..models)
        .map(|i| format!("hub/family-{:02}/model-{:05}", i % 37, i))
        .collect();
    let mut resource = ResourceIndex::new(LshConfig::default(), 7);
    for (i, key) in keys.iter().enumerate() {
        let x = i as f64;
        resource.insert(
            key,
            ResourceProfile {
                memory_mb: 32.0 + (x * 1.7) % 4096.0,
                gflops: 0.5 + (x * 0.13) % 40.0,
                latency_ms: 1.0 + (x * 0.41) % 90.0,
            },
        );
    }
    let entries: Vec<(Fingerprint, String, Vec<CandidateRecord>)> = keys
        .iter()
        .enumerate()
        .map(|(i, key)| {
            let fp = Fingerprint((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
            let candidates = (1..=cands)
                .map(|j| {
                    let other = keys[(i + j * 131) % keys.len()].clone();
                    let diff = ((i * 31 + j * 17) % 1000) as f64 / 1250.0;
                    let kind = if j % 3 == 0 {
                        CandidateKind::Transitive {
                            via: keys[(i + j) % keys.len()].clone(),
                        }
                    } else {
                        CandidateKind::Whole
                    };
                    CandidateRecord {
                        key: other,
                        diff_bound: diff,
                        score: (1.0 - diff).max(0.0),
                        kind,
                    }
                })
                .collect();
            (fp, key.clone(), candidates)
        })
        .collect();
    let semantic = SemanticIndex::from_parts(SemanticIndexConfig::default(), 7, entries, keys);
    (semantic, resource)
}

/// Best-of-`reps` wall time opening `path` from scratch, in ms.
fn open_ms(path: &Path, reps: usize) -> f64 {
    (0..reps)
        .map(|_| {
            let (snapshot, secs) = timed(|| persist::read_snapshot(path).expect("snapshot opens"));
            std::hint::black_box(snapshot);
            secs * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn cold_open_half(mode: &str) -> ColdOpen {
    let (models, cands, reps) = if mode == "full" { (10_000, 16, 9) } else { (5_000, 16, 7) };
    let (semantic, resource) = synthetic(models, cands);
    let records: usize = semantic
        .entries_audit()
        .iter()
        .map(|(_, _, r)| r.len())
        .sum();

    let tag = std::process::id();
    let json_path = std::env::temp_dir().join(format!("sommelier-pr7-{tag}.index.json"));
    let bin_path = std::env::temp_dir().join(format!("sommelier-pr7-{tag}.index.somb"));
    persist::save(&semantic, &resource, 1, &json_path).expect("json save");
    persist::save_binary(&semantic, &resource, 1, &bin_path).expect("binary save");

    // Both images must restore the same snapshot before timing means
    // anything.
    let a = persist::read_snapshot(&json_path).expect("json opens");
    let b = persist::read_snapshot(&bin_path).expect("binary opens");
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "formats restored different snapshots"
    );

    let json_open_ms = open_ms(&json_path, reps);
    let binary_open_ms = open_ms(&bin_path, reps);
    let report = ColdOpen {
        models,
        candidate_records: records,
        json_bytes: std::fs::metadata(&json_path).unwrap().len(),
        binary_bytes: std::fs::metadata(&bin_path).unwrap().len(),
        json_open_ms,
        binary_open_ms,
        speedup: json_open_ms / binary_open_ms,
    };
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&bin_path).ok();
    report
}

fn fleet(n_series: usize) -> Vec<Model> {
    let families = [
        Family::Bitish,
        Family::Efficientnetish,
        Family::Resnetish,
        Family::Mobilenetish,
        Family::Vggish,
        Family::Inceptionish,
    ];
    let mut rng = Prng::seed_from_u64(2027);
    let mut models = Vec::new();
    for i in 0..n_series {
        let family = families[i % families.len()];
        let series = build_series(
            &format!("{}-v{}", family.slug(), i / families.len() + 1),
            family,
            TaskKind::ImageRecognition,
            "imagenet",
            5,
            2027,
            0.12,
            &mut rng,
        );
        models.extend(series.models);
    }
    models
}

fn engine_config() -> SommelierConfig {
    let mut cfg = SommelierConfig {
        validation_rows: 64,
        // Single-threaded serving: per-query latency is the measurement,
        // and worker threads time-slicing on small machines would charge
        // scheduler waits to individual queries.
        jobs: 1,
        query_cache_cap: 0, // uncached: measure execution, not the cache
        ..SommelierConfig::default()
    };
    cfg.index.sample_size = 12;
    cfg.index.segments = false;
    cfg
}

/// Serve `workload` from the snapshot at `path`, reporting latency
/// quantiles and a canonical rendering of every result set.
fn query_run(
    repo: &Arc<InMemoryRepository>,
    path: &Path,
    format: &'static str,
    workload: &[String],
) -> (QueryRun, String) {
    let engine = Sommelier::connect_with_indices(
        Arc::clone(repo) as Arc<dyn ModelRepository>,
        engine_config(),
        path,
    )
    .expect("snapshot restores");
    let reader = engine.reader();
    // Warm-up round, then a measured pass.
    std::hint::black_box(reader.query_batch(workload));
    sommelier_runtime::metrics::reset();
    let (items, seconds) = timed(|| reader.query_batch(workload));
    assert!(items.iter().all(|i| i.results.is_ok()), "queries succeed");
    let q = latency::quantiles("query.batch.latency_ms").expect("batch recorded");
    let mut rendered = String::new();
    for item in &items {
        for r in item.results.as_ref().unwrap() {
            rendered.push_str(&format!("{}|{:?}|{:?};", r.key, r.score, r.diff_bound));
        }
        rendered.push('\n');
    }
    (
        QueryRun {
            format,
            queries: workload.len(),
            queries_per_sec: workload.len() as f64 / seconds,
            p50_ms: q.p50,
            p99_ms: q.p99,
        },
        rendered,
    )
}

fn query_half(mode: &str) -> (QueryRun, QueryRun, bool) {
    let (n_series, distinct, rounds) = if mode == "full" { (10, 24, 20) } else { (6, 16, 12) };
    let models = fleet(n_series);
    let repo = Arc::new(InMemoryRepository::new());
    for m in &models {
        repo.publish(&m.name, m, true).expect("publish");
    }
    let mut builder = Sommelier::connect(
        Arc::clone(&repo) as Arc<dyn ModelRepository>,
        engine_config(),
    );
    builder.index_existing().expect("index");
    let tag = std::process::id();
    let json_path: PathBuf = std::env::temp_dir().join(format!("sommelier-pr7q-{tag}.index.json"));
    let bin_path: PathBuf = std::env::temp_dir().join(format!("sommelier-pr7q-{tag}.index.somb"));
    builder.save_indices(&json_path).expect("json save");
    builder.save_indices(&bin_path).expect("binary save");
    drop(builder);

    // Every item names its own (reference, threshold) pair, so each
    // measured query runs a full evaluation instead of replaying a
    // handful of fast repeats whose p50 sits at timer-noise scale.
    let workload: Vec<String> = (0..distinct * rounds)
        .map(|i| {
            let reference = &models[(i * 7) % models.len()].name;
            let within = (i % 40) as f64 / 40.0;
            format!(
                "SELECT models 10 CORR {reference} ON memory <= 500% WITHIN {within:.3} ORDER BY similarity"
            )
        })
        .collect();

    let (json_run, json_rendered) = query_run(&repo, &json_path, "json", &workload);
    let (bin_run, bin_rendered) = query_run(&repo, &bin_path, "binary", &workload);
    let identical = json_rendered == bin_rendered;
    assert!(identical, "JSON and binary snapshots served different results");
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&bin_path).ok();
    (json_run, bin_run, identical)
}

fn main() {
    let mode = std::env::var("SOMMELIER_PR7_MODE").unwrap_or_else(|_| "quick".into());

    let cold_open = cold_open_half(&mode);
    print_table(
        "PR 7: snapshot cold-open, JSON vs binary",
        &["models", "records", "json MB", "somb MB", "json ms", "somb ms", "speedup"],
        &[vec![
            cold_open.models.to_string(),
            cold_open.candidate_records.to_string(),
            fmt(cold_open.json_bytes as f64 / 1e6, 1),
            fmt(cold_open.binary_bytes as f64 / 1e6, 1),
            fmt(cold_open.json_open_ms, 2),
            fmt(cold_open.binary_open_ms, 2),
            fmt(cold_open.speedup, 1),
        ]],
    );
    println!("cold-open speedup (gated >= 10): {}", fmt(cold_open.speedup, 1));

    let (query_json, query_binary, results_identical) = query_half(&mode);
    let row = |r: &QueryRun| {
        vec![
            r.format.to_string(),
            r.queries.to_string(),
            fmt(r.queries_per_sec, 0),
            fmt(r.p50_ms, 3),
            fmt(r.p99_ms, 3),
        ]
    };
    print_table(
        "PR 7: query latency by snapshot format",
        &["format", "queries", "q/s", "p50 ms", "p99 ms"],
        &[row(&query_json), row(&query_binary)],
    );
    let p50_ratio = query_json.p50_ms / query_binary.p50_ms;
    println!(
        "\nquery p50 json/binary (gated >= 0.9): {} (identical results: {results_identical})",
        fmt(p50_ratio, 2)
    );

    write_json(
        "pr7_snapshot",
        &Bench {
            experiment: "pr7_snapshot",
            mode,
            cold_open,
            query_json,
            query_binary,
            query_p50_json_over_binary: p50_ratio,
            results_identical,
        },
    );
}
