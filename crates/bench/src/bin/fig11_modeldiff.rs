//! Figure 11: DNN similarity score comparison — Sommelier vs ModelDiff.
//!
//! Three families (mobilenetish, resnetish, vggish) are fine-tuned to a
//! fixed level; the similarity between each original and its variant is
//! measured 20 times with *different validation dataset draws* by:
//!
//! * **ModelDiff** — cosine similarity of decision distance vectors
//!   (testing-based);
//! * **Sommelier (testing-only)** — `1 − empirical QoR difference`, the
//!   generalization bound disabled;
//! * **Sommelier (bound)** — the dataset-independent score
//!   `1 − (empirical + generalization term)`.
//!
//! Paper's claims: the testing-only score matches ModelDiff on average
//! (no statistically significant difference), but both swing across
//! dataset draws (~30% for ModelDiff); the bound is a stable *floor* that
//! holds under every draw.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin fig11_modeldiff
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, write_json};
use sommelier_equiv::modeldiff::modeldiff_similarity;
use sommelier_equiv::whole::{assess_whole, EquivConfig, GenBoundMode};
use sommelier_graph::TaskKind;
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::families::Family;
use sommelier_zoo::finetune::perturb_all;
use sommelier_zoo::teacher::{DatasetBias, Teacher};

#[derive(Serialize)]
struct FamilyResult {
    family: String,
    modeldiff_mean: f64,
    modeldiff_min: f64,
    modeldiff_max: f64,
    testing_only_mean: f64,
    testing_only_min: f64,
    testing_only_max: f64,
    bound_score: f64,
    bound_holds_in_all_draws: bool,
}

fn main() {
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 42);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.10);
    let families = [
        ("mobilenetish", Family::Mobilenetish),
        ("resnetish", Family::Resnetish),
        ("vggish", Family::Vggish),
    ];
    let finetune_level = 0.18;
    let draws = 20;
    let draw_rows = 96; // small per-draw test sets, as in ModelDiff

    let mut results = Vec::new();
    for (name, family) in families {
        let mut rng = Prng::seed_from_u64(7);
        let original = family.build(name, &teacher, &bias, &mut rng);
        let mut vrng = Prng::seed_from_u64(8);
        let variant = perturb_all(&original, finetune_level, &mut vrng);

        let mut md_scores = Vec::new();
        let mut testing_scores = Vec::new();
        for draw in 0..draws {
            let mut drng = Prng::seed_from_u64(10_000 + draw);
            let inputs = Tensor::gaussian(draw_rows, original.input_width(), 1.0, &mut drng);
            // ModelDiff's test-input selection pairs each seed input with
            // a nearby perturbation so decision *distances* probe the
            // local decision geometry; rows alternate (x, x + δ).
            let paired_rows: Vec<Tensor> = (0..draw_rows)
                .flat_map(|r| {
                    let x = inputs.row_tensor(r);
                    let delta =
                        Tensor::gaussian(1, inputs.cols(), 0.15, &mut drng);
                    let x2 = x.zip_with(&delta, |a, b| a + b);
                    [x, x2]
                })
                .collect();
            let paired = Tensor::stack_rows(&paired_rows);
            let md = modeldiff_similarity(&original, &variant, &paired).expect("runs");
            md_scores.push(md);
            let report = assess_whole(
                &original,
                &variant,
                &inputs,
                &EquivConfig {
                    epsilon: 1.0,
                    genbound: GenBoundMode::Off,
                },
            )
            .expect("comparable");
            testing_scores.push(report.score);
        }

        // The bound is computed once, from a single (the first) draw.
        let mut brng = Prng::seed_from_u64(10_000);
        let inputs = Tensor::gaussian(draw_rows, original.input_width(), 1.0, &mut brng);
        let bound_score = assess_whole(&original, &variant, &inputs, &EquivConfig::default())
            .expect("comparable")
            .score;

        let stats = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            (mean, min, max)
        };
        let (md_mean, md_min, md_max) = stats(&md_scores);
        let (t_mean, t_min, t_max) = stats(&testing_scores);
        results.push(FamilyResult {
            family: name.to_string(),
            modeldiff_mean: md_mean,
            modeldiff_min: md_min,
            modeldiff_max: md_max,
            testing_only_mean: t_mean,
            testing_only_min: t_min,
            testing_only_max: t_max,
            bound_score,
            bound_holds_in_all_draws: testing_scores.iter().all(|&s| bound_score <= s + 1e-9),
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.family.clone(),
                format!(
                    "{:.3} [{:.3},{:.3}]",
                    r.modeldiff_mean, r.modeldiff_min, r.modeldiff_max
                ),
                format!(
                    "{:.3} [{:.3},{:.3}]",
                    r.testing_only_mean, r.testing_only_min, r.testing_only_max
                ),
                format!("{:.3}", r.bound_score),
                format!("{}", r.bound_holds_in_all_draws),
            ]
        })
        .collect();
    print_table(
        "Figure 11: similarity scores, mean [min,max] over 20 dataset draws",
        &["Family", "ModelDiff", "Sommelier testing-only", "Sommelier bound", "bound holds"],
        &rows,
    );

    for r in &results {
        let md_swing = 100.0 * (r.modeldiff_max - r.modeldiff_min) / r.modeldiff_mean.max(1e-9);
        let t_swing =
            100.0 * (r.testing_only_max - r.testing_only_min) / r.testing_only_mean.max(1e-9);
        println!(
            "{}: ModelDiff swing {:.0}%, testing-only swing {:.0}% — the bound ({:.3}) never moves",
            r.family, md_swing, t_swing, r.bound_score
        );
    }
    println!("(paper: ModelDiff varies ~30% across draws; the bound is a stable safe floor)");
    write_json("fig11_modeldiff", &results);
}
