//! PR 8 performance gate: incremental index maintenance.
//!
//! Three halves, three acceptance bars:
//!
//! 1. **Register vs full reindex.** A real fleet is bulk-indexed once
//!    (`index_existing`), then a single fresh model is registered into
//!    the warm engine. The gate is register ≥ 20× cheaper than the full
//!    reindex: a mutation pays for its own bucket (one profile, its own
//!    sampled analyses, an O(affected) index splice, one structurally
//!    shared snapshot publish) instead of the whole repository.
//!
//! 2. **Churn linearity.** A 10k-model index is restored into an
//!    engine and hammered with a 1k-op unregister/reregister loop. The
//!    gate compares per-op cost between a half-length and full-length
//!    loop (ratio ≤ 1.5): per-op cost must not grow with the number of
//!    ops — the old deep-clone publish made every op O(repo), which
//!    this loop turns into an unmistakable quadratic curve.
//!
//! 3. **Identity.** After a mixed register/unregister/reregister churn,
//!    the engine's indices must serialize byte-identically (JSON and
//!    `.somb`) to a from-scratch build over the surviving models.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin pr8_incremental
//! # SOMMELIER_PR8_MODE=full for a larger fleet and longer loops
//! ```

use serde::Serialize;
use sommelier_bench::{fmt, print_table, timed, write_json};
use sommelier_graph::{Fingerprint, Model, ModelBuilder, TaskKind};
use sommelier_index::lsh::LshConfig;
use sommelier_index::persist::{self, IndexSnapshot, SnapshotStats, SNAPSHOT_VERSION};
use sommelier_index::semantic::{CandidateKind, CandidateRecord, SemanticIndexConfig};
use sommelier_index::{somb, ResourceIndex, SemanticIndex};
use sommelier_query::{Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_runtime::ResourceProfile;
use sommelier_tensor::{Prng, Shape};
use sommelier_zoo::families::Family;
use sommelier_zoo::series::build_series;
use std::sync::Arc;

#[derive(Serialize)]
struct RegisterVsReindex {
    models: usize,
    full_reindex_ms: f64,
    register_one_ms: f64,
    unregister_one_ms: f64,
    /// `full_reindex_ms / register_one_ms` — gated ≥ 20 by bench.sh.
    register_speedup: f64,
}

#[derive(Serialize)]
struct ChurnLoop {
    index_models: usize,
    half_ops: usize,
    full_ops: usize,
    half_us_per_op: f64,
    full_us_per_op: f64,
    /// `full_us_per_op / half_us_per_op` — gated ≤ 1.5 by bench.sh
    /// (per-op cost stays flat as the loop doubles).
    churn_linearity: f64,
}

#[derive(Serialize)]
struct Bench {
    experiment: &'static str,
    mode: String,
    register_vs_reindex: RegisterVsReindex,
    churn: ChurnLoop,
    /// Churned indices serialize byte-identically (JSON and `.somb`)
    /// to a from-scratch build of the surviving models — gated by
    /// bench.sh.
    identical: bool,
}

fn engine_config() -> SommelierConfig {
    let mut cfg = SommelierConfig {
        validation_rows: 16,
        jobs: 4,
        ..SommelierConfig::default()
    };
    cfg.index.sample_size = 8;
    cfg.index.segments = false;
    cfg
}

fn fleet(n_series: usize) -> Vec<Model> {
    let families = [
        Family::Bitish,
        Family::Efficientnetish,
        Family::Resnetish,
        Family::Mobilenetish,
        Family::Vggish,
        Family::Inceptionish,
    ];
    let mut rng = Prng::seed_from_u64(2028);
    let mut models = Vec::new();
    for i in 0..n_series {
        let family = families[i % families.len()];
        let series = build_series(
            &format!("{}-v{}", family.slug(), i / families.len() + 1),
            family,
            TaskKind::ImageRecognition,
            "imagenet",
            5,
            2028,
            0.12,
            &mut rng,
        );
        models.extend(series.models);
    }
    models
}

/// Half 1: bulk reindex cost vs a single warm-engine register.
fn register_vs_reindex(mode: &str) -> RegisterVsReindex {
    let n_series = if mode == "full" { 150 } else { 64 };
    let mut models = fleet(n_series + 1);
    // The last series member stays out of the bulk build and becomes
    // the single registered model.
    let newcomer = models.pop().expect("fleet is not empty");
    let repo = Arc::new(InMemoryRepository::new());
    for m in &models {
        repo.publish(&m.name, m, true).expect("publish");
    }
    let mut engine = Sommelier::connect(
        Arc::clone(&repo) as Arc<dyn ModelRepository>,
        engine_config(),
    );
    let (_, reindex_secs) = timed(|| engine.index_existing().expect("bulk index"));
    let (_, register_secs) = timed(|| engine.register(&newcomer).expect("register"));
    let (_, unregister_secs) = timed(|| assert!(engine.unregister(&newcomer.name)));
    RegisterVsReindex {
        models: models.len(),
        full_reindex_ms: reindex_secs * 1e3,
        register_one_ms: register_secs * 1e3,
        unregister_one_ms: unregister_secs * 1e3,
        register_speedup: reindex_secs / register_secs,
    }
}

/// A controlled-shape 10k-model index (the same `from_parts` technique
/// as the PR 7 bench): big enough that any O(repo) cost hiding in the
/// mutation path dominates the loop, cheap enough to build in
/// milliseconds.
fn synthetic(models: usize, cands: usize) -> (SemanticIndex, ResourceIndex) {
    let keys: Vec<String> = (0..models)
        .map(|i| format!("hub/family-{:02}/model-{:05}", i % 37, i))
        .collect();
    let mut resource = ResourceIndex::new(LshConfig::default(), 7);
    for (i, key) in keys.iter().enumerate() {
        let x = i as f64;
        resource.insert(
            key,
            ResourceProfile {
                memory_mb: 32.0 + (x * 1.7) % 4096.0,
                gflops: 0.5 + (x * 0.13) % 40.0,
                latency_ms: 1.0 + (x * 0.41) % 90.0,
            },
        );
    }
    let entries: Vec<(Fingerprint, String, Vec<CandidateRecord>)> = keys
        .iter()
        .enumerate()
        .map(|(i, key)| {
            let fp = Fingerprint((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
            let candidates = (1..=cands)
                .map(|j| {
                    let other = keys[(i + j * 131) % keys.len()].clone();
                    let diff = ((i * 31 + j * 17) % 1000) as f64 / 1250.0;
                    CandidateRecord {
                        key: other,
                        diff_bound: diff,
                        score: (1.0 - diff).max(0.0),
                        kind: CandidateKind::Whole,
                    }
                })
                .collect();
            (fp, key.clone(), candidates)
        })
        .collect();
    let semantic = SemanticIndex::from_parts(SemanticIndexConfig::default(), 7, entries, keys);
    (semantic, resource)
}

/// A tiny model for churn ops: maintenance cost, not analysis cost, is
/// the measurement.
fn tiny_model(name: &str) -> Model {
    let mut rng = Prng::seed_from_u64(0x88);
    ModelBuilder::new(name, TaskKind::Other, Shape::vector(4))
        .dense(4, &mut rng)
        .relu()
        .dense(3, &mut rng)
        .softmax()
        .build()
        .expect("tiny model builds")
}

/// Restore a fresh engine over the synthetic 10k-model snapshot and run
/// `ops` churn iterations; returns µs per op.
fn churn_us_per_op(snapshot_path: &std::path::Path, ops: usize) -> f64 {
    let repo = Arc::new(InMemoryRepository::new());
    let mut engine = Sommelier::connect_with_indices(
        repo as Arc<dyn ModelRepository>,
        engine_config(),
        snapshot_path,
    )
    .expect("synthetic snapshot restores");
    let probe = tiny_model("churn-probe");
    engine.register(&probe).expect("probe registers");
    let (_, secs) = timed(|| {
        for i in 0..ops {
            // One removal against the big index plus one replacement of
            // the probe: every iteration exercises tombstoning, the LSH
            // purge, slot reuse, and a structurally shared publish.
            engine.unregister(&format!("hub/family-{:02}/model-{:05}", i % 37, i));
            engine.reregister(&probe).expect("probe reregisters");
        }
    });
    secs * 1e6 / ops as f64
}

fn churn_half(mode: &str) -> ChurnLoop {
    let index_models = 10_000;
    let full_ops = if mode == "full" { 2_000 } else { 1_000 };
    let (semantic, resource) = synthetic(index_models, 16);
    let tag = std::process::id();
    let path = std::env::temp_dir().join(format!("sommelier-pr8-{tag}.index.somb"));
    persist::save_binary(&semantic, &resource, 1, &path).expect("snapshot saves");

    let half_us = churn_us_per_op(&path, full_ops / 2);
    let full_us = churn_us_per_op(&path, full_ops);
    std::fs::remove_file(&path).ok();
    ChurnLoop {
        index_models,
        half_ops: full_ops / 2,
        full_ops,
        half_us_per_op: half_us,
        full_us_per_op: full_us,
        churn_linearity: full_us / half_us,
    }
}

/// Serialize an engine's published indices at an explicit epoch, so the
/// identity comparison sees only index *contents*.
fn images(engine: &Sommelier) -> (String, Vec<u8>) {
    let snap = engine.reader().snapshot();
    let stats = SnapshotStats::of(&snap.semantic, &snap.resource, 0);
    let json = serde_json::to_string(&IndexSnapshot {
        version: SNAPSHOT_VERSION,
        stats: Some(stats),
        semantic: snap.semantic.clone(),
        resource: snap.resource.clone(),
    })
    .expect("snapshot serializes");
    let binary = somb::encode(&snap.semantic, &snap.resource, Some(&stats));
    (json, binary)
}

/// Half 3: churn a small real fleet, then rebuild the survivors from
/// scratch; both serializations must agree byte for byte.
fn identity_half() -> bool {
    let models = fleet(3); // 15 models
    let repo = Arc::new(InMemoryRepository::new());
    let mut engine = Sommelier::connect(
        Arc::clone(&repo) as Arc<dyn ModelRepository>,
        engine_config(),
    );
    for m in &models {
        engine.register(m).expect("register");
    }
    // Mixed churn: drop every third model, replace every fourth.
    let mut survivors: Vec<&Model> = Vec::new();
    for (i, m) in models.iter().enumerate() {
        if i % 3 == 0 {
            assert!(engine.unregister(&m.name));
        } else {
            if i % 4 == 0 {
                engine.reregister(m).expect("reregister");
            }
            survivors.push(m);
        }
    }
    let churned = images(&engine);

    let fresh_repo = Arc::new(InMemoryRepository::new());
    for m in &survivors {
        fresh_repo.publish(&m.name, m, false).expect("publish");
    }
    let mut fresh = Sommelier::connect(fresh_repo as Arc<dyn ModelRepository>, engine_config());
    fresh.index_existing().expect("bulk index");
    let rebuilt = images(&fresh);
    churned == rebuilt
}

fn main() {
    let mode = std::env::var("SOMMELIER_PR8_MODE").unwrap_or_else(|_| "quick".into());

    let rvr = register_vs_reindex(&mode);
    print_table(
        "PR 8: single-model register vs full reindex",
        &["models", "reindex ms", "register ms", "unregister ms", "speedup"],
        &[vec![
            rvr.models.to_string(),
            fmt(rvr.full_reindex_ms, 1),
            fmt(rvr.register_one_ms, 2),
            fmt(rvr.unregister_one_ms, 2),
            fmt(rvr.register_speedup, 1),
        ]],
    );
    println!("register speedup (gated >= 20): {}", fmt(rvr.register_speedup, 1));

    let churn = churn_half(&mode);
    print_table(
        "PR 8: churn loop on a 10k-model index",
        &["index", "ops", "us/op (half)", "us/op (full)", "linearity"],
        &[vec![
            churn.index_models.to_string(),
            churn.full_ops.to_string(),
            fmt(churn.half_us_per_op, 1),
            fmt(churn.full_us_per_op, 1),
            fmt(churn.churn_linearity, 2),
        ]],
    );
    println!("churn linearity (gated <= 1.5): {}", fmt(churn.churn_linearity, 2));

    let identical = identity_half();
    println!("churned == from-scratch snapshots (gated): {identical}");
    assert!(identical, "incremental maintenance drifted from a from-scratch build");

    write_json(
        "pr8_incremental",
        &Bench {
            experiment: "pr8_incremental",
            mode,
            register_vs_reindex: rvr,
            churn,
            identical,
        },
    );
}
