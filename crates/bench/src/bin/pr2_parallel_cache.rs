//! PR 2 performance gate: parallel index construction with the memoized
//! pairwise-analysis cache.
//!
//! Workload (the "churn-twice" curation sweep): publish ≥50 zoo models,
//! build the indices, then drop and re-add every model twice — the
//! shape of quarantine/restore or rolling re-curation churn. An
//! *unchanged in-place* refresh would be free (the semantic index's
//! edge table memoizes every attempted pair), so the sweeps remove
//! each model — killing its edges — before re-adding it, which
//! re-attempts those pairs. Two configurations run the same workload:
//!
//! * **baseline** — `--jobs 1 --cache-cap 0`: the sequential reference;
//!   every re-attempted pairwise analysis is recomputed from scratch;
//! * **tuned** — `--jobs 4 --cache-cap 65536`: the parallel build with
//!   the content-addressed pairwise cache; re-attempted pairs are
//!   served from the LRU instead of re-analyzed.
//!
//! Both configurations must produce **byte-identical** snapshots (the
//! build pipeline is deterministic at any job count), which the binary
//! asserts before reporting. Reported: build throughput (models
//! processed per second across the three sweeps), p50/p90 query latency,
//! and the tuned run's cache hit rate.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin pr2_parallel_cache
//! # SOMMELIER_PR2_MODE=full for a larger fleet
//! ```

use serde::Serialize;
use sommelier_bench::{fmt, print_table, timed, write_json};
use sommelier_graph::{Model, TaskKind};
use sommelier_query::{Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_tensor::Prng;
use sommelier_zoo::families::Family;
use sommelier_zoo::series::build_series;
use std::sync::Arc;

#[derive(Serialize)]
struct RunReport {
    jobs: usize,
    cache_cap: usize,
    models: usize,
    /// Models processed across the build + two refresh sweeps.
    models_processed: usize,
    build_seconds: f64,
    build_throughput_models_per_sec: f64,
    query_p50_ms: f64,
    query_p90_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
}

#[derive(Serialize)]
struct Bench {
    experiment: &'static str,
    mode: String,
    baseline: RunReport,
    tuned: RunReport,
    speedup: f64,
    snapshots_identical: bool,
}

/// Build the model fleet: `series × 5` finetuned variants per family.
fn fleet(n_series: usize) -> Vec<Model> {
    let families = [
        Family::Bitish,
        Family::Efficientnetish,
        Family::Resnetish,
        Family::Mobilenetish,
        Family::Vggish,
        Family::Inceptionish,
    ];
    let mut rng = Prng::seed_from_u64(2024);
    let mut models = Vec::new();
    for i in 0..n_series {
        let family = families[i % families.len()];
        let series = build_series(
            &format!("{}-v{}", family.slug(), i / families.len() + 1),
            family,
            TaskKind::ImageRecognition,
            "imagenet",
            5,
            2024,
            0.12,
            &mut rng,
        );
        models.extend(series.models);
    }
    models
}

/// Run the full workload under one knob configuration.
fn run(models: &[Model], jobs: usize, cache_cap: usize, queries: usize) -> (RunReport, Vec<u8>) {
    let repo = Arc::new(InMemoryRepository::new());
    for m in models {
        repo.publish(&m.name, m, true).expect("publish");
    }
    let mut cfg = SommelierConfig {
        validation_rows: 64,
        jobs,
        cache_cap,
        ..SommelierConfig::default()
    };
    cfg.index.sample_size = 6;
    cfg.index.segments = false;
    let mut engine = Sommelier::connect(repo as Arc<dyn ModelRepository>, cfg);

    // Build + two churn sweeps. Refreshing an *unchanged* model in
    // place is free since the edge table memoizes attempted pairs, so
    // the sweeps churn instead: dropping a model kills its edges, and
    // the re-add re-attempts those pairs — served from the cache in the
    // tuned run, re-analyzed from scratch in the uncached baseline.
    let (_, build_seconds) = timed(|| {
        let indexed = engine.index_existing().expect("index");
        assert_eq!(indexed, models.len());
        for _ in 0..2 {
            for m in models {
                assert!(engine.unregister(&m.name), "churned key is indexed");
                engine.reregister(m).expect("reregister");
            }
        }
    });
    let models_processed = 3 * models.len();

    // Query latencies over rotating references.
    let mut lat_ms: Vec<f64> = Vec::with_capacity(queries);
    for q in 0..queries {
        let reference = &models[(q * 7) % models.len()].name;
        let text = format!(
            "SELECT models 5 CORR {reference} ON memory <= 500% WITHIN 0.95"
        );
        let (res, secs) = timed(|| engine.query(&text).expect("query"));
        std::hint::black_box(res);
        lat_ms.push(secs * 1e3);
    }
    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat_ms[((lat_ms.len() as f64 - 1.0) * p).round() as usize];

    let stats = engine.cache_stats();
    let analyses = stats.hits + stats.misses;
    let snap_path = std::env::temp_dir().join(format!(
        "sommelier-pr2-{}-j{jobs}-c{cache_cap}.index.json",
        std::process::id()
    ));
    engine.save_indices(&snap_path).expect("save snapshot");
    let snapshot = std::fs::read(&snap_path).expect("read snapshot");
    std::fs::remove_file(&snap_path).ok();

    let report = RunReport {
        jobs,
        cache_cap,
        models: models.len(),
        models_processed,
        build_seconds,
        build_throughput_models_per_sec: models_processed as f64 / build_seconds,
        query_p50_ms: pct(0.50),
        query_p90_ms: pct(0.90),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_hit_rate: if analyses == 0 {
            0.0
        } else {
            stats.hits as f64 / analyses as f64
        },
    };
    (report, snapshot)
}

fn main() {
    let mode = std::env::var("SOMMELIER_PR2_MODE").unwrap_or_else(|_| "smoke".into());
    let (n_series, queries) = match mode.as_str() {
        "full" => (24, 80),
        _ => (12, 40),
    };
    let models = fleet(n_series);
    assert!(models.len() >= 50, "fleet must hold at least 50 models");
    println!(
        "pr2_parallel_cache [{mode}]: {} models, {} queries per run",
        models.len(),
        queries
    );

    let (baseline, snap_base) = run(&models, 1, 0, queries);
    let (tuned, snap_tuned) = run(&models, 4, 65536, queries);

    let snapshots_identical = snap_base == snap_tuned;
    assert!(
        snapshots_identical,
        "tuned build diverged from the sequential reference snapshot"
    );
    assert!(tuned.cache_hits > 0, "churned re-adds must hit the cache");

    let speedup =
        tuned.build_throughput_models_per_sec / baseline.build_throughput_models_per_sec;

    let row = |r: &RunReport| {
        vec![
            format!("jobs={} cap={}", r.jobs, r.cache_cap),
            fmt(r.build_seconds, 2),
            fmt(r.build_throughput_models_per_sec, 1),
            fmt(r.query_p50_ms, 3),
            fmt(r.query_p90_ms, 3),
            format!("{}/{}", r.cache_hits, r.cache_hits + r.cache_misses),
            fmt(r.cache_hit_rate * 100.0, 1),
        ]
    };
    print_table(
        "PR 2: parallel build + pairwise cache (churn-twice workload)",
        &[
            "config",
            "build s",
            "models/s",
            "q p50 ms",
            "q p90 ms",
            "cache",
            "hit %",
        ],
        &[row(&baseline), row(&tuned)],
    );
    println!(
        "\nspeedup: {:.2}x (snapshots identical: {snapshots_identical})",
        speedup
    );

    write_json(
        "pr2_parallel_cache",
        &Bench {
            experiment: "pr2_parallel_cache",
            mode,
            baseline,
            tuned,
            speedup,
            snapshots_identical,
        },
    );
}
