//! Figure 3: extent of equivalence between DNN models.
//!
//! Five widely used image-classification models, all trained on the same
//! dataset, are fed the same test inputs. The diagonal reports each
//! model's own top-1 accuracy; off-diagonal entries report the fraction
//! of inputs on which two models produce the same top-1 answer. The
//! paper's observation: **inter-model agreement exceeds the models' own
//! accuracies**, i.e. the models are interchangeable in practice while
//! none is "the" definitive model.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin fig3_agreement
//! ```

use serde::Serialize;
use sommelier_bench::{fmt, print_table, write_json};
use sommelier_graph::TaskKind;
use sommelier_runtime::execute;
use sommelier_runtime::metrics::{agreement_ratio, top1_accuracy};
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::families::Family;
use sommelier_zoo::teacher::{DatasetBias, Teacher};

#[derive(Serialize)]
struct Fig3 {
    models: Vec<String>,
    /// `matrix[i][j]`: i==j → accuracy of i; else agreement(i, j).
    matrix: Vec<Vec<f64>>,
    min_agreement: f64,
    max_accuracy: f64,
}

fn main() {
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 42);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.22);
    let mut rng = Prng::seed_from_u64(3);

    let families = [
        ("resnet50ish", Family::Resnetish),
        ("inceptionish", Family::Inceptionish),
        ("resnext101ish", Family::Resnextish),
        ("vgg19ish", Family::Vggish),
        ("mobilenetish", Family::Mobilenetish),
    ];
    let models: Vec<_> = families
        .iter()
        .map(|(name, family)| {
            let mut frng = rng.fork();
            family.build(*name, &teacher, &bias, &mut frng)
        })
        .collect();

    let n = 2000;
    let inputs = Tensor::gaussian(n, teacher.spec.input_width, 1.0, &mut rng);
    let labels = teacher.labels(&inputs);
    let outputs: Vec<Tensor> = models
        .iter()
        .map(|m| execute(m, &inputs).expect("model executes"))
        .collect();

    let k = models.len();
    let mut matrix = vec![vec![0.0f64; k]; k];
    for i in 0..k {
        for j in 0..k {
            matrix[i][j] = if i == j {
                top1_accuracy(&outputs[i], &labels)
            } else {
                agreement_ratio(&outputs[i], &outputs[j])
            };
        }
    }

    let header: Vec<&str> = std::iter::once("")
        .chain(families.iter().map(|(n, _)| *n))
        .collect();
    let rows: Vec<Vec<String>> = (0..k)
        .map(|i| {
            std::iter::once(families[i].0.to_string())
                .chain((0..k).map(|j| fmt(matrix[i][j], 3)))
                .collect()
        })
        .collect();
    print_table(
        "Figure 3: top-1 accuracy (diagonal) vs pairwise agreement (off-diagonal)",
        &header,
        &rows,
    );

    let max_accuracy = (0..k).map(|i| matrix[i][i]).fold(0.0f64, f64::max);
    let min_agreement = (0..k)
        .flat_map(|i| (0..k).filter(move |&j| j != i).map(move |j| (i, j)))
        .map(|(i, j)| matrix[i][j])
        .fold(1.0f64, f64::min);
    println!(
        "\nmax own accuracy = {:.3}; min inter-model agreement = {:.3}",
        max_accuracy, min_agreement
    );
    println!(
        "paper claim — agreement between models exceeds their accuracies: {}",
        if min_agreement > max_accuracy { "REPRODUCED" } else { "NOT reproduced" }
    );

    write_json(
        "fig3_agreement",
        &Fig3 {
            models: families.iter().map(|(n, _)| n.to_string()).collect(),
            matrix,
            min_agreement,
            max_accuracy,
        },
    );
}
