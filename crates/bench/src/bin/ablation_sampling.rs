//! Ablation: sampled insertion vs full pairwise analysis.
//!
//! The semantic index analyzes each new model against only 5 random
//! stored models and derives the rest transitively (paper Section 5.2:
//! "this sampling approach dramatically improves scalability without
//! degrading query quality much"). This ablation quantifies both halves
//! of that claim: index build time and top-1-equivalent agreement with
//! the exhaustive full-pairwise index, across sample sizes.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin ablation_sampling
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, timed, write_json};
use sommelier_graph::TaskKind;
use sommelier_index::CandidateKind;
use sommelier_query::{Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_tensor::Prng;
use sommelier_zoo::families::{Family, FamilyScale};
use sommelier_zoo::teacher::{DatasetBias, Teacher};
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    sample_size: usize,
    build_seconds: f64,
    top1_agreement_with_full: f64,
    top5_overlap_with_full: f64,
}

fn build_engine(models: &[sommelier_graph::Model], sample_size: usize) -> (Sommelier, f64) {
    let repo = Arc::new(InMemoryRepository::new());
    let mut cfg = SommelierConfig {
        validation_rows: 192,
        ..SommelierConfig::default()
    };
    cfg.index.segments = false;
    cfg.index.sample_size = sample_size;
    let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);
    let ((), secs) = timed(|| {
        for m in models {
            engine.register(m).expect("fresh");
        }
    });
    (engine, secs)
}

fn top_k(engine: &Sommelier, key: &str, k: usize) -> Vec<String> {
    engine
        .semantic_index()
        .candidates_of(key)
        .iter()
        .filter(|c| !matches!(c.kind, CandidateKind::Synthesized { .. }))
        .take(k)
        .map(|c| c.key.clone())
        .collect()
}

fn main() {
    // A 36-model pool: 6 families × 6 sizes over one task.
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 42);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.10);
    let mut rng = Prng::seed_from_u64(3);
    let families = [
        Family::Resnetish,
        Family::Vggish,
        Family::Mobilenetish,
        Family::Inceptionish,
        Family::Efficientnetish,
        Family::Bertish,
    ];
    let mut models = Vec::new();
    for (fi, family) in families.into_iter().enumerate() {
        for size in 0..6 {
            let t = size as f64 / 5.0;
            let mut frng = rng.fork();
            models.push(family.build_scaled(
                format!("{}-{size}", family.slug()),
                &teacher,
                &bias,
                &FamilyScale::new(0.6 + 0.8 * t, 3 + size, 0.02 - 0.015 * t),
                &mut frng,
            ));
            let _ = fi;
        }
    }

    // Oracle: the full pairwise index.
    let (full, full_secs) = build_engine(&models, usize::MAX);
    println!("full pairwise build: {full_secs:.1}s");

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for sample in [2usize, 5, 10, 20] {
        let (engine, secs) = build_engine(&models, sample);
        let mut top1_hits = 0usize;
        let mut top5_overlap = 0.0f64;
        for m in &models {
            let got1 = top_k(&engine, &m.name, 1);
            let want1 = top_k(&full, &m.name, 1);
            if got1 == want1 {
                top1_hits += 1;
            }
            let got5 = top_k(&engine, &m.name, 5);
            let want5 = top_k(&full, &m.name, 5);
            let overlap = got5.iter().filter(|k| want5.contains(k)).count();
            top5_overlap += overlap as f64 / want5.len().max(1) as f64;
        }
        let row = Row {
            sample_size: sample,
            build_seconds: secs,
            top1_agreement_with_full: top1_hits as f64 / models.len() as f64,
            top5_overlap_with_full: top5_overlap / models.len() as f64,
        };
        println!(
            "sample {:>2}: build {:>5.1}s ({:.1}x faster), top-1 agreement {:.0}%, top-5 overlap {:.0}%",
            row.sample_size,
            row.build_seconds,
            full_secs / row.build_seconds.max(1e-9),
            row.top1_agreement_with_full * 100.0,
            row.top5_overlap_with_full * 100.0
        );
        rows.push(vec![
            row.sample_size.to_string(),
            format!("{:.1}", row.build_seconds),
            format!("{:.0}%", row.top1_agreement_with_full * 100.0),
            format!("{:.0}%", row.top5_overlap_with_full * 100.0),
        ]);
        results.push(row);
    }
    rows.push(vec![
        "full".into(),
        format!("{full_secs:.1}"),
        "100%".into(),
        "100%".into(),
    ]);

    print_table(
        "Ablation: sampled insertion vs full pairwise",
        &["Sample", "Build (s)", "Top-1 vs full", "Top-5 vs full"],
        &rows,
    );
    write_json("ablation_sampling", &results);
}
