//! Figure 13: cross-series DNN similarity in the TF-Hub catalog.
//!
//! Random subsets of the 30-series / 163-model catalog are indexed
//! incrementally; for each indexed model we find its top-K functional
//! equivalents and ask whether they come from *outside* the model's own
//! series. Paper's findings: with all series indexed, up to ~40% of
//! series find their top-1 equivalent in another series and ~80% their
//! top-5 (rising with the number of indexed series); agreement between
//! the closest models always exceeds the models' own accuracies
//! (consistent with Figure 3).
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin fig13_cross_series
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, write_json};
use sommelier_index::CandidateKind;
use sommelier_query::{Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_tensor::Prng;
use sommelier_zoo::series::{catalog_model_count, tfhub_catalog, Series};
use std::sync::Arc;

#[derive(Serialize)]
struct Point {
    series_indexed: usize,
    top1_outside_fraction: f64,
    top5_outside_fraction: f64,
    repeats: usize,
}

fn outside_fractions(catalog: &[Series], picked: &[usize]) -> (f64, f64) {
    // Index the picked series.
    let repo = Arc::new(InMemoryRepository::new());
    let mut cfg = SommelierConfig {
        validation_rows: 192,
        ..SommelierConfig::default()
    };
    cfg.index.segments = false;
    cfg.index.sample_size = 5; // the paper's sampled insertion
    let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);
    for &si in picked {
        for m in &catalog[si].models {
            engine.register(m).expect("fresh key");
        }
    }

    // Per model: does its top-1 equivalent (and any of its top-5) come
    // from outside its own series?
    let mut models_total = 0usize;
    let mut top1_outside = 0usize;
    let mut top5_outside = 0usize;
    for &si in picked {
        let series = &catalog[si];
        for m in &series.models {
            let cands: Vec<&str> = engine
                .semantic_index()
                .candidates_of(&m.name)
                .iter()
                .filter(|c| !matches!(c.kind, CandidateKind::Synthesized { .. }))
                .map(|c| c.key.as_str())
                .collect();
            let series_of = |key: &str| {
                picked
                    .iter()
                    .find(|&&sj| catalog[sj].models.iter().any(|mm| mm.name == key))
                    .copied()
            };
            models_total += 1;
            if let Some(first) = cands.first() {
                if series_of(first) != Some(si) {
                    top1_outside += 1;
                }
            }
            if cands.iter().take(5).any(|k| series_of(k) != Some(si)) {
                top5_outside += 1;
            }
        }
    }
    (
        top1_outside as f64 / models_total.max(1) as f64,
        top5_outside as f64 / models_total.max(1) as f64,
    )
}

fn main() {
    let catalog = tfhub_catalog(2024);
    println!(
        "catalog: {} series, {} models",
        catalog.len(),
        catalog_model_count(&catalog)
    );

    let subset_sizes = [5usize, 10, 20, 30];
    let repeats = 5;
    let mut points = Vec::new();
    for &k in &subset_sizes {
        let mut t1_sum = 0.0;
        let mut t5_sum = 0.0;
        let actual_repeats = if k == catalog.len() { 1 } else { repeats };
        for rep in 0..actual_repeats {
            let mut rng = Prng::seed_from_u64(500 + rep as u64);
            let picked = rng.sample_indices(catalog.len(), k);
            let (t1, t5) = outside_fractions(&catalog, &picked);
            t1_sum += t1;
            t5_sum += t5;
        }
        let p = Point {
            series_indexed: k,
            top1_outside_fraction: t1_sum / actual_repeats as f64,
            top5_outside_fraction: t5_sum / actual_repeats as f64,
            repeats: actual_repeats,
        };
        println!(
            "{:>2} series indexed: top-1 outside {:>5.1}%, top-5 outside {:>5.1}% ({} repeats)",
            p.series_indexed,
            p.top1_outside_fraction * 100.0,
            p.top5_outside_fraction * 100.0,
            p.repeats
        );
        points.push(p);
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.series_indexed),
                format!("{:.0}%", p.top1_outside_fraction * 100.0),
                format!("{:.0}%", p.top5_outside_fraction * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 13: models finding top-K equivalents outside their own series",
        &["Series indexed", "top-1 outside", "top-5 outside"],
        &rows,
    );
    let last = points.last().expect("non-empty");
    println!(
        "\nfully indexed: top-1 {:.0}% / top-5 {:.0}% (paper: ~40% / ~80%) — hidden cross-series correlation is widespread",
        last.top1_outside_fraction * 100.0,
        last.top5_outside_fraction * 100.0
    );
    write_json("fig13_cross_series", &points);
}
