//! Table 3: run-time query latency vs repository size.
//!
//! Indices are populated with 100 / 1k / 10k / 100k model records and
//! queried 20 times each with (i) a resource predicate alone, (ii) a
//! semantic predicate alone, and (iii) both. The paper's claims: queries
//! stay in the low-millisecond range even at 100K records, the semantic
//! lookup is far cheaper than the resource range search, and both-
//! predicate queries cost roughly the sum.
//!
//! Populating a 100K-model semantic index with *real* pairwise analysis is
//! an offline job (Table 2 measures its unit cost); here the index
//! structures themselves are exercised with synthetic-but-realistic
//! records, exactly what a query touches at run time.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin table3_query_latency
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, write_json};
use sommelier_graph::{Model, ModelBuilder, TaskKind};
use sommelier_index::lsh::LshConfig;
use sommelier_index::semantic::{PairAnalyzer, SemanticIndexConfig};
use sommelier_index::{ResourceConstraint, ResourceIndex, SemanticIndex};
use sommelier_runtime::ResourceProfile;
use sommelier_tensor::{mix64, stable_hash64, Prng, Shape, Tensor};
use std::time::Instant;

/// A stand-in analyzer with plausible diff values — the index structure,
/// not the analysis, is under test here.
struct SyntheticAnalyzer {
    seed: u64,
}

impl PairAnalyzer for SyntheticAnalyzer {
    fn whole_diff(&self, a: &Model, b: &Model) -> Option<f64> {
        // Deterministic per pair so parallel insertion stays reproducible.
        let pair = mix64(&[
            self.seed,
            stable_hash64(a.name.as_bytes()),
            stable_hash64(b.name.as_bytes()),
        ]);
        Some(Prng::seed_from_u64(pair).uniform() * 0.3)
    }
}

/// A tiny model with a unique fingerprint per index `i`.
fn record_model(i: usize) -> Model {
    let mut w = Tensor::zeros(2, 2);
    w.set(0, 0, i as f32 + 1.0);
    w.set(1, 1, 1.0);
    ModelBuilder::new(format!("m{i:06}"), TaskKind::Other, Shape::vector(2))
        .dense_with(w, None)
        .build()
        .expect("valid")
}

fn profile(rng: &mut Prng) -> ResourceProfile {
    ResourceProfile {
        memory_mb: 10.0 * rng.uniform().exp2() * 50.0,
        gflops: rng.uniform() * 20.0,
        latency_ms: rng.uniform() * 100.0,
    }
}

#[derive(Serialize)]
struct Row {
    records: usize,
    resource_ms: f64,
    semantic_ms: f64,
    both_ms: f64,
}

fn main() {
    let sizes = [100usize, 1_000, 10_000, 100_000];
    let queries = 20;
    let mut rows = Vec::new();
    let mut results = Vec::new();

    for &n in &sizes {
        let mut rng = Prng::seed_from_u64(42);
        let mut resource = ResourceIndex::new(LshConfig::default(), 1);
        let mut semantic = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 5,
                segments: false,
                max_candidates: 64,
            },
            1,
        );
        let analyzer = SyntheticAnalyzer { seed: 7 };
        // Resolver keeps a window of recent models (sampling only ever
        // touches stored names; rebuild on demand by parsing the index).
        let resolve = |k: &str| {
            let i: usize = k.trim_start_matches('m').parse().ok()?;
            Some(record_model(i))
        };
        for i in 0..n {
            let m = record_model(i);
            semantic.insert(&m, &resolve, &analyzer);
            resource.insert(&m.name, profile(&mut rng));
        }

        // (i) resource predicate alone.
        let mut qrng = Prng::seed_from_u64(9);
        let start = Instant::now();
        let mut found = 0usize;
        for _ in 0..queries {
            let c = ResourceConstraint {
                max_memory_mb: Some(100.0 + qrng.uniform() * 2000.0),
                max_gflops: Some(qrng.uniform() * 20.0),
                max_latency_ms: None,
            };
            found += resource.query(&c).len();
        }
        let resource_ms = start.elapsed().as_secs_f64() * 1e3 / queries as f64;

        // (ii) semantic predicate alone.
        let start = Instant::now();
        for q in 0..queries {
            let key = format!("m{:06}", (q * 37) % n);
            found += semantic.lookup_key(&key, 0.8).len();
        }
        let semantic_ms = start.elapsed().as_secs_f64() * 1e3 / queries as f64;

        // (iii) both: semantic lookup intersected with the admitted set.
        let mut qrng = Prng::seed_from_u64(9);
        let start = Instant::now();
        for q in 0..queries {
            let c = ResourceConstraint {
                max_memory_mb: Some(100.0 + qrng.uniform() * 2000.0),
                max_gflops: Some(qrng.uniform() * 20.0),
                max_latency_ms: None,
            };
            let admitted: std::collections::HashSet<String> =
                resource.query(&c).into_iter().collect();
            let key = format!("m{:06}", (q * 37) % n);
            found += semantic
                .lookup_key(&key, 0.8)
                .into_iter()
                .filter(|cand| admitted.contains(&cand.key))
                .count();
        }
        let both_ms = start.elapsed().as_secs_f64() * 1e3 / queries as f64;
        std::hint::black_box(found);

        println!(
            "{n:>7} records: resource {resource_ms:.3} ms, semantic {semantic_ms:.3} ms, both {both_ms:.3} ms"
        );
        rows.push(vec![
            format!("{n}"),
            format!("{resource_ms:.3}"),
            format!("{semantic_ms:.3}"),
            format!("{both_ms:.3}"),
        ]);
        results.push(Row {
            records: n,
            resource_ms,
            semantic_ms,
            both_ms,
        });
    }

    print_table(
        "Table 3: run-time query latency (ms)",
        &["Records", "Resource", "Semantic", "Both"],
        &rows,
    );
    let last = results.last().expect("non-empty");
    println!(
        "\n100K-record combined query: {:.2} ms (paper: ~6.7 ms) — orders of magnitude below inference time",
        last.both_ms
    );
    write_json("table3_query_latency", &results);
}
