//! PR 9 performance gate: the `sommelier serve` daemon under saturation.
//!
//! One daemon, one engine, a 5k-model synthetic index — and three
//! phases:
//!
//! 1. **Single-connection baseline.** One interactive client issues one
//!    `query` frame per round trip: the natural lowest-concurrency
//!    client, paying full protocol + scheduling overhead per query.
//! 2. **Saturation.** 8 concurrent connections pipeline `query_batch`
//!    frames, keeping the daemon's admission gate busy while a mutator
//!    thread storms `apply` + reindex republishes through
//!    [`DaemonHandle::with_engine`]. The gate is throughput ≥ 3× the
//!    single-connection baseline with **zero** protocol errors and
//!    **zero** mixed-epoch batches — every batch frame must report one
//!    pinned snapshot epoch across all of its items even though the
//!    epoch is bumping underneath it.
//! 3. **Over-admission.** A fresh daemon with `workers=1 queue_depth=2`
//!    is hit by a long-running batch plus 6 bursting probes: arrivals
//!    past the bounded queue must shed with a typed `overloaded` +
//!    `retry_after_ms` response (never a hang), and the observed
//!    `serve.max_inflight` must stay within `workers + queue_depth`.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin pr9_serve
//! # SOMMELIER_PR9_MODE=full for a larger zoo and longer phases
//! ```

use serde::{Serialize, Value};
use sommelier_bench::{fmt, print_table, write_json};
use sommelier_graph::{Fingerprint, TaskKind};
use sommelier_index::lsh::LshConfig;
use sommelier_index::semantic::{CandidateKind, CandidateRecord, SemanticIndexConfig};
use sommelier_index::{persist, ResourceIndex, SemanticIndex};
use sommelier_query::{MutationBatch, Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_serving::daemon::client::Client;
use sommelier_serving::{Daemon, DaemonConfig};
use sommelier_tensor::Prng;
use sommelier_zoo::families::Family;
use sommelier_zoo::series::build_series;
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

#[derive(Serialize)]
struct Run {
    connections: usize,
    frames: usize,
    queries: usize,
    elapsed_s: f64,
    queries_per_sec: f64,
    /// Client-side per-frame latency quantiles (exact nearest-rank).
    frame_p50_ms: f64,
    frame_p99_ms: f64,
}

#[derive(Serialize)]
struct ShedRun {
    probes: usize,
    workers: usize,
    queue_depth: usize,
    /// `workers + queue_depth`: the hard concurrency bound.
    capacity: usize,
    /// Typed `overloaded` responses observed by the probes.
    shed: u64,
    /// Peak concurrent admissions the gate ever saw.
    max_inflight: u64,
    /// Smallest `retry_after_ms` hint carried by a shed response.
    min_retry_after_ms: u64,
    /// `max_inflight <= capacity` — the queue really is bounded.
    queue_bounded: bool,
}

#[derive(Serialize)]
struct Bench {
    experiment: &'static str,
    mode: String,
    models: usize,
    batch_size: usize,
    single: Run,
    saturated: Run,
    /// `saturated.qps / single.qps` — gated >= 3.0 by bench.sh.
    throughput_ratio: f64,
    /// Snapshot publications (epoch delta) during the serving phases.
    republishes: u64,
    /// Distinct epochs observed inside batch replies.
    epochs_seen: usize,
    /// Batch replies whose items disagreed on the epoch — gated == 0.
    mixed_epoch_batches: u64,
    /// Transport or non-ok responses in phases 1–2 — gated == 0.
    protocol_errors: u64,
    /// Daemon-side `serve.request_ms` histogram quantiles.
    server_p50_ms: f64,
    server_p99_ms: f64,
    shed: ShedRun,
}

/// A controlled-shape index pair (same construction as the PR 7 bench):
/// `models` keys, each with `cands` candidate records, every key
/// carrying a resource profile. Deterministic arithmetic stands in for
/// analysis so the zoo is large without costing minutes to build.
fn synthetic(models: usize, cands: usize) -> (SemanticIndex, ResourceIndex) {
    let keys: Vec<String> = (0..models)
        .map(|i| format!("hub/family-{:02}/model-{:05}", i % 37, i))
        .collect();
    let mut resource = ResourceIndex::new(LshConfig::default(), 7);
    for (i, key) in keys.iter().enumerate() {
        let x = i as f64;
        resource.insert(
            key,
            sommelier_runtime::ResourceProfile {
                memory_mb: 32.0 + (x * 1.7) % 4096.0,
                gflops: 0.5 + (x * 0.13) % 40.0,
                latency_ms: 1.0 + (x * 0.41) % 90.0,
            },
        );
    }
    let entries: Vec<(Fingerprint, String, Vec<CandidateRecord>)> = keys
        .iter()
        .enumerate()
        .map(|(i, key)| {
            let fp = Fingerprint((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
            let candidates = (1..=cands)
                .map(|j| {
                    let other = keys[(i + j * 131) % keys.len()].clone();
                    let diff = ((i * 31 + j * 17) % 1000) as f64 / 1250.0;
                    let kind = if j % 3 == 0 {
                        CandidateKind::Transitive {
                            via: keys[(i + j) % keys.len()].clone(),
                        }
                    } else {
                        CandidateKind::Whole
                    };
                    CandidateRecord {
                        key: other,
                        diff_bound: diff,
                        score: (1.0 - diff).max(0.0),
                        kind,
                    }
                })
                .collect();
            (fp, key.clone(), candidates)
        })
        .collect();
    let semantic = SemanticIndex::from_parts(SemanticIndexConfig::default(), 7, entries, keys);
    (semantic, resource)
}

fn engine_config() -> SommelierConfig {
    let mut cfg = SommelierConfig {
        validation_rows: 64,
        // The daemon's own admission gate governs concurrency; engine
        // lanes stay at 1 so queries don't time-slice against each
        // other inside a single execution.
        jobs: 1,
        // Plan/result cache ON: a long-lived daemon serving repeated
        // query texts is exactly the workload the cache exists for.
        query_cache_cap: 512,
        ..SommelierConfig::default()
    };
    cfg.index.sample_size = 12;
    cfg.index.segments = false;
    cfg
}

/// The shared query workload: every text names its own synthetic
/// reference so plan-cache hits are realistic (a handful of popular
/// queries), not degenerate (one text repeated).
fn workload(models: usize, distinct: usize) -> Vec<String> {
    (0..distinct)
        .map(|i| {
            let reference = format!("hub/family-{:02}/model-{:05}", (i * 97) % 37, (i * 97) % models);
            let within = 0.2 + (i % 8) as f64 * 0.05;
            format!(
                "SELECT models 3 CORR {reference} ON memory <= 500% WITHIN {within:.2} ORDER BY similarity"
            )
        })
        .collect()
}

/// Exact nearest-rank percentile of an unsorted latency sample.
fn pctl(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

fn uint_of(value: &Value) -> Option<u64> {
    match value {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn float_of(value: &Value) -> Option<f64> {
    match value {
        Value::Float(f) => Some(*f),
        other => uint_of(other).map(|n| n as f64),
    }
}

/// Pull one `serve.*` counter out of a `metrics` reply.
fn counter_of(reply: &Value, name: &str) -> u64 {
    reply
        .get_field("counters")
        .and_then(|c| c.get_field(name))
        .and_then(uint_of)
        .unwrap_or(0)
}

fn epoch_of(client: &mut Client) -> u64 {
    let reply = client.ping().expect("ping");
    reply.body.get_field("epoch").and_then(uint_of).unwrap_or(0)
}

/// Build the serving engine: a 5k-model synthetic index restored from a
/// binary snapshot, plus a small real zoo series in the repository for
/// the mutator storm to unregister/reindex.
fn build_engine(models: usize) -> (Sommelier, String) {
    let (semantic, resource) = synthetic(models, 12);
    let tag = std::process::id();
    let path: PathBuf = std::env::temp_dir().join(format!("sommelier-pr9-{tag}.index.somb"));
    persist::save_binary(&semantic, &resource, 1, &path).expect("binary save");

    let repo = Arc::new(InMemoryRepository::new());
    let mut rng = Prng::seed_from_u64(51);
    let series = build_series(
        "servenet",
        Family::Mobilenetish,
        TaskKind::ImageRecognition,
        "imagenet",
        3,
        51,
        0.08,
        &mut rng,
    );
    for m in &series.models {
        repo.publish(&m.name, m, true).expect("publish");
    }
    let victim = series.models[0].name.clone();
    let mut engine = Sommelier::connect_with_indices(
        Arc::clone(&repo) as Arc<dyn ModelRepository>,
        engine_config(),
        &path,
    )
    .expect("snapshot restores");
    engine.index_existing().expect("zoo indexes");
    std::fs::remove_file(&path).ok();
    (engine, victim)
}

struct SatOutcome {
    latencies: Vec<f64>,
    errors: u64,
    mixed: u64,
    epochs: BTreeSet<u64>,
}

/// One saturation worker: pipeline `frames` batch frames of
/// `batch_size` queries over its own connection, checking that every
/// reply pins exactly one epoch across its items.
fn saturation_worker(
    addr: SocketAddr,
    texts: Arc<Vec<String>>,
    barrier: Arc<Barrier>,
    frames: usize,
    batch_size: usize,
    offset: usize,
) -> SatOutcome {
    let mut client = Client::connect(addr).expect("connect");
    let mut out = SatOutcome {
        latencies: Vec::with_capacity(frames),
        errors: 0,
        mixed: 0,
        epochs: BTreeSet::new(),
    };
    barrier.wait();
    for f in 0..frames {
        let batch: Vec<String> = (0..batch_size)
            .map(|q| texts[(offset + f * batch_size + q) % texts.len()].clone())
            .collect();
        let started = Instant::now();
        match client.query_batch(&batch) {
            Err(_) => out.errors += 1,
            Ok(reply) if !reply.ok => out.errors += 1,
            Ok(reply) => {
                out.latencies.push(started.elapsed().as_secs_f64() * 1e3);
                let top = reply.body.get_field("epoch").and_then(uint_of);
                let Some(top) = top else {
                    out.errors += 1;
                    continue;
                };
                out.epochs.insert(top);
                let items = match reply.body.get_field("items") {
                    Some(Value::Seq(items)) if items.len() == batch_size => items,
                    _ => {
                        out.errors += 1;
                        continue;
                    }
                };
                let pinned = items
                    .iter()
                    .all(|i| i.get_field("epoch").and_then(uint_of) == Some(top));
                if !pinned {
                    out.mixed += 1;
                }
                if items.iter().any(|i| i.get_field("error").is_some()) {
                    out.errors += 1;
                }
            }
        }
    }
    out
}

/// Phases 1–2: baseline and saturation against one daemon while the
/// mutator storm republishes underneath.
#[allow(clippy::too_many_arguments)]
fn serving_phases(
    models: usize,
    n_single: usize,
    conns: usize,
    frames: usize,
    batch_size: usize,
    distinct: usize,
) -> (Run, Run, u64, usize, u64, u64, f64, f64) {
    let (engine, victim) = build_engine(models);
    let handle = Arc::new(
        Daemon::serve(
            engine,
            DaemonConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: conns,
                queue_depth: conns * 8,
                tenants: None,
            },
        )
        .expect("daemon starts"),
    );
    let addr = handle.addr();
    let texts = Arc::new(workload(models, distinct));

    // Mutator storm: unregister the zoo victim (one publish), then
    // reindex it from the repository (another publish) — two epoch
    // bumps per cycle, throttled so the storm shares the machine with
    // serving instead of monopolizing it.
    let stop = Arc::new(AtomicBool::new(false));
    let storm = {
        let handle = Arc::clone(&handle);
        let stop = Arc::clone(&stop);
        let victim = victim.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                handle
                    .with_engine(|e| e.apply(MutationBatch::new().unregister(victim.clone())))
                    .expect("unregister applies");
                handle
                    .with_engine(|e| e.index_existing())
                    .expect("reindex succeeds");
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        })
    };

    let mut probe = Client::connect(addr).expect("connect");
    let epoch_start = epoch_of(&mut probe);
    // Warm-up: prime the plan cache and the daemon's thread pool.
    for i in 0..distinct * 2 {
        probe.query(&texts[i % texts.len()]).expect("warmup query");
    }

    // Phase 1: one interactive connection, one query per round trip.
    let mut errors = 0u64;
    let mut single_lat = Vec::with_capacity(n_single);
    let started = Instant::now();
    for i in 0..n_single {
        let t0 = Instant::now();
        match probe.query(&texts[i % texts.len()]) {
            Ok(reply) if reply.ok => single_lat.push(t0.elapsed().as_secs_f64() * 1e3),
            _ => errors += 1,
        }
    }
    let single_elapsed = started.elapsed().as_secs_f64();
    let single = Run {
        connections: 1,
        frames: n_single,
        queries: n_single,
        elapsed_s: single_elapsed,
        queries_per_sec: n_single as f64 / single_elapsed,
        frame_p50_ms: pctl(&mut single_lat, 0.50),
        frame_p99_ms: pctl(&mut single_lat, 0.99),
    };

    // Phase 2: `conns` connections pipelining batch frames.
    let barrier = Arc::new(Barrier::new(conns + 1));
    let workers: Vec<_> = (0..conns)
        .map(|w| {
            let texts = Arc::clone(&texts);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                saturation_worker(addr, texts, barrier, frames, batch_size, w * 7)
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    let outcomes: Vec<SatOutcome> = workers
        .into_iter()
        .map(|w| w.join().expect("worker joins"))
        .collect();
    let sat_elapsed = started.elapsed().as_secs_f64();

    let mut sat_lat: Vec<f64> = Vec::new();
    let mut mixed = 0u64;
    let mut epochs = BTreeSet::new();
    for o in &outcomes {
        sat_lat.extend_from_slice(&o.latencies);
        errors += o.errors;
        mixed += o.mixed;
        epochs.extend(o.epochs.iter().copied());
    }
    let sat_queries = conns * frames * batch_size;
    let saturated = Run {
        connections: conns,
        frames: conns * frames,
        queries: sat_queries,
        elapsed_s: sat_elapsed,
        queries_per_sec: sat_queries as f64 / sat_elapsed,
        frame_p50_ms: pctl(&mut sat_lat, 0.50),
        frame_p99_ms: pctl(&mut sat_lat, 0.99),
    };

    stop.store(true, Ordering::SeqCst);
    storm.join().expect("storm joins");
    let epoch_end = epoch_of(&mut probe);
    let metrics = probe.metrics().expect("metrics");
    let quantile = |q: &str| -> f64 {
        metrics
            .body
            .get_field("latency")
            .and_then(|l| l.get_field(sommelier_serving::daemon::REQUEST_HISTOGRAM))
            .and_then(|h| h.get_field(q))
            .and_then(float_of)
            .unwrap_or(0.0)
    };
    let (server_p50, server_p99) = (quantile("p50_ms"), quantile("p99_ms"));
    drop(probe);

    handle.shutdown();
    match Arc::try_unwrap(handle) {
        Ok(h) => h.wait(),
        Err(_) => panic!("daemon handle still shared after storm join"),
    }
    (
        single,
        saturated,
        epoch_end - epoch_start,
        epochs.len(),
        mixed,
        errors,
        server_p50,
        server_p99,
    )
}

/// Phase 3: over-admission against a deliberately tiny gate.
fn shed_phase(models: usize) -> ShedRun {
    let (workers, queue_depth, probes) = (1usize, 2usize, 6usize);
    let (engine, _) = build_engine(models);
    let handle = Daemon::serve(
        engine,
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_depth,
            tenants: None,
        },
    )
    .expect("daemon starts");
    let addr = handle.addr();

    // The blocker occupies the single worker with one long batch of
    // distinct (uncacheable-by-repeat) queries...
    let blocker_texts: Vec<String> = (0..3000)
        .map(|i| {
            let reference = format!("hub/family-{:02}/model-{:05}", (i * 53) % 37, (i * 53) % models);
            format!("SELECT models 3 CORR {reference} WITHIN {:.4} ORDER BY similarity", 0.2 + (i % 500) as f64 * 0.001)
        })
        .collect();
    let done = Arc::new(AtomicBool::new(false));
    let shed_total = Arc::new(AtomicU64::new(0));
    let min_retry = Arc::new(AtomicU64::new(u64::MAX));
    let blocker = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let reply = client.query_batch(&blocker_texts).expect("blocker batch");
            assert!(reply.ok, "blocker batch must execute");
            done.store(true, Ordering::SeqCst);
        })
    };
    // ...while 6 probes burst single queries: with capacity
    // workers + queue_depth = 3, at least 3 of them must shed.
    let probe_threads: Vec<_> = (0..probes)
        .map(|_| {
            let done = Arc::clone(&done);
            let shed_total = Arc::clone(&shed_total);
            let min_retry = Arc::clone(&min_retry);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                while !done.load(Ordering::SeqCst) {
                    let reply = client
                        .query("SELECT models 3 CORR hub/family-00/model-00000 WITHIN 0.3 ORDER BY similarity")
                        .expect("probe frame");
                    if !reply.ok {
                        assert_eq!(
                            reply.error_code(),
                            Some("overloaded"),
                            "only typed load-shed errors are acceptable"
                        );
                        let retry = reply.retry_after_ms().expect("shed carries retry hint");
                        assert!(retry > 0, "retry_after_ms must be positive");
                        shed_total.fetch_add(1, Ordering::SeqCst);
                        min_retry.fetch_min(retry, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
            })
        })
        .collect();
    blocker.join().expect("blocker joins");
    for p in probe_threads {
        p.join().expect("probe joins");
    }

    let mut client = Client::connect(addr).expect("connect");
    let metrics = client.metrics().expect("metrics");
    let max_inflight = counter_of(&metrics.body, "serve.max_inflight");
    let shed = shed_total.load(Ordering::SeqCst);
    drop(client);
    handle.shutdown();
    handle.wait();

    let capacity = workers + queue_depth;
    ShedRun {
        probes,
        workers,
        queue_depth,
        capacity,
        shed,
        max_inflight,
        min_retry_after_ms: min_retry.load(Ordering::SeqCst),
        queue_bounded: shed >= 1 && max_inflight <= capacity as u64,
    }
}

fn main() {
    let mode = std::env::var("SOMMELIER_PR9_MODE").unwrap_or_else(|_| "quick".into());
    let (models, n_single, frames, batch_size) = if mode == "full" {
        (10_000, 6_000, 120, 32)
    } else {
        (5_000, 3_000, 60, 32)
    };
    let conns = 8;
    let distinct = 48;

    let (single, saturated, republishes, epochs_seen, mixed, errors, server_p50, server_p99) =
        serving_phases(models, n_single, conns, frames, batch_size, distinct);
    let ratio = saturated.queries_per_sec / single.queries_per_sec;
    let row = |r: &Run| {
        vec![
            r.connections.to_string(),
            r.frames.to_string(),
            r.queries.to_string(),
            fmt(r.queries_per_sec, 0),
            fmt(r.frame_p50_ms, 3),
            fmt(r.frame_p99_ms, 3),
        ]
    };
    print_table(
        "PR 9: daemon throughput, 1 connection vs saturation",
        &["conns", "frames", "queries", "q/s", "frame p50 ms", "frame p99 ms"],
        &[row(&single), row(&saturated)],
    );
    println!(
        "throughput ratio (gated >= 3): {}  republishes: {republishes}  epochs seen: {epochs_seen}",
        fmt(ratio, 2)
    );
    println!(
        "protocol errors (gated == 0): {errors}  mixed-epoch batches (gated == 0): {mixed}"
    );
    assert!(republishes > 0, "the mutator storm must republish");
    assert!(epochs_seen > 1, "batches must observe the epoch moving");

    let shed = shed_phase(models);
    print_table(
        "PR 9: over-admission against workers=1 queue_depth=2",
        &["probes", "capacity", "shed", "max inflight", "min retry ms"],
        &[vec![
            shed.probes.to_string(),
            shed.capacity.to_string(),
            shed.shed.to_string(),
            shed.max_inflight.to_string(),
            shed.min_retry_after_ms.to_string(),
        ]],
    );
    println!(
        "queue bounded (gated true): {} (shed >= 1, max_inflight <= {})",
        shed.queue_bounded, shed.capacity
    );

    write_json(
        "pr9_serve",
        &Bench {
            experiment: "pr9_serve",
            mode,
            models,
            batch_size,
            single,
            saturated,
            throughput_ratio: ratio,
            republishes,
            epochs_seen,
            mixed_epoch_batches: mixed,
            protocol_errors: errors,
            server_p50_ms: server_p50,
            server_p99_ms: server_p99,
            shed,
        },
    );
}
