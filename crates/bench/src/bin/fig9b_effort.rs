//! Figure 9(b): saving in time and manual effort.
//!
//! Three scenarios — model **D**esign, model **T**esting, and inference
//! **S**erving — are solved twice: by the manual procedure a user without
//! Sommelier runs (exhaustively load → execute → profile → compare every
//! repository model), and by one Sommelier query against a pre-built
//! index. Reported per scenario: wall-clock time ratio (paper: up to 30×)
//! and lines of code (paper: hundreds of script lines → <10 query lines).
//!
//! The manual baselines live in their own source files and their LoC are
//! counted from the actual source (`include_str!`), not estimated.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin fig9b_effort
//! ```

#[path = "../manual/mod.rs"]
mod manual;

use serde::Serialize;
use sommelier_bench::{print_table, timed, write_json};
use sommelier_graph::TaskKind;
use sommelier_query::{Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_tensor::Prng;
use sommelier_zoo::families::{Family, FamilyScale};
use sommelier_zoo::teacher::{DatasetBias, Teacher};
use std::sync::Arc;

#[derive(Serialize)]
struct Scenario {
    name: String,
    manual_seconds: f64,
    sommelier_seconds: f64,
    time_ratio: f64,
    manual_loc: usize,
    sommelier_loc: usize,
}

fn main() {
    // A repository of 40 models across sizes and families.
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 42);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.10);
    let repo = Arc::new(InMemoryRepository::new());
    let mut cfg = SommelierConfig::default();
    cfg.index.segments = false;
    let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);

    let mut rng = Prng::seed_from_u64(5);
    let families = [
        Family::Resnetish,
        Family::Vggish,
        Family::Mobilenetish,
        Family::Inceptionish,
    ];
    for i in 0..40usize {
        let family = families[i % families.len()];
        let t = (i / families.len()) as f64 / 9.0;
        let mut frng = rng.fork();
        let m = family.build_scaled(
            format!("{}-{i:02}", family.slug()),
            &teacher,
            &bias,
            &FamilyScale::new(1.3 - 0.8 * t, 3 + i % 3, 0.01 + 0.01 * t),
            &mut frng,
        );
        engine.register(&m).expect("fresh");
    }
    let reference = "resnetish-00";

    // ---- scenario runs ------------------------------------------------
    let scenarios: Vec<Scenario> = vec![
        {
            let (manual_pick, manual_s) =
                timed(|| manual::design::manual_model_design(repo.as_ref(), &teacher, 0.5));
            let ((), _) = ((), ());
            let (query_pick, query_s) = timed(|| {
                engine
                    .query(&format!(
                        "SELECT model CORR {reference} ON memory <= 50% WITHIN 0.2 ORDER BY similarity"
                    ))
                    .expect("query runs")
                    .first()
                    .map(|r| r.key.clone())
            });
            println!(
                "design:  manual pick {:?} in {:.2}s | sommelier pick {:?} in {:.4}s",
                manual_pick, manual_s, query_pick, query_s
            );
            Scenario {
                name: "design".into(),
                manual_seconds: manual_s,
                sommelier_seconds: query_s,
                time_ratio: manual_s / query_s.max(1e-9),
                manual_loc: loc(include_str!("../manual/design.rs")),
                sommelier_loc: 1,
            }
        },
        {
            let (manual_set, manual_s) =
                timed(|| manual::testing::manual_testing_ensemble(repo.as_ref(), reference, 4));
            let (query_set, query_s) = timed(|| {
                engine
                    .query(&format!(
                        "SELECT models 4 CORR {reference} WITHIN 0.3 ORDER BY similarity"
                    ))
                    .expect("query runs")
                    .len()
            });
            println!(
                "testing: manual ensemble of {} in {:.2}s | sommelier {} in {:.4}s",
                manual_set.len(),
                manual_s,
                query_set,
                query_s
            );
            Scenario {
                name: "testing".into(),
                manual_seconds: manual_s,
                sommelier_seconds: query_s,
                time_ratio: manual_s / query_s.max(1e-9),
                manual_loc: loc(include_str!("../manual/testing.rs")),
                sommelier_loc: 1,
            }
        },
        {
            let (manual_pick, manual_s) =
                timed(|| manual::serving::manual_serving_reselect(repo.as_ref(), &teacher, 0.4));
            let (query_pick, query_s) = timed(|| {
                engine
                    .query(&format!(
                        "SELECT model CORR {reference} ON flops <= 40% WITHIN 0.1 ORDER BY latency"
                    ))
                    .expect("query runs")
                    .first()
                    .map(|r| r.key.clone())
            });
            println!(
                "serving: manual pick {:?} in {:.2}s | sommelier pick {:?} in {:.4}s",
                manual_pick, manual_s, query_pick, query_s
            );
            Scenario {
                name: "serving".into(),
                manual_seconds: manual_s,
                sommelier_seconds: query_s,
                time_ratio: manual_s / query_s.max(1e-9),
                manual_loc: loc(include_str!("../manual/serving.rs")),
                sommelier_loc: 1,
            }
        },
    ];

    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{:.2}s", s.manual_seconds),
                format!("{:.4}s", s.sommelier_seconds),
                format!("{:.0}x", s.time_ratio),
                format!("{}", s.manual_loc),
                format!("{}", s.sommelier_loc),
            ]
        })
        .collect();
    print_table(
        "Figure 9(b): manual profiling vs Sommelier query",
        &["Scenario", "Manual time", "Query time", "Speedup", "Manual LoC", "Query LoC"],
        &rows,
    );
    println!("\n(paper: up to 30x profiling-time reduction; hundreds of LoC → <10)");
    write_json("fig9b_effort", &scenarios);
}

/// Non-empty, non-comment source lines.
fn loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}
