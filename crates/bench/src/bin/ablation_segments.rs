//! Ablation: segment-level vs whole-model-only equivalence.
//!
//! Transfer-derived models target *different tasks* than their base, so
//! the whole-model I/O check rejects the pair outright — only the
//! segment analysis (paper Section 4.2) can surface their relationship
//! and record synthesized candidates. This ablation indexes a base model
//! plus its transferred descendants with segment analysis on and off and
//! counts the cross-task relations each configuration discovers.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin ablation_segments
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, write_json};
use sommelier_index::CandidateKind;
use sommelier_query::{Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_zoo::series::transfer_suite;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    segments_enabled: bool,
    whole_records: usize,
    synthesized_records: usize,
    cross_task_relations: usize,
}

fn count(engine: &Sommelier, keys: &[String]) -> (usize, usize) {
    let mut whole = 0usize;
    let mut synth = 0usize;
    for k in keys {
        for c in engine.semantic_index().candidates_of(k) {
            match c.kind {
                CandidateKind::Synthesized { .. } => synth += 1,
                _ => whole += 1,
            }
        }
    }
    (whole, synth)
}

fn main() {
    let (base, derived) = transfer_suite(2024);
    let keys: Vec<String> = std::iter::once(base.name.clone())
        .chain(derived.iter().map(|m| m.name.clone()))
        .collect();

    let mut results = Vec::new();
    for segments in [false, true] {
        let repo = Arc::new(InMemoryRepository::new());
        let mut cfg = SommelierConfig {
            validation_rows: 192,
            ..SommelierConfig::default()
        };
        cfg.index.segments = segments;
        cfg.index.sample_size = 16;
        cfg.segment_epsilon = 0.35;
        let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);
        engine.register(&base).expect("fresh");
        for m in &derived {
            engine.register(m).expect("fresh");
        }
        let (whole, synth) = count(&engine, &keys);
        // Cross-task relations: candidates linking models of different
        // tasks — only synthesized records can do that here, since the
        // I/O check rejects whole-model comparison across tasks.
        let mut cross = 0usize;
        for k in &keys {
            let task_of = |key: &str| {
                std::iter::once(&base)
                    .chain(derived.iter())
                    .find(|m| m.name == *key)
                    .map(|m| m.task)
            };
            let own_task = task_of(k);
            for c in engine.semantic_index().candidates_of(k) {
                let donor = match &c.kind {
                    CandidateKind::Synthesized { donor } => donor.clone(),
                    _ => c.key.clone(),
                };
                if task_of(&donor).is_some() && task_of(&donor) != own_task {
                    cross += 1;
                }
            }
        }
        println!(
            "segments {}: {} whole records, {} synthesized, {} cross-task relations",
            if segments { "ON " } else { "OFF" },
            whole,
            synth,
            cross
        );
        results.push(Row {
            segments_enabled: segments,
            whole_records: whole,
            synthesized_records: synth,
            cross_task_relations: cross,
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                if r.segments_enabled { "on" } else { "off" }.to_string(),
                r.whole_records.to_string(),
                r.synthesized_records.to_string(),
                r.cross_task_relations.to_string(),
            ]
        })
        .collect();
    print_table(
        "Ablation: segment analysis on/off over a transfer-linked repository",
        &["Segments", "Whole records", "Synthesized", "Cross-task"],
        &rows,
    );
    let off = &results[0];
    let on = &results[1];
    println!(
        "\nsegment analysis finds {} cross-task relations; whole-model-only finds {} — \
         the capability the paper claims no prior work has",
        on.cross_task_relations, off.cross_task_relations
    );
    write_json("ablation_segments", &results);
}
