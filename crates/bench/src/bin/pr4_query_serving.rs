//! PR 4 performance gate: the lock-free snapshot query path under a
//! closed-loop serving workload.
//!
//! Two halves, two acceptance bars:
//!
//! 1. **Batched query throughput.** A frozen fleet is indexed once and
//!    the snapshot restored into two engines over the same repository:
//!
//!    * **baseline** — 1 lane, `query_cache_cap = 0`: the pre-PR
//!      behavior, every query parses, plans, and runs both index
//!      filters;
//!    * **tuned** — 8 lanes, plan/result cache on: the production
//!      serving shape, where a bounded set of query texts repeats
//!      (dashboards, serving loops, retried requests) and the
//!      epoch-keyed cache answers repeats without re-execution.
//!
//!    The workload rotates a fixed set of distinct texts for many
//!    rounds through `query_batch`; the gate is tuned throughput ≥ 3×
//!    baseline. The binary additionally asserts that lanes 1, 4, and 8
//!    return **byte-identical** result sets on the frozen snapshot.
//!
//! 2. **Engine-backed model switching.** The Figure 9(c) serving
//!    simulation, but with the switching decision made per request by a
//!    live [`EngineSwitcher`] querying the engine under the observed
//!    backlog (instead of a precomputed variant table). The gate is a
//!    ≥ 4× p90 tail-latency cut over the fixed-model baseline.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin pr4_query_serving
//! # SOMMELIER_PR4_MODE=full for a larger fleet and longer workload
//! ```

use serde::Serialize;
use sommelier_bench::{fmt, print_table, timed, write_json};
use sommelier_graph::{Model, TaskKind};
use sommelier_query::{Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_runtime::execute;
use sommelier_runtime::metrics::{latency, top1_accuracy};
use sommelier_serving::{simulate, simulate_with, ClusterConfig, EngineSwitcher, ModelChoice, Policy, Workload};
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::families::Family;
use sommelier_zoo::series::build_series;
use std::sync::Arc;

#[derive(Serialize)]
struct ThroughputRun {
    lanes: usize,
    cache_cap: usize,
    queries: usize,
    seconds: f64,
    queries_per_sec: f64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    batch_latency_p50_ms: f64,
    batch_latency_p90_ms: f64,
    batch_latency_p99_ms: f64,
}

#[derive(Serialize)]
struct ServingReport {
    requests: usize,
    fixed_p90_ms: f64,
    switching_p90_ms: f64,
    p90_cut: f64,
    fixed_accuracy: f64,
    switching_accuracy: f64,
    served_epoch: u64,
}

#[derive(Serialize)]
struct Bench {
    experiment: &'static str,
    mode: String,
    baseline: ThroughputRun,
    tuned: ThroughputRun,
    batch_speedup: f64,
    identical_across_lanes: bool,
    serving: ServingReport,
}

fn fleet(n_series: usize) -> Vec<Model> {
    let families = [
        Family::Bitish,
        Family::Efficientnetish,
        Family::Resnetish,
        Family::Mobilenetish,
        Family::Vggish,
        Family::Inceptionish,
    ];
    let mut rng = Prng::seed_from_u64(2024);
    let mut models = Vec::new();
    for i in 0..n_series {
        let family = families[i % families.len()];
        let series = build_series(
            &format!("{}-v{}", family.slug(), i / families.len() + 1),
            family,
            TaskKind::ImageRecognition,
            "imagenet",
            5,
            2024,
            0.12,
            &mut rng,
        );
        models.extend(series.models);
    }
    models
}

fn engine_config(jobs: usize, query_cache_cap: usize) -> SommelierConfig {
    let mut cfg = SommelierConfig {
        validation_rows: 64,
        jobs,
        query_cache_cap,
        ..SommelierConfig::default()
    };
    cfg.index.sample_size = 12;
    cfg.index.segments = false;
    cfg
}

/// Canonical rendering of a batch's result sets, for byte-identity
/// comparison across lane counts.
fn render_batch(items: &[sommelier_query::BatchQueryItem]) -> String {
    let mut out = String::new();
    for item in items {
        match &item.results {
            Ok(results) => {
                for r in results {
                    out.push_str(&format!(
                        "{}|{:?}|{:?}|{:?};",
                        r.key, r.score, r.diff_bound, r.profile.memory_mb
                    ));
                }
            }
            Err(e) => out.push_str(&format!("err:{e};")),
        }
        out.push('\n');
    }
    out
}

/// Run the repeated-text workload through `query_batch` on one engine
/// configuration restored from `snapshot_path`.
fn throughput_run(
    repo: &Arc<InMemoryRepository>,
    snapshot_path: &std::path::Path,
    lanes: usize,
    cache_cap: usize,
    distinct: &[String],
    workload: &[String],
) -> (ThroughputRun, String) {
    let engine = Sommelier::connect_with_indices(
        Arc::clone(repo) as Arc<dyn ModelRepository>,
        engine_config(lanes, cache_cap),
        snapshot_path,
    )
    .expect("snapshot restores");
    let reader = engine.reader().with_pool(lanes);
    // One untimed round over the distinct texts: the measured regime is
    // steady-state serving, where the bounded text set has already been
    // seen once. (With the cache disabled this is a plain warm-up.)
    std::hint::black_box(reader.query_batch(distinct));
    sommelier_runtime::metrics::reset();
    let (items, seconds) = timed(|| reader.query_batch(workload));
    assert!(items.iter().all(|i| i.results.is_ok()), "queries succeed");
    let q = latency::quantiles("query.batch.latency_ms").expect("batch recorded");
    let stats = reader.plan_cache_stats();
    let rendered = render_batch(&items);
    (
        ThroughputRun {
            lanes,
            cache_cap,
            queries: workload.len(),
            seconds,
            queries_per_sec: workload.len() as f64 / seconds,
            plan_cache_hits: stats.hits,
            plan_cache_misses: stats.misses,
            batch_latency_p50_ms: q.p50,
            batch_latency_p90_ms: q.p90,
            batch_latency_p99_ms: q.p99,
        },
        rendered,
    )
}

/// The Figure 9(c) serving comparison, with the switching decision made
/// by a live engine query per request.
fn serving_half(mode: &str) -> ServingReport {
    let repo = Arc::new(InMemoryRepository::new());
    let mut engine = Sommelier::connect(
        Arc::clone(&repo) as Arc<dyn ModelRepository>,
        engine_config(0, 1024),
    );
    let mut rng = Prng::seed_from_u64(11);
    let series = build_series(
        "servenet",
        Family::Resnetish,
        TaskKind::ImageRecognition,
        "imagenet",
        6,
        2024,
        0.08,
        &mut rng,
    );
    for m in &series.models {
        engine.register(m).expect("fresh");
    }
    let reference = &series.models.last().expect("non-empty").name;

    // Variant table (as the serving integration would assemble it from
    // one discovery query): service time ∝ compute, anchored at 80 ms
    // for the largest; accuracy measured on a validation probe.
    let equivalents = engine
        .query(&format!(
            "SELECT models 10 CORR {reference} WITHIN 0.3 ORDER BY latency"
        ))
        .expect("query runs");
    let teacher = sommelier_zoo::teacher::Teacher::for_task(TaskKind::ImageRecognition, 2024);
    let mut prng = Prng::seed_from_u64(5);
    let probe = Tensor::gaussian(300, teacher.spec.input_width, 1.0, &mut prng);
    let labels = teacher.labels(&probe);
    let mut keys: Vec<String> = equivalents
        .iter()
        .filter(|r| !matches!(r.kind, sommelier_index::CandidateKind::Synthesized { .. }))
        .map(|r| r.key.clone())
        .collect();
    keys.push(reference.clone());
    keys.dedup();
    let gflops_of = |k: &str| engine.resource_index().profile_of(k).expect("profiled").gflops;
    let max_gflops = keys.iter().map(|k| gflops_of(k)).fold(0.0f64, f64::max);
    let mut variants: Vec<ModelChoice> = keys
        .iter()
        .map(|k| {
            let model = repo.load(k).expect("stored");
            let out = execute(&model, &probe).expect("runs");
            ModelChoice {
                name: k.clone(),
                service_time_s: 0.002 + 0.078 * gflops_of(k) / max_gflops,
                accuracy: top1_accuracy(&out, &labels),
            }
        })
        .collect();
    variants.sort_by(|a, b| a.service_time_s.partial_cmp(&b.service_time_s).expect("finite"));
    let biggest = variants.len() - 1;

    // Bursty load at ~92% utilization of the big-model server.
    let capacity = 1.0 / variants[biggest].service_time_s;
    let duration = if mode == "full" { 240.0 } else { 120.0 };
    let workload = Workload::bursty(duration, 0.35 * capacity, 0.92 * capacity);
    let mut arng = Prng::seed_from_u64(3);
    let arrivals = workload.arrivals(&mut arng);
    let sla = 1.2 * variants[biggest].service_time_s;

    let fixed = simulate(
        &ClusterConfig {
            servers: 1,
            policy: Policy::Fixed { index: biggest },
        },
        &arrivals,
        &variants,
    );
    // The closed loop: every request queries the live engine under its
    // observed backlog. The switcher's query text is fixed, so the
    // engine's plan/result cache serves every request after the first.
    let switcher = EngineSwitcher::new(engine.reader().clone(), reference, sla, 0.3);
    let epoch_before = switcher.served_epoch();
    let switching = simulate_with(1, &arrivals, &variants, |backlog| {
        switcher.choose(backlog, &variants)
    });
    assert_eq!(
        switcher.served_epoch(),
        epoch_before,
        "frozen engine must keep serving one epoch"
    );

    let fixed_p90 = fixed.stats().p90 * 1e3;
    let switching_p90 = switching.stats().p90 * 1e3;
    ServingReport {
        requests: arrivals.len(),
        fixed_p90_ms: fixed_p90,
        switching_p90_ms: switching_p90,
        p90_cut: fixed_p90 / switching_p90,
        fixed_accuracy: fixed.mean_accuracy,
        switching_accuracy: switching.mean_accuracy,
        served_epoch: epoch_before,
    }
}

fn main() {
    let mode = std::env::var("SOMMELIER_PR4_MODE").unwrap_or_else(|_| "smoke".into());
    let (n_series, distinct, rounds) = match mode.as_str() {
        "full" => (12, 24, 30),
        _ => (8, 20, 20),
    };

    // --- Half 1: batched query throughput on a frozen snapshot. ---
    let models = fleet(n_series);
    let repo = Arc::new(InMemoryRepository::new());
    for m in &models {
        repo.publish(&m.name, m, true).expect("publish");
    }
    let mut builder = Sommelier::connect(
        Arc::clone(&repo) as Arc<dyn ModelRepository>,
        engine_config(0, 0),
    );
    let indexed = builder.index_existing().expect("index");
    assert_eq!(indexed, models.len());
    let snapshot_path = std::env::temp_dir().join(format!(
        "sommelier-pr4-{}.index.json",
        std::process::id()
    ));
    builder.save_indices(&snapshot_path).expect("save snapshot");
    drop(builder);

    // A bounded set of distinct texts, rotated for many rounds — the
    // serving-loop shape the plan/result cache exists for.
    // Wide-open predicates admit every sampled candidate, so an
    // uncached execution pays the full semantic-filter + resource-probe
    // + ranking cost.
    let texts: Vec<String> = (0..distinct)
        .map(|i| {
            let reference = &models[(i * 7) % models.len()].name;
            format!(
                "SELECT models 10 CORR {reference} ON memory <= 500% WITHIN 0.0 ORDER BY similarity"
            )
        })
        .collect();
    let workload: Vec<String> = (0..rounds).flat_map(|_| texts.iter().cloned()).collect();
    println!(
        "pr4_query_serving [{mode}]: {} models, {} queries ({} distinct × {} rounds)",
        models.len(),
        workload.len(),
        distinct,
        rounds
    );

    let (baseline, base_rendered) =
        throughput_run(&repo, &snapshot_path, 1, 0, &texts, &workload);
    let (tuned, tuned_rendered) =
        throughput_run(&repo, &snapshot_path, 8, 4096, &texts, &workload);
    assert_eq!(
        base_rendered, tuned_rendered,
        "cached batched results diverged from the uncached reference"
    );
    assert!(tuned.plan_cache_hits > 0, "repeated texts must hit the cache");

    // Byte-identity across lane counts on the frozen snapshot.
    let engine = Sommelier::connect_with_indices(
        Arc::clone(&repo) as Arc<dyn ModelRepository>,
        engine_config(0, 4096),
        &snapshot_path,
    )
    .expect("snapshot restores");
    let per_lane: Vec<String> = [1usize, 4, 8]
        .iter()
        .map(|&lanes| render_batch(&engine.reader().with_pool(lanes).query_batch(&texts)))
        .collect();
    let identical_across_lanes = per_lane.windows(2).all(|w| w[0] == w[1]);
    assert!(
        identical_across_lanes,
        "query_batch must be byte-identical at lanes 1/4/8"
    );
    std::fs::remove_file(&snapshot_path).ok();

    let batch_speedup = tuned.queries_per_sec / baseline.queries_per_sec;
    let row = |r: &ThroughputRun| {
        vec![
            format!("lanes={} cap={}", r.lanes, r.cache_cap),
            format!("{}", r.queries),
            fmt(r.seconds, 3),
            fmt(r.queries_per_sec, 0),
            format!("{}/{}", r.plan_cache_hits, r.plan_cache_hits + r.plan_cache_misses),
            fmt(r.batch_latency_p50_ms, 3),
            fmt(r.batch_latency_p90_ms, 3),
            fmt(r.batch_latency_p99_ms, 3),
        ]
    };
    print_table(
        "PR 4: batched query throughput (frozen snapshot, repeated texts)",
        &[
            "config", "queries", "secs", "q/s", "cache", "p50 ms", "p90 ms", "p99 ms",
        ],
        &[row(&baseline), row(&tuned)],
    );
    println!(
        "\nbatch speedup: {batch_speedup:.2}x (identical across lanes 1/4/8: {identical_across_lanes})"
    );

    // --- Half 2: engine-backed switching vs fixed model. ---
    let serving = serving_half(&mode);
    print_table(
        "PR 4: serving tail latency (engine-backed switching)",
        &["policy", "p90 ms", "accuracy"],
        &[
            vec![
                "fixed (largest)".into(),
                fmt(serving.fixed_p90_ms, 1),
                fmt(serving.fixed_accuracy, 3),
            ],
            vec![
                "engine switching".into(),
                fmt(serving.switching_p90_ms, 1),
                fmt(serving.switching_accuracy, 3),
            ],
        ],
    );
    println!(
        "\np90 cut: {:.2}x over {} requests (served epoch {})",
        serving.p90_cut, serving.requests, serving.served_epoch
    );

    write_json(
        "pr4_query_serving",
        &Bench {
            experiment: "pr4_query_serving",
            mode,
            baseline,
            tuned,
            batch_speedup,
            identical_across_lanes,
            serving,
        },
    );
}
