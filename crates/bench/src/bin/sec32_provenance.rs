//! Section 3.2 provenance analysis: model correlation in common
//! repositories.
//!
//! The paper examines 120 popular models and finds each trained on one of
//! only 4 distinct datasets, with a common structure (the ResNet block)
//! transferred into 50+ models. This binary reports the same statistics
//! for the reproduction's TF-Hub-style catalog: dataset concentration,
//! shared-base counts, and shared-structure counts.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin sec32_provenance
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, write_json};
use sommelier_graph::OpKind;
use sommelier_zoo::series::{catalog_model_count, tfhub_catalog};
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Provenance {
    models: usize,
    series: usize,
    distinct_datasets: usize,
    models_on_most_common_dataset: usize,
    models_with_residual_blocks: usize,
    largest_shared_base_family: usize,
}

fn main() {
    let catalog = tfhub_catalog(2024);
    let models = catalog_model_count(&catalog);

    let mut by_dataset: BTreeMap<&str, usize> = BTreeMap::new();
    let mut by_family: BTreeMap<&str, usize> = BTreeMap::new();
    let mut residual_models = 0usize;
    for series in &catalog {
        for m in &series.models {
            *by_dataset.entry(series.dataset.as_str()).or_default() += 1;
            *by_family
                .entry(m.metadata.get("family").map(|s| s.as_str()).unwrap_or("?"))
                .or_default() += 1;
            // "Residual block" idiom: an Add operator merging branches.
            let has_residual = m
                .layers()
                .iter()
                .any(|l| l.op.kind() == OpKind::MultiSource && l.op.type_tag() == "add");
            residual_models += usize::from(has_residual);
        }
    }

    let rows: Vec<Vec<String>> = by_dataset
        .iter()
        .map(|(d, n)| vec![d.to_string(), n.to_string()])
        .collect();
    print_table("Models per training dataset", &["Dataset", "Models"], &rows);
    let rows: Vec<Vec<String>> = by_family
        .iter()
        .map(|(f, n)| vec![f.to_string(), n.to_string()])
        .collect();
    print_table("Models per architectural family", &["Family", "Models"], &rows);

    let p = Provenance {
        models,
        series: catalog.len(),
        distinct_datasets: by_dataset.len(),
        models_on_most_common_dataset: by_dataset.values().copied().max().unwrap_or(0),
        models_with_residual_blocks: residual_models,
        largest_shared_base_family: by_family.values().copied().max().unwrap_or(0),
    };
    println!(
        "\n{} models / {} series; {} distinct datasets (most popular covers {} models)",
        p.models, p.series, p.distinct_datasets, p.models_on_most_common_dataset
    );
    println!(
        "residual (ResNet-style) blocks appear in {} models; the largest shared family spans {}",
        p.models_with_residual_blocks, p.largest_shared_base_family
    );
    println!("(paper: 120 models / 4 datasets; a ResNet block transfers into 50+ models)");
    write_json("sec32_provenance", &p);
}
