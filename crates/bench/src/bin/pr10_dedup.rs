//! PR 10 storage gate: family-aware delta storage.
//!
//! Three halves, three acceptance bars:
//!
//! 1. **Size cut.** Several fine-tune families (a base model plus
//!    sparse fine-tunes carrying `metadata["base"]`) are published flat,
//!    then migrated in place with `dedup_store`. The gate is a ≥ 3×
//!    cut in model-storage bytes: shared chunks dedup across the
//!    family, and each fine-tune stores only its sparse delta.
//!
//! 2. **Load-back identity.** Every model loaded after migration must
//!    serialize byte-identically (via `serde_model::to_json`) to its
//!    pre-migration flat load — chunked reconstruction is transparent.
//!
//! 3. **Crash sweep.** A chunked publish plus a delta publish are
//!    crash-injected at *every* primitive storage op; after each crash
//!    a fresh reopen must list only loadable keys, each equal to its
//!    expected model. No crash point may tear the store.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin pr10_dedup
//! # SOMMELIER_PR10_MODE=full for more and larger families
//! ```

use serde::Serialize;
use sommelier_bench::{fmt, print_table, write_json};
use sommelier_fault::{FaultPlan, FaultyStorage, StdStorage, Storage};
use sommelier_graph::{serde_model, Model, ModelBuilder, TaskKind};
use sommelier_repo::{dedup_store, ModelRepository, OnDiskRepository};
use sommelier_tensor::{Prng, Shape, Tensor};
use sommelier_zoo::families::{Family, FamilyScale};
use sommelier_zoo::finetune::finetune_family;
use sommelier_zoo::teacher::{DatasetBias, Teacher};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

#[derive(Serialize)]
struct Bench {
    experiment: &'static str,
    mode: String,
    families: usize,
    models: usize,
    full_manifests: usize,
    delta_manifests: usize,
    bytes_flat: u64,
    bytes_chunked: u64,
    /// `bytes_flat / bytes_chunked` — gated ≥ 3.0 by bench.sh.
    size_cut_ratio: f64,
    /// Post-migration loads serialize byte-identically to their flat
    /// pre-migration loads — gated by bench.sh.
    loadback_identical: bool,
    crash_ops: usize,
    /// Every crash point reopens to a consistent, fully loadable
    /// store — gated by bench.sh.
    crash_sweep_green: bool,
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sommelier-pr10-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Base models for the fine-tune families: one per architecture family,
/// so chunks dedup within a family but not across.
fn base_models(n: usize) -> Vec<Model> {
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 61);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
    let mut rng = Prng::seed_from_u64(17);
    let families = [
        Family::Resnetish,
        Family::Mobilenetish,
        Family::Vggish,
        Family::Efficientnetish,
        Family::Bitish,
        Family::Inceptionish,
    ];
    (0..n)
        .map(|i| {
            let fam = families[i % families.len()];
            let mut frng = rng.fork();
            fam.build_scaled(
                format!("{}-base{i}", fam.slug()),
                &teacher,
                &bias,
                &FamilyScale::new(0.75, 3, 0.01),
                &mut frng,
            )
        })
        .collect()
}

/// Tiny deterministic model pair for the crash sweep: a base and a
/// one-element fine-tune of it, so each sweep iteration is cheap.
fn sweep_pair() -> (Model, Model) {
    let base = ModelBuilder::new("fam/base", TaskKind::Other, Shape::vector(4))
        .dense(3, &mut Prng::seed_from_u64(23))
        .build()
        .unwrap();
    let mut ft = base.renamed("fam/ft");
    let id = ft.linear_layers()[0];
    let mut p = ft.layer(id).params.clone();
    let w = p.weight.as_ref().unwrap();
    let mut data = w.as_slice().to_vec();
    data[0] += 0.25;
    p.weight = Some(Tensor::from_vec(w.rows(), w.cols(), data));
    ft.set_params(id, p).unwrap();
    (base, ft)
}

/// The crash-swept mutation: a chunked publish of a new base key plus a
/// delta publish against it. Errors are swallowed — mid-sequence
/// crashes are the point.
fn sweep_mutate(dir: &Path, storage: Arc<dyn Storage>, base: &Model, ft: &Model) {
    let Ok(repo) = OnDiskRepository::open_with(dir, Arc::clone(&storage)) else {
        return;
    };
    let _ = repo.publish_chunked("fam/base", base, false);
    let _ = repo.publish_delta("fam/ft", ft, "fam/base", false);
}

/// Crash the chunked publish path at every primitive op; after each
/// crash the store must reopen with every listed key loadable and equal
/// to its expected model. Returns `(ops, green)`.
fn crash_sweep() -> (usize, bool) {
    let (base, ft) = sweep_pair();
    let flat = ModelBuilder::new("old/flat", TaskKind::Other, Shape::vector(4))
        .dense(2, &mut Prng::seed_from_u64(29))
        .build()
        .unwrap();
    let expected: BTreeMap<&str, &Model> =
        [("old/flat", &flat), ("fam/base", &base), ("fam/ft", &ft)]
            .into_iter()
            .collect();

    // Fault-free run counts the ops the sweep must cover.
    let dir = scratch("sweep");
    let setup = |dir: &Path| {
        std::fs::remove_dir_all(dir).ok();
        let repo = OnDiskRepository::open(dir).unwrap();
        repo.publish("old/flat", &flat, false).unwrap();
    };
    setup(&dir);
    let counting = Arc::new(FaultyStorage::new(StdStorage, FaultPlan::count_only()));
    sweep_mutate(&dir, Arc::clone(&counting) as Arc<dyn Storage>, &base, &ft);
    let total_ops = counting.ops();

    let mut green = total_ops > 0;
    for crash_op in 0..total_ops {
        setup(&dir);
        let faulty = Arc::new(FaultyStorage::new(
            StdStorage,
            FaultPlan::crash_at(11, crash_op),
        ));
        sweep_mutate(&dir, Arc::clone(&faulty) as Arc<dyn Storage>, &base, &ft);
        if !faulty.is_dead() {
            eprintln!("crash point {crash_op} did not fire");
            green = false;
            continue;
        }
        // Fresh-process reopen: every listed key loads and matches.
        let repo = OnDiskRepository::open(&dir).unwrap();
        let keys = match repo.try_keys() {
            Ok(keys) => keys,
            Err(e) => {
                eprintln!("crash at op {crash_op}: listing failed: {e}");
                green = false;
                continue;
            }
        };
        for key in keys {
            match repo.load(&key) {
                Ok(m) => {
                    if expected.get(key.as_str()) != Some(&&m) {
                        eprintln!("crash at op {crash_op}: '{key}' loaded wrong model");
                        green = false;
                    }
                }
                Err(e) => {
                    eprintln!("crash at op {crash_op}: load '{key}': {e}");
                    green = false;
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    (total_ops as usize, green)
}

fn main() {
    let mode = std::env::var("SOMMELIER_PR10_MODE").unwrap_or_else(|_| "quick".into());
    let (n_families, variants) = if mode == "full" { (6, 8) } else { (3, 5) };

    // Publish the families flat.
    let dir = scratch("store");
    let repo = OnDiskRepository::open(&dir).unwrap();
    let mut rng = Prng::seed_from_u64(7);
    let mut keys = Vec::new();
    for base in base_models(n_families) {
        for m in finetune_family(&base, variants, 0.5, 0.05, 0.05, &mut rng) {
            repo.publish(&m.name.clone(), &m, false).unwrap();
            keys.push(m.name.clone());
        }
    }
    let flat_loads: BTreeMap<String, String> = keys
        .iter()
        .map(|k| (k.clone(), serde_model::to_json(&repo.load(k).unwrap())))
        .collect();

    // Migrate in place and compare load-backs.
    let stats = dedup_store(&repo).unwrap();
    let loadback_identical = keys
        .iter()
        .all(|k| serde_model::to_json(&repo.load(k).unwrap()) == flat_loads[k]);
    let size_cut_ratio = stats.size_cut();

    let (crash_ops, crash_sweep_green) = crash_sweep();

    let bench = Bench {
        experiment: "pr10_dedup",
        mode: mode.clone(),
        families: n_families,
        models: stats.models,
        full_manifests: stats.full,
        delta_manifests: stats.delta,
        bytes_flat: stats.bytes_before,
        bytes_chunked: stats.bytes_after,
        size_cut_ratio,
        loadback_identical,
        crash_ops,
        crash_sweep_green,
    };

    print_table(
        "PR 10: family-aware delta storage",
        &["metric", "value"],
        &[
            vec!["models".into(), bench.models.to_string()],
            vec!["full manifests".into(), bench.full_manifests.to_string()],
            vec!["delta manifests".into(), bench.delta_manifests.to_string()],
            vec!["flat bytes".into(), bench.bytes_flat.to_string()],
            vec!["chunked bytes".into(), bench.bytes_chunked.to_string()],
            vec!["size cut".into(), format!("{}x", fmt(size_cut_ratio, 2))],
            vec!["load-back identical".into(), loadback_identical.to_string()],
            vec!["crash ops swept".into(), crash_ops.to_string()],
            vec!["crash sweep green".into(), crash_sweep_green.to_string()],
        ],
    );
    write_json("pr10_dedup", &bench);
    std::fs::remove_dir_all(&dir).ok();
}
