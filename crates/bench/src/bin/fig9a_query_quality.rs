//! Figure 9(a): query quality — how often Sommelier returns the *ideal*
//! model.
//!
//! A repository of model variants is generated per *difference spread*
//! `s`: the variants' functional differences to the reference span
//! `[0, s]` (the paper sweeps the spread up to 10%). Each of 200 random
//! queries carries a memory budget; Sommelier returns the most similar
//! model within budget, and is judged against an exhaustive-profiling
//! oracle that knows every model's true difference (measured on a large
//! held-out dataset).
//!
//! Paper's claims: ≥95% ideal at a 10% spread, degrading to ~60% when all
//! models differ by at most ~4% — at that point candidates are nearly
//! identical, the index's measurement noise exceeds the gaps between
//! them, and the choice is essentially random (and harmless: we also
//! report the similarity regret of non-ideal answers).
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin fig9a_query_quality
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, write_json};
use sommelier_graph::TaskKind;
use sommelier_query::{Query, Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_runtime::execute;
use sommelier_runtime::metrics::qor_difference;
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::families::{Family, FamilyScale};
use sommelier_zoo::teacher::{DatasetBias, Teacher};
use std::sync::Arc;

#[derive(Serialize)]
struct Point {
    spread_pct: f64,
    realized_max_diff_pct: f64,
    ideal_fraction: f64,
    mean_regret_pct: f64,
    queries: usize,
}

/// Functional difference grows roughly linearly as the body narrows; this
/// slope (measured once on this zoo configuration) maps a target spread to
/// a width range.
const DIFF_PER_WIDTH_LOSS: f64 = 0.55;

fn main() {
    let spreads = [0.02f64, 0.04, 0.06, 0.08, 0.10];
    let variants_n = 10;
    let repo_seeds: [u64; 5] = [42, 43, 44, 45, 46];
    let queries_per_repo = 40;
    let queries_n = queries_per_repo * repo_seeds.len();
    let mut points = Vec::new();

    for &spread in &spreads {
        let mut total_hits = 0usize;
        let mut total_regret = 0.0f64;
        let mut realized_max = 0.0f64;
        for &repo_seed in &repo_seeds {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, repo_seed);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.08);
        let repo = Arc::new(InMemoryRepository::new());
        let mut cfg = SommelierConfig {
            validation_rows: 768,
            ..SommelierConfig::default()
        };
        cfg.index.segments = false; // whole-model quality is under test
        cfg.index.sample_size = 64; // small pool: analyze every pair
        let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);

        // Reference: the full-size model.
        let mut rng = Prng::seed_from_u64(repo_seed ^ 11);
        let reference = Family::Resnetish.build_scaled(
            "reference",
            &teacher,
            &bias,
            &FamilyScale::new(1.0, 4, 0.004),
            &mut rng,
        );
        engine.register(&reference).expect("fresh");

        // Variants: a monotone width ladder whose narrowest member lands
        // near the requested spread. Narrower → cheaper and less similar,
        // so each memory budget has a well-defined ideal answer.
        let width_min = (1.0 - spread / DIFF_PER_WIDTH_LOSS).max(0.3);
        let mut names = Vec::new();
        for i in 0..variants_n {
            let t = (i + 1) as f64 / variants_n as f64;
            let width = 1.0 - t * (1.0 - width_min);
            let mut vrng = Prng::seed_from_u64(repo_seed * 1000 + i as u64);
            let v = Family::Resnetish.build_scaled(
                format!("variant-{i:02}"),
                &teacher,
                &bias,
                &FamilyScale::new(width, 4, 0.004),
                &mut vrng,
            );
            engine.register(&v).expect("fresh");
            names.push(v.name.clone());
        }

        // Ground truth: differences measured on a large held-out set.
        let mut hrng = Prng::seed_from_u64(repo_seed ^ 777_000);
        let holdout = Tensor::gaussian(6_000, teacher.spec.input_width, 1.0, &mut hrng);
        let ref_out = execute(&reference, &holdout).expect("runs");
        let style = reference.task.output_style();
        let true_diff: Vec<f64> = names
            .iter()
            .map(|k| {
                let m = repo.load(k).expect("stored");
                let out = execute(&m, &holdout).expect("runs");
                qor_difference(style, &ref_out, &out)
            })
            .collect();
        realized_max = realized_max.max(true_diff.iter().cloned().fold(0.0f64, f64::max));
        let true_mem: Vec<f64> = names
            .iter()
            .map(|k| engine.resource_index().profile_of(k).expect("profiled").memory_mb)
            .collect();

        // Queries: random memory budgets spanning the variants' range.
        let mem_min = true_mem.iter().cloned().fold(f64::INFINITY, f64::min);
        let mem_max = true_mem.iter().cloned().fold(0.0f64, f64::max);
        let ref_mem = engine
            .resource_index()
            .profile_of("reference")
            .expect("profiled")
            .memory_mb;
        let mut qrng = Prng::seed_from_u64(repo_seed ^ 31_337);
        let mut ideal_hits = 0usize;
        let mut regret_sum = 0.0f64;
        for _ in 0..queries_per_repo {
            let budget = mem_min + (mem_max - mem_min) * qrng.uniform();
            let q = Query::corr("reference")
                .within(0.0)
                .memory_at_most_frac(budget / ref_mem);
            let got = engine.query_ast(&q).expect("query runs");
            let ideal = (0..names.len())
                .filter(|&i| true_mem[i] <= budget + 1e-9)
                .min_by(|&a, &b| true_diff[a].partial_cmp(&true_diff[b]).expect("finite"))
                .expect("budget spans the ladder");
            let top = got.first().expect("at least the smallest model fits");
            if top.key == names[ideal] {
                ideal_hits += 1;
            } else {
                let picked = names.iter().position(|n| *n == top.key).expect("known");
                regret_sum += (true_diff[picked] - true_diff[ideal]).max(0.0);
            }
        }

        total_hits += ideal_hits;
        total_regret += regret_sum;
        } // per-repo loop
        let frac = total_hits as f64 / queries_n as f64;
        let regret = total_regret / (queries_n - total_hits).max(1) as f64;
        println!(
            "spread {:>4.1}% (realized max diff {:>5.2}%): ideal {:>5.1}% of {} queries; mean regret of misses {:.2}%",
            spread * 100.0,
            realized_max * 100.0,
            frac * 100.0,
            queries_n,
            regret * 100.0,
        );
        points.push(Point {
            spread_pct: spread * 100.0,
            realized_max_diff_pct: realized_max * 100.0,
            ideal_fraction: frac,
            mean_regret_pct: regret * 100.0,
            queries: queries_n,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.spread_pct),
                format!("{:.1}%", p.realized_max_diff_pct),
                format!("{:.1}%", p.ideal_fraction * 100.0),
                format!("{:.2}%", p.mean_regret_pct),
            ]
        })
        .collect();
    print_table(
        "Figure 9(a): query output matching the ideal model",
        &["Spread", "Realized max diff", "Ideal fraction", "Miss regret"],
        &rows,
    );

    let wide = points.last().expect("non-empty");
    let narrow = &points[0];
    println!(
        "\nat ~10% spread: {:.0}% ideal (paper: >95%); at ~2% spread: {:.0}% (paper: ~60% at 4%)",
        wide.ideal_fraction * 100.0,
        narrow.ideal_fraction * 100.0
    );
    println!("non-ideal answers are near-ties: regret well under the spread in every setting");
    write_json("fig9a_query_quality", &points);
}
