//! Table 4: memory footprint of the index structures.
//!
//! The indices are populated with 10 / 100 / 1k / 10k / 100k model
//! records and their in-memory footprints reported in MB. The paper's
//! claim: the additional memory is negligible (tens of MB at 100K
//! models) because only metadata lives in memory — the models stay on
//! disk (Section 5.5).
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin table4_memory
//! ```

use serde::Serialize;
use sommelier_bench::{fmt, print_table, write_json};
use sommelier_graph::{Model, ModelBuilder, TaskKind};
use sommelier_index::footprint::{resource_footprint_bytes, semantic_footprint_bytes, to_mb};
use sommelier_index::lsh::LshConfig;
use sommelier_index::semantic::{PairAnalyzer, SemanticIndexConfig};
use sommelier_index::{ResourceIndex, SemanticIndex};
use sommelier_runtime::ResourceProfile;
use sommelier_tensor::{mix64, stable_hash64, Prng, Shape, Tensor};

struct SyntheticAnalyzer {
    seed: u64,
}

impl PairAnalyzer for SyntheticAnalyzer {
    fn whole_diff(&self, a: &Model, b: &Model) -> Option<f64> {
        // Deterministic per pair so parallel insertion stays reproducible.
        let pair = mix64(&[
            self.seed,
            stable_hash64(a.name.as_bytes()),
            stable_hash64(b.name.as_bytes()),
        ]);
        Some(Prng::seed_from_u64(pair).uniform() * 0.3)
    }
}

fn record_model(i: usize) -> Model {
    let mut w = Tensor::zeros(2, 2);
    w.set(0, 0, i as f32 + 1.0);
    w.set(1, 1, 1.0);
    ModelBuilder::new(format!("m{i:06}"), TaskKind::Other, Shape::vector(2))
        .dense_with(w, None)
        .build()
        .expect("valid")
}

#[derive(Serialize)]
struct Row {
    models: usize,
    resource_mb: f64,
    semantic_mb: f64,
}

fn main() {
    let sizes = [10usize, 100, 1_000, 10_000, 100_000];
    let mut results: Vec<Row> = Vec::new();

    for &n in &sizes {
        let mut rng = Prng::seed_from_u64(42);
        let mut resource = ResourceIndex::new(LshConfig::default(), 1);
        let mut semantic = SemanticIndex::new(
            SemanticIndexConfig {
                sample_size: 5,
                segments: false,
                max_candidates: 64,
            },
            1,
        );
        let analyzer = SyntheticAnalyzer { seed: 7 };
        let resolve = |k: &str| {
            let i: usize = k.trim_start_matches('m').parse().ok()?;
            Some(record_model(i))
        };
        for i in 0..n {
            let m = record_model(i);
            semantic.insert(&m, &resolve, &analyzer);
            resource.insert(
                &m.name,
                ResourceProfile {
                    memory_mb: rng.uniform() * 1000.0,
                    gflops: rng.uniform() * 20.0,
                    latency_ms: rng.uniform() * 100.0,
                },
            );
        }
        let row = Row {
            models: n,
            resource_mb: to_mb(resource_footprint_bytes(&resource)),
            semantic_mb: to_mb(semantic_footprint_bytes(&semantic)),
        };
        println!(
            "{n:>7} models: resource {:.4} MB, semantic {:.4} MB",
            row.resource_mb, row.semantic_mb
        );
        results.push(row);
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.models),
                fmt(r.resource_mb, 3),
                fmt(r.semantic_mb, 3),
            ]
        })
        .collect();
    print_table(
        "Table 4: memory footprint of the indices (MB)",
        &["# Models", "Resource", "Semantic"],
        &rows,
    );

    let last = results.last().expect("non-empty");
    println!(
        "\ntotal at 100K models: {:.1} MB — negligible next to model weights (paper: ~78 MB)",
        last.resource_mb + last.semantic_mb
    );
    write_json("table4_memory", &results);
}
