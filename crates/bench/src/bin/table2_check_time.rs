//! Table 2: time of the functional-equivalence check for large models.
//!
//! Four architectures at AlexNet / ResNet / VGG19 / BERT parameter scales
//! (62 / 60 / 143 / 340 million parameters in the paper) are each checked
//! against a lightly fine-tuned variant of themselves, timing the
//! whole-model analysis and the model-segment analysis separately. The
//! claim being reproduced: **both algorithms scale to very large models**
//! — time grows roughly linearly with parameter count and stays in the
//! tens of seconds even at BERT scale, fine for offline index building.
//!
//! By default the models are built at 1/4 of the paper's linear
//! dimensions (1/16 of the parameters) so the run completes in ~a minute
//! on one core; set `SOMMELIER_TABLE2_SCALE=1.0` for full paper scale.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin table2_check_time
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, timed, write_json};
use sommelier_equiv::assessment::assess_replacement;
use sommelier_equiv::whole::{assess_whole, EquivConfig};
use sommelier_graph::{Model, TaskKind};
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::embed::embed_model;
use sommelier_zoo::families::Family;
use sommelier_zoo::finetune::perturb_all;
use sommelier_zoo::teacher::{DatasetBias, TaskSpec, Teacher};

#[derive(Serialize)]
struct Row {
    model: String,
    params_millions: f64,
    whole_seconds: f64,
    segment_seconds: f64,
}

/// Paper-scale geometry per model: (family, body width factor, depth).
/// At scale 1.0 with input 4096 / hidden 2048 / 1000 classes these land on
/// ~61 / 61 / 142 / 341 million parameters.
const SPECS: [(&str, Family, f64, usize); 4] = [
    ("alexnetish", Family::Alexnetish, 1.0, 12),
    ("resnetish", Family::Resnetish, 1.0, 6),
    ("vgg19ish", Family::Vggish, 1.3, 17),
    ("bertish", Family::Bertish, 1.8075, 23),
];

fn build(family: Family, wf: f64, depth: usize, scale: f64, rng: &mut Prng) -> Model {
    let spec = TaskSpec {
        task: TaskKind::ImageRecognition,
        input_width: ((4096.0 * scale) as usize).max(32),
        hidden: ((2048.0 * scale) as usize).max(16),
        output_width: ((1000.0 * scale) as usize).max(8),
    };
    let teacher = Teacher::new(spec, 42);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.1);
    let embed = sommelier_zoo::families::FamilyScale::new(wf, depth, 0.005)
        .to_embed_spec(family.style(), spec.hidden);
    embed_model("big", &teacher, &bias, &embed, rng)
}

fn main() {
    let scale: f64 = std::env::var("SOMMELIER_TABLE2_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    println!("dimension scale: {scale} (set SOMMELIER_TABLE2_SCALE=1.0 for paper scale)");

    let probe_rows = 64;
    let cfg = EquivConfig::default();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (name, family, wf, depth) in SPECS {
        let mut rng = Prng::seed_from_u64(7);
        let model = build(family, wf, depth, scale, &mut rng);
        let params_m = model.param_count() as f64 / 1e6;
        let mut vrng = Prng::seed_from_u64(8);
        let variant = perturb_all(&model, 0.02, &mut vrng);
        let mut prng = Prng::seed_from_u64(9);
        let probe = Tensor::gaussian(probe_rows, model.input_width(), 1.0, &mut prng);

        let (whole, whole_s) = timed(|| assess_whole(&model, &variant, &probe, &cfg));
        whole.expect("same-structure models are comparable");
        let small = {
            let slice: Vec<Tensor> = (0..16).map(|r| probe.row_tensor(r)).collect();
            Tensor::stack_rows(&slice)
        };
        let mut arng = Prng::seed_from_u64(10);
        let (seg, seg_s) = timed(|| {
            assess_replacement(&model, &variant, &small, 0.25, &mut arng)
        });
        let seg = seg.expect("assessment runs");

        println!(
            "{name:<12} {params_m:>7.1}M params  whole {whole_s:>7.2}s  segment {seg_s:>7.2}s  ({} segments)",
            seg.segments.len()
        );
        rows.push(vec![
            name.to_string(),
            format!("{params_m:.1}"),
            format!("{whole_s:.2}"),
            format!("{seg_s:.2}"),
        ]);
        results.push(Row {
            model: name.to_string(),
            params_millions: params_m,
            whole_seconds: whole_s,
            segment_seconds: seg_s,
        });
    }

    print_table(
        "Table 2: functional-equivalence check time",
        &["Model", "# Params (M)", "Time whole (s)", "Time segment (s)"],
        &rows,
    );

    // The paper's structural claim: time scales roughly with model size
    // (BERT, ~5.5x AlexNet's parameters, takes the longest but stays
    // offline-practical).
    let first = &results[0];
    let last = &results[3];
    println!(
        "\nbertish/alexnetish: params x{:.1}, whole-check time x{:.1}",
        last.params_millions / first.params_millions,
        last.whole_seconds / first.whole_seconds.max(1e-9),
    );
    write_json("table2_check_time", &results);
}
