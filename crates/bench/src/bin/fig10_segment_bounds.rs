//! Figure 10: QoR difference bound vs actual accuracy loss for model
//! segments, across fine-tuning levels and three vision tasks.
//!
//! Each task's model is transferred from the shared resnet50ish base and
//! fine-tuned to a varying level (x-axis): the feature extractor is
//! adapted toward the downstream task's features. For each level we
//! replace the tuned segment with the original base counterpart and
//! measure the resulting QoR relative to the pre-replacement model:
//!
//! * **fine-tuned** — normal adaptation (light jitter);
//! * **noisy** — worst-case fine-tuning (heavy jitter);
//! * **bound** — the estimated relative-QoR lower bound from the
//!   Section 4.2 noise-injection assessment between the tuned model and
//!   the base.
//!
//! Paper's claim: the bound is a reliable lower estimate that closely
//! tracks the actual curves within the acceptable region (≤10% loss).
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin fig10_segment_bounds
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, write_json};
use sommelier_equiv::assessment::estimate_replacement_diff_for;
use sommelier_equiv::segment::MatchedSegment;
use sommelier_graph::task::OutputStyle;
use sommelier_graph::{Model, TaskKind};
use sommelier_runtime::execute;
use sommelier_runtime::metrics::{qor_against_truth, GroundTruth};
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::families::{Family, FamilyScale};
use sommelier_zoo::teacher::{DatasetBias, Teacher};
use sommelier_zoo::transfer::{adapt_features, derive_teacher_shifted, shared_segment, transfer};

#[derive(Serialize)]
struct Point {
    task: String,
    finetune_level: f64,
    finetuned_relative_qor: f64,
    noisy_relative_qor: f64,
    bound_relative_qor: f64,
}

fn qor(model: &Model, inputs: &Tensor, truth: &GroundTruth) -> f64 {
    let out = execute(model, inputs).expect("model executes");
    qor_against_truth(model.task.output_style(), &out, truth)
}

/// Replace the copied base-derived layers of `tuned` with the original
/// base weights — "replace the newly tuned model segment with the
/// counterpart in the original one".
fn restore_base_segment(tuned: &Model, base: &Model) -> Model {
    let mut out = tuned.clone();
    for id in shared_segment(base) {
        if base.layer(id).op.has_params() {
            out.set_params(id, base.layer(id).params.clone())
                .expect("shared segments are shape-compatible");
        }
    }
    out
}

fn main() {
    let base_teacher = Teacher::for_task(TaskKind::ImageRecognition, 42);
    let base_bias = DatasetBias::new(&base_teacher, "imagenet", 0.08);
    let mut rng = Prng::seed_from_u64(5);
    let base = Family::Resnetish.build_scaled(
        "resnet50ish-base",
        &base_teacher,
        &base_bias,
        &FamilyScale::new(1.0, 5, 0.004),
        &mut rng,
    );

    let tasks: [(TaskKind, usize, &str); 3] = [
        (TaskKind::ImageRecognition, 48, "caltech256"),
        (TaskKind::ObjectDetection, 24, "mscoco"),
        (TaskKind::SemanticSegmentation, 64, "ade20k"),
    ];
    // How far downstream features sit from the base's: base features are
    // useful but not optimal, so adaptation has something to gain.
    let feature_shift = 0.18;
    let levels = [0.0f64, 0.15, 0.3, 0.45, 0.6, 0.8, 1.0];
    let mut points: Vec<Point> = Vec::new();

    for (ti, (task, out_width, dataset)) in tasks.into_iter().enumerate() {
        let downstream =
            derive_teacher_shifted(&base_teacher, task, out_width, feature_shift, 100 + ti as u64);
        let dbias = DatasetBias::new(&downstream, dataset, 0.08);
        let mut drng = Prng::seed_from_u64(900 + ti as u64);
        let inputs = Tensor::gaussian(1200, downstream.spec.input_width, 1.0, &mut drng);
        let truth = match downstream.spec.output_style() {
            OutputStyle::Classification => GroundTruth::Labels(downstream.labels(&inputs)),
            OutputStyle::Regression => GroundTruth::Targets(downstream.outputs(&inputs)),
        };

        // The frozen transfer (downstream head on untouched base layers).
        let mut trng = Prng::seed_from_u64(777 + ti as u64);
        let frozen = transfer(
            format!("{}-transfer", task.slug()),
            &base,
            &downstream,
            &dbias,
            0.01,
            0.0,
            0.0,
            &mut trng,
        );

        for &level in &levels {
            // Normal fine-tune, plus a worst case whose head was also
            // perturbed (the head survives segment replacement, so the
            // worst case degrades the replaced model further).
            let mut arng = Prng::seed_from_u64(801 + (level * 100.0) as u64);
            let tuned = adapt_features(&frozen, &downstream, &dbias, level, 0.02, &mut arng);
            let head = *tuned.linear_layers().last().expect("has a head");
            let noisy =
                sommelier_zoo::finetune::perturb_layers(&tuned, &[head], 0.25, &mut arng);

            let tuned_qor = qor(&tuned, &inputs, &truth).max(1e-9);
            let finetuned_rel =
                qor(&restore_base_segment(&tuned, &base), &inputs, &truth) / tuned_qor;
            // Worst case: the replacement undoes a *noisy* fine-tune; the
            // relative quality is judged against the clean tuned model
            // (what the user believes they deployed).
            let noisy_rel =
                qor(&restore_base_segment(&noisy, &base), &inputs, &truth) / tuned_qor;

            // Theoretical lower bound: the Section 4.2 noise-injection
            // estimate of replacing the tuned model's shared segments
            // with the base's counterparts (all segments, no removal).
            let probe_rows: Vec<Tensor> = (0..24).map(|r| inputs.row_tensor(r)).collect();
            let probe = Tensor::stack_rows(&probe_rows);
            let mut brng = Prng::seed_from_u64(999);
            let shared: Vec<_> = shared_segment(&base);
            let seg = MatchedSegment {
                host_layers: shared.clone(),
                donor_layers: shared,
            };
            let est = estimate_replacement_diff_for(&tuned, &base, &[seg], &probe, &mut brng)
                .expect("runs");
            let bound_rel = (1.0 - est).max(0.0);

            points.push(Point {
                task: task.slug().to_string(),
                finetune_level: level,
                finetuned_relative_qor: finetuned_rel,
                noisy_relative_qor: noisy_rel,
                bound_relative_qor: bound_rel,
            });
        }
    }

    for task in ["image-recognition", "object-detection", "semantic-segmentation"] {
        let rows: Vec<Vec<String>> = points
            .iter()
            .filter(|p| p.task == task)
            .map(|p| {
                vec![
                    format!("{:.2}", p.finetune_level),
                    format!("{:.1}%", p.finetuned_relative_qor * 100.0),
                    format!("{:.1}%", p.noisy_relative_qor * 100.0),
                    format!("{:.1}%", p.bound_relative_qor * 100.0),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 10 ({task}): relative QoR after segment replacement"),
            &["Tune level", "Fine-tuned", "Noisy (worst case)", "Bound"],
            &rows,
        );
    }

    // Claims: curves decline with tuning level; the bound stays below the
    // actual (safe) and tracks it in the acceptable (≥90%) region.
    let declining = |task: &str, field: fn(&Point) -> f64| {
        let vals: Vec<f64> = points
            .iter()
            .filter(|p| p.task == task)
            .map(field)
            .collect();
        vals.first().copied().unwrap_or(0.0) >= vals.last().copied().unwrap_or(0.0)
    };
    let all_decline = ["image-recognition", "object-detection", "semantic-segmentation"]
        .iter()
        .all(|t| declining(t, |p| p.finetuned_relative_qor));
    let in_region: Vec<&Point> = points
        .iter()
        .filter(|p| p.finetuned_relative_qor >= 0.90)
        .collect();
    let safe = in_region
        .iter()
        .filter(|p| p.bound_relative_qor <= p.finetuned_relative_qor + 0.02)
        .count();
    println!("\nreplacement cost grows with tuning level in every task: {all_decline}");
    println!(
        "acceptable region (≤10% loss): bound is a safe lower estimate for {}/{} points",
        safe,
        in_region.len()
    );
    write_json("fig10_segment_bounds", &points);
}
