//! Table 1: accuracy lower bound vs actual accuracy when interchanging
//! whole models, across validation dataset sizes.
//!
//! With resnet50ish as the reference model, three same-task models
//! (inceptionish, vgg19ish, mobilenetish) are assessed at dataset sizes
//! 100 / 1k / 10k. Each cell reports `bound / min / average` where the
//! *bound* is the accuracy lower bound derived from one validation draw
//! minus the generalization term, and min/average are over 20 independent
//! draws of the same size. The paper's claims: the bound is always safe
//! (≤ min) and approaches the actual accuracy as the dataset grows — the
//! ×10 size step tightens it by ~√10.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin table1_bounds
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, write_json};
use sommelier_equiv::genbound::{generalization_term, GenBoundConfig};
use sommelier_graph::TaskKind;
use sommelier_runtime::execute;
use sommelier_runtime::metrics::top1_accuracy;
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::families::Family;
use sommelier_zoo::teacher::{DatasetBias, Teacher};

#[derive(Serialize)]
struct Cell {
    model: String,
    dataset_size: usize,
    bound: f64,
    min_actual: f64,
    avg_actual: f64,
    safe: bool,
}

fn main() {
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 42);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.22);
    let mut rng = Prng::seed_from_u64(7);

    let candidates = [
        ("inceptionish", Family::Inceptionish),
        ("vgg19ish", Family::Vggish),
        ("mobilenetish", Family::Mobilenetish),
    ];
    let models: Vec<_> = candidates
        .iter()
        .map(|(name, family)| {
            let mut frng = rng.fork();
            family.build(*name, &teacher, &bias, &mut frng)
        })
        .collect();

    let sizes = [100usize, 1_000, 10_000];
    let repeats = 20;
    let gb = GenBoundConfig::default();

    let mut cells: Vec<Cell> = Vec::new();
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut row = vec![format!("{n}")];
        for (ci, (name, _)) in candidates.iter().enumerate() {
            let model = &models[ci];
            // Actual accuracy while interchanging the model for the task,
            // measured over `repeats` independent same-size draws.
            let mut accs = Vec::with_capacity(repeats);
            for rep in 0..repeats {
                let mut drng = Prng::seed_from_u64(1000 * (rep as u64 + 1) + n as u64);
                let x = Tensor::gaussian(n, teacher.spec.input_width, 1.0, &mut drng);
                let labels = teacher.labels(&x);
                let out = execute(model, &x).expect("model executes");
                accs.push(top1_accuracy(&out, &labels));
            }
            let min_actual = accs.iter().cloned().fold(1.0f64, f64::min);
            let avg_actual = accs.iter().sum::<f64>() / accs.len() as f64;

            // Bound: one (held-out) validation draw → empirical accuracy
            // minus the dataset-independent generalization term.
            let mut brng = Prng::seed_from_u64(99_991 + n as u64);
            let probe = Tensor::gaussian(n, teacher.spec.input_width, 1.0, &mut brng);
            let labels = teacher.labels(&probe);
            let out = execute(model, &probe).expect("model executes");
            let empirical = top1_accuracy(&out, &labels);
            let term = generalization_term(model, &probe, n, &gb);
            let bound = (empirical - term).max(0.0);

            row.push(format!(
                "{:.0} / {:.0} / {:.0}",
                bound * 100.0,
                min_actual * 100.0,
                avg_actual * 100.0
            ));
            cells.push(Cell {
                model: name.to_string(),
                dataset_size: n,
                bound,
                min_actual,
                avg_actual,
                safe: bound <= min_actual,
            });
        }
        rows.push(row);
    }

    print_table(
        "Table 1: accuracy lower bound vs actual (%), cell = bound/min/avg",
        &["Dataset Size", "inceptionish", "vgg19ish", "mobilenetish"],
        &rows,
    );

    let all_safe = cells.iter().all(|c| c.safe);
    println!("\nall bounds safe (bound <= min actual): {all_safe}");
    // The bound must close in on the actual accuracy as n grows.
    for (name, _) in &candidates {
        let gap = |n: usize| {
            let c = cells
                .iter()
                .find(|c| &c.model == name && c.dataset_size == n)
                .expect("cell exists");
            c.avg_actual - c.bound
        };
        println!(
            "{name}: bound gap at n=100 → 1k → 10k: {:.1}% → {:.1}% → {:.1}%",
            gap(100) * 100.0,
            gap(1_000) * 100.0,
            gap(10_000) * 100.0
        );
    }

    write_json("table1_bounds", &cells);
}
