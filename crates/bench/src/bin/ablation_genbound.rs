//! Ablation: generalization bound on vs off (the Section 5.5 knob).
//!
//! An equivalence *verdict* ("is this candidate within ε of the
//! reference?") should not depend on which validation set happened to be
//! used. With the bound off, the verdict is made on the raw empirical
//! difference and flips across dataset draws near the threshold; with the
//! bound on, the certified verdict is stable and safe — whenever a model
//! is certified equivalent from one draw, its empirical difference stays
//! within ε on every other draw.
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin ablation_genbound
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, write_json};
use sommelier_equiv::whole::{assess_whole, EquivConfig, GenBoundMode};
use sommelier_graph::TaskKind;
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::families::{Family, FamilyScale};
use sommelier_zoo::finetune::perturb_all;
use sommelier_zoo::teacher::{DatasetBias, Teacher};

#[derive(Serialize)]
struct Row {
    epsilon: f64,
    off_flip_rate: f64,
    on_flip_rate: f64,
    on_unsafe_certifications: usize,
}

fn main() {
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 42);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.08);
    let mut rng = Prng::seed_from_u64(3);
    let reference = Family::Resnetish.build_scaled(
        "ref",
        &teacher,
        &bias,
        &FamilyScale::new(1.0, 4, 0.004),
        &mut rng,
    );
    // 24 variants at graded fine-tune levels spanning the thresholds.
    let variants: Vec<_> = (0..24)
        .map(|i| {
            let mut vrng = Prng::seed_from_u64(100 + i);
            perturb_all(&reference, 0.02 + 0.02 * i as f64, &mut vrng)
        })
        .collect();

    let draws = 12;
    let draw_rows = 256;
    let mut results = Vec::new();
    for &epsilon in &[0.15f64, 0.20, 0.30] {
        let mut off_flips = 0usize;
        let mut on_flips = 0usize;
        let mut unsafe_certs = 0usize;
        for v in &variants {
            let mut off_verdicts = Vec::new();
            let mut on_verdicts = Vec::new();
            let mut empiricals = Vec::new();
            for d in 0..draws {
                let mut drng = Prng::seed_from_u64(5000 + d);
                let x = Tensor::gaussian(draw_rows, reference.input_width(), 1.0, &mut drng);
                let off = assess_whole(
                    &reference,
                    v,
                    &x,
                    &EquivConfig {
                        epsilon,
                        genbound: GenBoundMode::Off,
                    },
                )
                .expect("comparable");
                let on = assess_whole(
                    &reference,
                    v,
                    &x,
                    &EquivConfig {
                        epsilon,
                        ..EquivConfig::default()
                    },
                )
                .expect("comparable");
                off_verdicts.push(off.equivalent);
                on_verdicts.push(on.equivalent);
                empiricals.push(off.empirical_diff);
            }
            let flip = |v: &[bool]| v.iter().any(|&b| b) && !v.iter().all(|&b| b);
            off_flips += usize::from(flip(&off_verdicts));
            on_flips += usize::from(flip(&on_verdicts));
            // Safety: a bound-certified verdict must hold empirically on
            // every draw.
            let certified = on_verdicts.iter().any(|&b| b);
            if certified && empiricals.iter().any(|&e| e > epsilon) {
                unsafe_certs += 1;
            }
        }
        let row = Row {
            epsilon,
            off_flip_rate: off_flips as f64 / variants.len() as f64,
            on_flip_rate: on_flips as f64 / variants.len() as f64,
            on_unsafe_certifications: unsafe_certs,
        };
        println!(
            "epsilon {:.2}: verdict flips across draws — bound off {:.0}%, bound on {:.0}%; unsafe certifications with bound: {}",
            row.epsilon,
            row.off_flip_rate * 100.0,
            row.on_flip_rate * 100.0,
            row.on_unsafe_certifications
        );
        results.push(row);
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.epsilon),
                format!("{:.0}%", r.off_flip_rate * 100.0),
                format!("{:.0}%", r.on_flip_rate * 100.0),
                r.on_unsafe_certifications.to_string(),
            ]
        })
        .collect();
    print_table(
        "Ablation: verdict stability across dataset draws",
        &["Epsilon", "Flips (bound off)", "Flips (bound on)", "Unsafe certs (on)"],
        &rows,
    );
    write_json("ablation_genbound", &results);
}
