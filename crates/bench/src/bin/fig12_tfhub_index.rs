//! Figure 12: effectiveness of the resource and semantic indices on the
//! BiT + EfficientNet series (paper Section 7.3).
//!
//! (a) **Resource variation**: each BiT model's memory consumption varies
//!     substantially (paper: ~25%) across execution settings (device ×
//!     batch size); the resource index organizes models once per setting,
//!     obviating per-setting manual profiling.
//!
//! (b) **Cross-series replacement**: with the largest BiT model
//!     (bitish-r152x4) as the reference, the best replacement at roughly
//!     one-eighth of its size comes from the *EfficientNet* series, not
//!     from BiT itself — a cross-series relationship "hard to identify
//!     manually".
//!
//! ```sh
//! cargo run --release -p sommelier-bench --bin fig12_tfhub_index
//! ```

use serde::Serialize;
use sommelier_bench::{print_table, write_json};
use sommelier_query::{Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_runtime::{ExecSetting, ResourceProfile};
use sommelier_zoo::series::{bit_series, efficientnet_series};
use std::sync::Arc;

#[derive(Serialize)]
struct Fig12a {
    model: String,
    min_mb: f64,
    max_mb: f64,
    variation_pct: f64,
}

#[derive(Serialize)]
struct Fig12b {
    candidate: String,
    series: String,
    score: f64,
    memory_fraction_of_reference: f64,
}

fn main() {
    let bit = bit_series(2024);
    let eff = efficientnet_series(2024);

    // ---------------- (a) memory variation across execution settings ---
    let mut var_rows = Vec::new();
    let mut fig_a = Vec::new();
    for m in &bit.models {
        let mems: Vec<f64> = ExecSetting::grid()
            .iter()
            .map(|s| ResourceProfile::under(m, s).memory_mb)
            .collect();
        let min = mems.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = mems.iter().cloned().fold(0.0f64, f64::max);
        let variation = 100.0 * (max - min) / min;
        var_rows.push(vec![
            m.name.clone(),
            format!("{min:.2}"),
            format!("{max:.2}"),
            format!("{variation:.0}%"),
        ]);
        fig_a.push(Fig12a {
            model: m.name.clone(),
            min_mb: min,
            max_mb: max,
            variation_pct: variation,
        });
    }
    print_table(
        "Figure 12(a): BiT memory consumption across execution settings",
        &["Model", "min MB", "max MB", "variation"],
        &var_rows,
    );
    println!("(paper: memory varies ~25% with the execution setting)");

    // ---------------- (b) cross-series equivalents at 1/8 size ---------
    let repo = Arc::new(InMemoryRepository::new());
    let mut cfg = SommelierConfig::default();
    cfg.index.sample_size = 16; // 13 models: analyze every pair
    cfg.index.segments = false;
    let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);
    for m in bit.models.iter().chain(&eff.models) {
        engine.register(m).expect("fresh");
    }

    let reference = "bitish-r152x4";
    let ref_mem = engine
        .resource_index()
        .profile_of(reference)
        .expect("profiled")
        .memory_mb;
    // "a model that is one-eighth the size of R152x4": allow up to ~1/4
    // so both series contribute candidates near the target.
    let results = engine
        .query(&format!(
            "SELECT models 6 CORR {reference} ON memory <= 30% WITHIN 0.0 ORDER BY similarity"
        ))
        .expect("query runs");

    let mut fig_b = Vec::new();
    let mut rows = Vec::new();
    for r in &results {
        let series = if r.key.starts_with("bitish") { "BiT" } else { "EfficientNet" };
        rows.push(vec![
            r.key.clone(),
            series.to_string(),
            format!("{:.3}", r.score),
            format!("{:.2}", r.profile.memory_mb / ref_mem),
        ]);
        fig_b.push(Fig12b {
            candidate: r.key.clone(),
            series: series.to_string(),
            score: r.score,
            memory_fraction_of_reference: r.profile.memory_mb / ref_mem,
        });
    }
    print_table(
        &format!("Figure 12(b): small replacements for {reference}, best first"),
        &["Candidate", "Series", "Equivalence score", "Memory ÷ reference"],
        &rows,
    );
    if let Some(best) = fig_b.first() {
        println!(
            "\nbest small replacement: {} (from the {} series) — {}",
            best.candidate,
            best.series,
            if best.series == "EfficientNet" {
                "cross-series, as the paper reports: hard to find manually"
            } else {
                "intra-series this time"
            }
        );
    }
    write_json("fig12_tfhub_index", &(fig_a, fig_b));
}
