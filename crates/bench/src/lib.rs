//! Shared harness utilities for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation (Section 7) has a
//! binary in this crate (`src/bin/`) that regenerates it: same rows, same
//! series, printed as aligned text and written as JSON under
//! `target/experiments/`. This library holds the pieces the binaries
//! share: output locations, table rendering, and simple timing.

use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Directory where experiment binaries drop machine-readable results.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("can create target/experiments");
    dir
}

/// Write a JSON result file for an experiment.
pub fn write_json<T: Serialize>(experiment: &str, value: &T) {
    let path = experiments_dir().join(format!("{experiment}.json"));
    let json = serde_json::to_string_pretty(value).expect("results serialize");
    std::fs::write(&path, json).expect("can write experiment results");
    println!("\n[written] {}", path.display());
}

/// Render an aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Format a float with the given precision.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_dir_exists_after_call() {
        assert!(experiments_dir().exists());
    }

    #[test]
    fn timed_returns_result_and_elapsed() {
        let (x, secs) = timed(|| 40 + 2);
        assert_eq!(x, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
