//! The manual-profiling baselines of Figure 9(b).
//!
//! Each submodule is the script a user *without* Sommelier writes against
//! the bare repository interface (paper Figure 8, gray blocks): enumerate
//! keys, download every model, rebuild a validation pipeline, profile
//! resources by hand, and compare. The experiment binary times these
//! functions and counts their source lines verbatim.

pub mod design;
pub mod serving;
pub mod testing;
