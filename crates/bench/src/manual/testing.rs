//! Manual DNN-testing ensemble construction: without Sommelier, the
//! adversarial-input detector is assembled by hand for every tested model
//! (paper Sections 2.1 and 6) — download candidates, check input/output
//! compatibility manually, measure pairwise agreement, and keep the N
//! most-agreeing-but-distinct models.

use sommelier_graph::Model;
use sommelier_repo::ModelRepository;
use sommelier_runtime::execute;
use sommelier_tensor::{Prng, Tensor};

/// Build an ensemble of `n` models similar to (but distinct from) the
/// model under test, by exhaustive pairwise agreement measurement.
pub fn manual_testing_ensemble(
    repo: &dyn ModelRepository,
    under_test: &str,
    n: usize,
) -> Vec<String> {
    let Ok(tested) = repo.load(under_test) else {
        return Vec::new();
    };

    // Download everything; no metadata exists to pre-filter with.
    let mut candidates: Vec<(String, Model)> = Vec::new();
    for key in repo.keys() {
        if key == under_test {
            continue;
        }
        if let Ok(model) = repo.load(&key) {
            candidates.push((key, model));
        }
    }

    // Manual compatibility check: identical input and output widths.
    candidates.retain(|(_, m)| {
        m.input_width() == tested.input_width() && m.output_width() == tested.output_width()
    });

    // Probe agreement on a hand-rolled input sweep.
    let mut rng = Prng::seed_from_u64(0x7e57);
    let probes = 768;
    let inputs = Tensor::gaussian(probes, tested.input_width(), 1.0, &mut rng);
    let Ok(base_out) = execute(&tested, &inputs) else {
        return Vec::new();
    };
    let base_top: Vec<usize> = (0..probes).map(|r| base_out.argmax_row(r)).collect();

    let mut scored: Vec<(String, f64)> = Vec::new();
    for (key, model) in &candidates {
        let Ok(out) = execute(model, &inputs) else {
            continue;
        };
        let mut agree = 0usize;
        for (r, &top) in base_top.iter().enumerate() {
            if out.argmax_row(r) == top {
                agree += 1;
            }
        }
        let ratio = agree as f64 / probes as f64;
        // A useful detector member agrees broadly but not perfectly —
        // identical copies explore no new decision boundary.
        if ratio < 0.9999 {
            scored.push((key.clone(), ratio));
        }
    }

    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    scored.truncate(n);
    scored.into_iter().map(|(k, _)| k).collect()
}
