//! Manual run-time model re-selection for inference serving: the
//! hard-coded "exhaustively try every model until one fits the current
//! resource quota" loop of paper Figure 8 (left, gray block). The server
//! is under load, yet each re-selection downloads and profiles candidates
//! from scratch because the repository offers nothing else.

use sommelier_graph::{LayerId, Op};
use sommelier_repo::ModelRepository;
use sommelier_runtime::execute;
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::teacher::Teacher;

/// Re-select a serving model under a compute quota of `flops_frac` of the
/// largest model's per-inference FLOPs, keeping quality acceptable.
pub fn manual_serving_reselect(
    repo: &dyn ModelRepository,
    teacher: &Teacher,
    flops_frac: f64,
) -> Option<String> {
    // Enumerate and download everything — again.
    let keys = repo.keys();

    // Manual FLOPs estimation: walk each model's layers and count
    // multiply-accumulates by operator type.
    let mut flops_by_key: Vec<(String, f64)> = Vec::new();
    for key in &keys {
        let Ok(model) = repo.load(key) else { continue };
        let mut flops = 0f64;
        for (i, layer) in model.layers().iter().enumerate() {
            let out_w = model.width_of(LayerId(i)) as f64;
            match &layer.op {
                Op::Dense { units } => {
                    let in_w = model.width_of(layer.inputs[0]) as f64;
                    flops += 2.0 * in_w * (*units as f64);
                }
                Op::Conv1d { kernel_size, .. } => {
                    flops += 2.0 * (*kernel_size as f64) * out_w;
                }
                Op::Softmax => flops += 5.0 * out_w,
                Op::Tanh | Op::Sigmoid => flops += 4.0 * out_w,
                _ => flops += out_w,
            }
        }
        flops_by_key.push((key.clone(), flops));
    }
    let heaviest = flops_by_key
        .iter()
        .map(|(_, f)| *f)
        .fold(0.0f64, f64::max);
    let quota = heaviest * flops_frac;

    // Validate the quality of every candidate under quota; the serving
    // loop cannot ship a model it has never scored.
    let mut rng = Prng::seed_from_u64(0x5e11);
    let n = 768;
    let inputs = Tensor::gaussian(n, teacher.spec.input_width, 1.0, &mut rng);
    let labels = teacher.labels(&inputs);
    let mut best: Option<(String, f64)> = None;
    for (key, flops) in &flops_by_key {
        if *flops > quota {
            continue;
        }
        let Ok(model) = repo.load(key) else { continue };
        let Ok(out) = execute(&model, &inputs) else {
            continue;
        };
        let mut correct = 0usize;
        for (r, &label) in labels.iter().enumerate() {
            if out.argmax_row(r) == label {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        if best.as_ref().is_none_or(|(_, b)| acc > *b) {
            best = Some((key.clone(), acc));
        }
    }
    best.map(|(k, _)| k)
}
