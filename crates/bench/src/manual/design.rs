//! Manual model-design selection: what a designer does against a bare
//! repository to find "an accurate base model within half the flagship's
//! memory" (paper Figure 8, right, gray block). Everything is rebuilt
//! from primitives — download each model, hand-roll a validation set,
//! hand-roll resource profiling by walking the graph — because without
//! Sommelier none of this is provided.

use sommelier_graph::{LayerId, Model, Op};
use sommelier_repo::ModelRepository;
use sommelier_runtime::execute;
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::teacher::Teacher;

/// Exhaustively profile every repository model and return the name of the
/// most accurate one whose memory estimate is within `mem_frac` of the
/// largest model's.
pub fn manual_model_design(
    repo: &dyn ModelRepository,
    teacher: &Teacher,
    mem_frac: f64,
) -> Option<String> {
    // Step 1: enumerate the repository; there is no metadata, so every
    // model must be downloaded to learn anything about it.
    let keys = repo.keys();
    let mut downloaded: Vec<(String, Model)> = Vec::new();
    for key in &keys {
        match repo.load(key) {
            Ok(model) => downloaded.push((key.clone(), model)),
            Err(_) => continue,
        }
    }

    // Step 2: hand-roll a validation set for the task.
    let mut rng = Prng::seed_from_u64(0xfeed);
    let n = 1024;
    let inputs = Tensor::gaussian(n, teacher.spec.input_width, 1.0, &mut rng);
    let labels = teacher.labels(&inputs);

    // Step 3: profile memory by manually walking each model's layers and
    // summing parameter and activation sizes.
    let mut mem_estimates: Vec<(String, f64)> = Vec::new();
    for (key, model) in &downloaded {
        let mut bytes = 0usize;
        for (i, layer) in model.layers().iter().enumerate() {
            if let Some(w) = &layer.params.weight {
                bytes += w.len() * 4;
            }
            if let Some(b) = &layer.params.bias {
                bytes += b.len() * 4;
            }
            bytes += model.width_of(LayerId(i)) * 4;
            // Convolutions keep an im2col scratch buffer in most
            // frameworks; account for it the way a careful script would.
            if let Op::Conv1d { kernel_size, .. } = layer.op {
                bytes += kernel_size * model.width_of(LayerId(i)) * 4;
            }
        }
        mem_estimates.push((key.clone(), bytes as f64));
    }
    let largest = mem_estimates
        .iter()
        .map(|(_, b)| *b)
        .fold(0.0f64, f64::max);
    let budget = largest * mem_frac;

    // Step 4: run every candidate over the validation set and score it.
    let mut scored: Vec<(String, f64)> = Vec::new();
    for (key, model) in &downloaded {
        let mem = mem_estimates
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, b)| *b)
            .unwrap_or(f64::INFINITY);
        if mem > budget {
            continue;
        }
        // Batch the inference the way a script would, 128 rows at a time.
        let mut correct = 0usize;
        let mut seen = 0usize;
        let mut row = 0usize;
        while row < n {
            let end = (row + 128).min(n);
            let batch_rows: Vec<Tensor> = (row..end).map(|r| inputs.row_tensor(r)).collect();
            let batch = Tensor::stack_rows(&batch_rows);
            let Ok(out) = execute(model, &batch) else {
                break;
            };
            for (j, r) in (row..end).enumerate() {
                if out.argmax_row(j) == labels[r] {
                    correct += 1;
                }
                seen += 1;
            }
            row = end;
        }
        if seen > 0 {
            scored.push((key.clone(), correct as f64 / seen as f64));
        }
    }

    // Step 5: pick the winner.
    scored
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .map(|(k, _)| k)
}
