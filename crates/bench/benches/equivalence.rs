//! Criterion microbenchmarks for the functional-equivalence algorithms
//! (the per-pair unit costs behind paper Table 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sommelier_equiv::assessment::assess_replacement;
use sommelier_equiv::segment::find_matched_segments;
use sommelier_equiv::whole::{assess_whole, EquivConfig};
use sommelier_graph::{Model, TaskKind};
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::embed::{embed_model, BodyStyle, EmbedSpec};
use sommelier_zoo::finetune::perturb_all;
use sommelier_zoo::teacher::{DatasetBias, TaskSpec, Teacher};

fn model_at(hidden: usize, depth: usize, seed: u64) -> Model {
    let spec = TaskSpec {
        task: TaskKind::ImageRecognition,
        input_width: hidden * 2,
        hidden,
        output_width: 32,
    };
    let teacher = Teacher::new(spec, 42);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.1);
    let mut rng = Prng::seed_from_u64(seed);
    embed_model(
        "bench",
        &teacher,
        &bias,
        &EmbedSpec {
            style: BodyStyle::Residual,
            body_width: hidden,
            depth,
            noise: 0.01,
        },
        &mut rng,
    )
}

fn bench_whole(c: &mut Criterion) {
    let mut group = c.benchmark_group("whole_model_assessment");
    group.sample_size(10);
    for &hidden in &[64usize, 128, 256] {
        let m = model_at(hidden, 4, 1);
        let mut rng = Prng::seed_from_u64(2);
        let v = perturb_all(&m, 0.02, &mut rng);
        let mut prng = Prng::seed_from_u64(3);
        let probe = Tensor::gaussian(128, m.input_width(), 1.0, &mut prng);
        let cfg = EquivConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(hidden), &hidden, |b, _| {
            b.iter(|| assess_whole(&m, &v, &probe, &cfg).expect("comparable"))
        });
    }
    group.finish();
}

fn bench_segment_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_matching");
    for &depth in &[4usize, 8, 16] {
        let a = model_at(96, depth, 1);
        let b = model_at(96, depth, 2);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |bch, _| {
            bch.iter(|| find_matched_segments(&a, &b, 2))
        });
    }
    group.finish();
}

fn bench_replacement_assessment(c: &mut Criterion) {
    let mut group = c.benchmark_group("replacement_assessment");
    group.sample_size(10);
    for &hidden in &[64usize, 128] {
        let host = model_at(hidden, 4, 1);
        let donor = model_at(hidden, 4, 2);
        let mut prng = Prng::seed_from_u64(3);
        let probe = Tensor::gaussian(16, host.input_width(), 1.0, &mut prng);
        group.bench_with_input(BenchmarkId::from_parameter(hidden), &hidden, |b, _| {
            let mut rng = Prng::seed_from_u64(4);
            b.iter(|| {
                assess_replacement(&host, &donor, &probe, 0.25, &mut rng).expect("runs")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_whole,
    bench_segment_matching,
    bench_replacement_assessment
);
criterion_main!(benches);
