//! Criterion microbenchmarks for the tensor substrate — the kernels every
//! higher layer (execution, equivalence analysis, bounds) is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sommelier_tensor::{linalg, ops, Prng, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let mut rng = Prng::seed_from_u64(1);
        let a = Tensor::gaussian(n, n, 1.0, &mut rng);
        let b = Tensor::gaussian(n, n, 1.0, &mut rng);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| ops::matmul(&a, &b))
        });
    }
    group.finish();
}

fn bench_spectral_norm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_norm");
    for &n in &[64usize, 128, 256] {
        let mut rng = Prng::seed_from_u64(2);
        let m = Tensor::gaussian(n, n, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| linalg::spectral_norm_default(&m))
        });
    }
    group.finish();
}

fn bench_activations(c: &mut Criterion) {
    let mut rng = Prng::seed_from_u64(3);
    let x = Tensor::gaussian(64, 1024, 1.0, &mut rng);
    let mut group = c.benchmark_group("activations_64x1024");
    group.bench_function("relu", |b| b.iter(|| ops::relu(&x)));
    group.bench_function("softmax", |b| b.iter(|| ops::softmax(&x)));
    group.bench_function("l2_normalize", |b| b.iter(|| ops::l2_normalize(&x)));
    group.bench_function("max_pool_4", |b| b.iter(|| ops::max_pool(&x, 4)));
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_spectral_norm, bench_activations);
criterion_main!(benches);
