//! Ablation bench: LSH-assisted resource queries vs exhaustive linear
//! scan (the DESIGN.md ablation for the Section 5.3 index choice), plus
//! the `nearest` probe where the LSH candidates genuinely prune work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sommelier_index::lsh::LshConfig;
use sommelier_index::{ResourceConstraint, ResourceIndex};
use sommelier_runtime::ResourceProfile;
use sommelier_tensor::Prng;

fn populate(n: usize, exhaustive: bool) -> ResourceIndex {
    let mut rng = Prng::seed_from_u64(42);
    let mut idx = ResourceIndex::new(LshConfig::default(), 1);
    idx.exhaustive = exhaustive;
    for i in 0..n {
        idx.insert(
            format!("m{i:06}"),
            ResourceProfile {
                memory_mb: rng.uniform() * 1000.0,
                gflops: rng.uniform() * 20.0,
                latency_ms: rng.uniform() * 100.0,
            },
        );
    }
    idx
}

fn bench_range_query(c: &mut Criterion) {
    let constraint = ResourceConstraint {
        max_memory_mb: Some(120.0),
        max_gflops: Some(4.0),
        max_latency_ms: Some(40.0),
    };
    for &n in &[10_000usize, 100_000] {
        let mut group = c.benchmark_group(format!("resource_range_{n}"));
        group.sample_size(20);
        for exhaustive in [false, true] {
            let idx = populate(n, exhaustive);
            let label = if exhaustive { "exhaustive" } else { "lsh" };
            group.bench_function(BenchmarkId::new(label, n), |b| {
                b.iter(|| idx.query(&constraint))
            });
        }
        group.finish();
    }
}

fn bench_nearest(c: &mut Criterion) {
    let target = ResourceProfile {
        memory_mb: 100.0,
        gflops: 2.0,
        latency_ms: 10.0,
    };
    let mut group = c.benchmark_group("resource_nearest");
    for &n in &[10_000usize, 100_000] {
        let idx = populate(n, false);
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| idx.nearest(&target, 5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range_query, bench_nearest);
criterion_main!(benches);
