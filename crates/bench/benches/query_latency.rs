//! Criterion microbenchmarks for run-time query operations (the unit
//! costs behind paper Table 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sommelier_graph::{Model, ModelBuilder, TaskKind};
use sommelier_index::lsh::LshConfig;
use sommelier_index::semantic::{PairAnalyzer, SemanticIndexConfig};
use sommelier_index::{ResourceConstraint, ResourceIndex, SemanticIndex};
use sommelier_runtime::ResourceProfile;
use sommelier_tensor::{mix64, stable_hash64, Prng, Shape, Tensor};

struct SyntheticAnalyzer {
    seed: u64,
}

impl PairAnalyzer for SyntheticAnalyzer {
    fn whole_diff(&self, a: &Model, b: &Model) -> Option<f64> {
        // Deterministic per pair so parallel insertion stays reproducible.
        let pair = mix64(&[
            self.seed,
            stable_hash64(a.name.as_bytes()),
            stable_hash64(b.name.as_bytes()),
        ]);
        Some(Prng::seed_from_u64(pair).uniform() * 0.3)
    }
}

fn record_model(i: usize) -> Model {
    let mut w = Tensor::zeros(2, 2);
    w.set(0, 0, i as f32 + 1.0);
    ModelBuilder::new(format!("m{i:06}"), TaskKind::Other, Shape::vector(2))
        .dense_with(w, None)
        .build()
        .expect("valid")
}

fn populate(n: usize) -> (SemanticIndex, ResourceIndex) {
    let mut rng = Prng::seed_from_u64(42);
    let mut resource = ResourceIndex::new(LshConfig::default(), 1);
    let mut semantic = SemanticIndex::new(
        SemanticIndexConfig {
            sample_size: 5,
            segments: false,
            max_candidates: 64,
        },
        1,
    );
    let analyzer = SyntheticAnalyzer { seed: 7 };
    let resolve = |k: &str| {
        let i: usize = k.trim_start_matches('m').parse().ok()?;
        Some(record_model(i))
    };
    for i in 0..n {
        let m = record_model(i);
        semantic.insert(&m, &resolve, &analyzer);
        resource.insert(
            &m.name,
            ResourceProfile {
                memory_mb: rng.uniform() * 1000.0,
                gflops: rng.uniform() * 20.0,
                latency_ms: rng.uniform() * 100.0,
            },
        );
    }
    (semantic, resource)
}

fn bench_lookups(c: &mut Criterion) {
    for &n in &[1_000usize, 10_000] {
        let (semantic, resource) = populate(n);
        let mut group = c.benchmark_group(format!("query_at_{n}"));
        group.bench_function(BenchmarkId::new("semantic_lookup", n), |b| {
            b.iter(|| semantic.lookup_key("m000123", 0.8))
        });
        let constraint = ResourceConstraint {
            max_memory_mb: Some(300.0),
            max_gflops: Some(10.0),
            max_latency_ms: None,
        };
        group.bench_function(BenchmarkId::new("resource_query", n), |b| {
            b.iter(|| resource.query(&constraint))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_lookups);
criterion_main!(benches);
