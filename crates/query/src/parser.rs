//! Recursive-descent parser for the query language (paper Figure 7).
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := SELECT target CORR reference [ON predicates]
//!               [WITHIN number] [ORDER BY criterion] [EXEC kv (, kv)*]
//! target     := MODEL | MODELS number
//! reference  := identifier | TASK identifier
//! predicates := predicate (AND predicate)*
//! predicate  := dim (< | <=) number [unit]
//! dim        := MEMORY | FLOPS | LATENCY
//! unit       := % | MB | GFLOPS | MS        (default: %)
//! criterion  := SIMILARITY | MEMORY | FLOPS | LATENCY
//! kv         := identifier = (identifier | number)
//! ```

use crate::ast::{
    BoundValue, FinalSelection, Query, RefSpec, ResourceDim, ResourcePredicate, SelectKind,
};
use crate::lexer::{lex, LexError, Token};
use sommelier_graph::TaskKind;
use std::fmt;

/// Parse failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Unexpected token (or end of input) at token index.
    Unexpected {
        position: usize,
        found: Option<String>,
        expected: String,
    },
    /// Semantic issue (unknown task slug, threshold out of range…).
    Invalid(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                position,
                found,
                expected,
            } => match found {
                Some(t) => write!(f, "expected {expected} at token {position}, found '{t}'"),
                None => write!(f, "expected {expected}, found end of query"),
            },
            ParseError::Invalid(m) => write!(f, "invalid query: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            other => Err(self.unexpected(other, what)),
        }
    }

    fn unexpected(&self, found: Option<Token>, expected: &str) -> ParseError {
        ParseError::Unexpected {
            position: self.pos.saturating_sub(1),
            found: found.map(|t| t.to_string()),
            expected: expected.to_string(),
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(self.unexpected(other, what)),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.unexpected(other, what)),
        }
    }
}

/// Parse a query string.
///
/// ```
/// use sommelier_query::{parse, SelectKind};
/// let q = parse("SELECT models 3 CORR resnetish-50 ON memory <= 80% WITHIN 0.9").unwrap();
/// assert_eq!(q.select, SelectKind::Models(3));
/// assert_eq!(q.threshold, 0.9);
/// assert_eq!(q.predicates.len(), 1);
/// ```
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };

    p.expect(&Token::Select, "SELECT")?;
    let select = match p.next() {
        Some(Token::Model) => SelectKind::Model,
        Some(Token::Models) => {
            let n = p.number("a model count after MODELS")?;
            if n < 1.0 || n.fract() != 0.0 {
                return Err(ParseError::Invalid(format!(
                    "MODELS takes a positive integer, got {n}"
                )));
            }
            SelectKind::Models(n as usize)
        }
        other => return Err(p.unexpected(other, "MODEL or MODELS")),
    };

    p.expect(&Token::Corr, "CORR")?;
    let reference = match p.peek() {
        Some(Token::Task) => {
            p.next();
            let slug = p.ident("a task category after TASK")?;
            let task = TaskKind::from_slug(&slug)
                .ok_or_else(|| ParseError::Invalid(format!("unknown task '{slug}'")))?;
            RefSpec::Task(task)
        }
        _ => RefSpec::Named(p.ident("a reference model name")?),
    };

    let mut query = Query {
        select,
        reference,
        threshold: 0.95,
        predicates: Vec::new(),
        selection: FinalSelection::default(),
        exec_spec: Default::default(),
    };

    while let Some(tok) = p.peek().cloned() {
        match tok {
            Token::On => {
                p.next();
                loop {
                    query.predicates.push(parse_predicate(&mut p)?);
                    if p.peek() == Some(&Token::And) {
                        p.next();
                    } else {
                        break;
                    }
                }
            }
            Token::Within => {
                p.next();
                let t = p.number("a threshold after WITHIN")?;
                if !(0.0..=1.0).contains(&t) {
                    return Err(ParseError::Invalid(format!(
                        "threshold must be in [0,1], got {t}"
                    )));
                }
                query.threshold = t;
            }
            Token::Order => {
                p.next();
                p.expect(&Token::By, "BY after ORDER")?;
                query.selection = match p.next() {
                    Some(Token::Similarity) => FinalSelection::Similarity,
                    Some(Token::Memory) => FinalSelection::Memory,
                    Some(Token::Flops) => FinalSelection::Flops,
                    Some(Token::Latency) => FinalSelection::Latency,
                    other => return Err(p.unexpected(other, "an ordering criterion")),
                };
            }
            Token::Exec => {
                p.next();
                loop {
                    let key = p.ident("an EXEC setting key")?;
                    p.expect(&Token::Eq, "'=' in EXEC setting")?;
                    let value = match p.next() {
                        Some(Token::Ident(v)) => v,
                        Some(Token::Number(n)) => n.to_string(),
                        other => return Err(p.unexpected(other, "an EXEC setting value")),
                    };
                    query.exec_spec.insert(key, value);
                    if p.peek() == Some(&Token::Comma) {
                        p.next();
                    } else {
                        break;
                    }
                }
            }
            other => {
                return Err(ParseError::Unexpected {
                    position: p.pos,
                    found: Some(other.to_string()),
                    expected: "ON, WITHIN, ORDER BY, EXEC, or end of query".into(),
                })
            }
        }
    }
    Ok(query)
}

fn parse_predicate(p: &mut Parser) -> Result<ResourcePredicate, ParseError> {
    let dim = match p.next() {
        Some(Token::Memory) => ResourceDim::Memory,
        Some(Token::Flops) => ResourceDim::Flops,
        Some(Token::Latency) => ResourceDim::Latency,
        other => return Err(p.unexpected(other, "MEMORY, FLOPS, or LATENCY")),
    };
    match p.next() {
        Some(Token::Lt) | Some(Token::Le) => {}
        other => return Err(p.unexpected(other, "'<' or '<='")),
    }
    let n = p.number("a bound value")?;
    let value = match p.peek() {
        Some(Token::Percent) => {
            p.next();
            BoundValue::RelativePercent(n)
        }
        Some(Token::Mb) | Some(Token::Gflops) | Some(Token::Ms) => {
            let unit = p.next().expect("peeked");
            let ok = matches!(
                (dim, &unit),
                (ResourceDim::Memory, Token::Mb)
                    | (ResourceDim::Flops, Token::Gflops)
                    | (ResourceDim::Latency, Token::Ms)
            );
            if !ok {
                return Err(ParseError::Invalid(format!(
                    "unit {unit} does not match dimension {dim:?}"
                )));
            }
            BoundValue::Absolute(n)
        }
        // Bare numbers default to percent, the paper's common case of
        // relative budgets.
        _ => BoundValue::RelativePercent(n),
    };
    Ok(ResourcePredicate { dim, value })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_query_parses() {
        let q = parse(
            "SELECT model CORR resnetish-50 ON memory <= 80% AND flops < 60% WITHIN 0.95 ORDER BY memory",
        )
        .unwrap();
        assert_eq!(q.select, SelectKind::Model);
        assert_eq!(q.reference, RefSpec::Named("resnetish-50".into()));
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.threshold, 0.95);
        assert_eq!(q.selection, FinalSelection::Memory);
    }

    #[test]
    fn task_reference_parses() {
        let q = parse("SELECT models 5 CORR TASK image-recognition WITHIN 0.9").unwrap();
        assert_eq!(q.select, SelectKind::Models(5));
        assert_eq!(
            q.reference,
            RefSpec::Task(TaskKind::ImageRecognition)
        );
    }

    #[test]
    fn unknown_task_is_invalid() {
        let err = parse("SELECT model CORR TASK juggling").unwrap_err();
        assert!(matches!(err, ParseError::Invalid(ref m) if m.contains("juggling")));
    }

    #[test]
    fn absolute_units_parse_and_must_match_dimension() {
        let q = parse("SELECT model CORR m ON memory <= 200 MB AND latency < 30 ms").unwrap();
        assert!(matches!(q.predicates[0].value, BoundValue::Absolute(v) if v == 200.0));
        let err = parse("SELECT model CORR m ON memory <= 200 ms").unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
    }

    #[test]
    fn bare_numbers_default_to_percent() {
        let q = parse("SELECT model CORR m ON flops <= 50").unwrap();
        assert!(matches!(
            q.predicates[0].value,
            BoundValue::RelativePercent(p) if p == 50.0
        ));
    }

    #[test]
    fn exec_spec_collects_pairs() {
        let q = parse("SELECT model CORR m EXEC device = gpu, batch = 8").unwrap();
        assert_eq!(q.exec_spec["device"], "gpu");
        assert_eq!(q.exec_spec["batch"], "8");
    }

    #[test]
    fn threshold_range_is_checked() {
        let err = parse("SELECT model CORR m WITHIN 1.5").unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
    }

    #[test]
    fn missing_select_is_reported() {
        let err = parse("CORR m").unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }));
    }

    #[test]
    fn models_count_must_be_positive_integer() {
        assert!(parse("SELECT models 0 CORR m").is_err());
        assert!(parse("SELECT models 2.5 CORR m").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let err = parse("SELECT model CORR m WITHIN 0.9 banana").unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }));
    }

    #[test]
    fn default_threshold_is_95_percent() {
        let q = parse("SELECT model CORR m").unwrap();
        assert_eq!(q.threshold, 0.95);
    }
}
