//! Tokenization of the query language.
//!
//! Keywords are case-insensitive; identifiers admit the characters that
//! appear in repository keys (`-`, `.`, `/`, `:`); numbers are decimal
//! with an optional fraction; units (`%`, `mb`, `gflops`, `ms`) are
//! recognized as dedicated tokens so the parser can resolve bound values.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    // keywords
    Select,
    Model,
    Models,
    Corr,
    Task,
    On,
    And,
    Within,
    Order,
    By,
    Exec,
    // dimensions / criteria
    Memory,
    Flops,
    Latency,
    Similarity,
    // units
    Percent,
    Mb,
    Gflops,
    Ms,
    // punctuation
    Lt,
    Le,
    Eq,
    Comma,
    // values
    Number(f64),
    Ident(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Number(n) => write!(f, "{n}"),
            Token::Ident(s) => write!(f, "{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A lexing failure at a byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn ident_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '-' | '_' | '.' | '/' | ':' | '+')
}

/// Tokenize a query string.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        match c {
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let n: f64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("malformed number '{text}'"),
                })?;
                tokens.push(Token::Number(n));
            }
            c if ident_char(c) => {
                let start = i;
                while i < bytes.len() && ident_char(bytes[i]) {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                tokens.push(keyword_or_ident(&word));
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(tokens)
}

fn keyword_or_ident(word: &str) -> Token {
    match word.to_ascii_lowercase().as_str() {
        "select" => Token::Select,
        "model" => Token::Model,
        "models" => Token::Models,
        "corr" => Token::Corr,
        "task" => Token::Task,
        "on" => Token::On,
        "and" => Token::And,
        "within" => Token::Within,
        "order" => Token::Order,
        "by" => Token::By,
        "exec" => Token::Exec,
        "memory" | "mem" => Token::Memory,
        "flops" => Token::Flops,
        "latency" => Token::Latency,
        "similarity" => Token::Similarity,
        "mb" => Token::Mb,
        "gflops" => Token::Gflops,
        "ms" => Token::Ms,
        _ => Token::Ident(word.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        let t = lex("SELECT select SeLeCt").unwrap();
        assert_eq!(t, vec![Token::Select, Token::Select, Token::Select]);
    }

    #[test]
    fn full_query_tokenizes() {
        let t = lex("SELECT model CORR resnetish-50 ON memory <= 80% AND flops < 0.5 GFLOPS WITHIN 0.95").unwrap();
        assert!(t.contains(&Token::Corr));
        assert!(t.contains(&Token::Ident("resnetish-50".into())));
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Percent));
        assert!(t.contains(&Token::Gflops));
        assert!(t.contains(&Token::Number(0.95)));
    }

    #[test]
    fn identifiers_allow_repo_key_characters() {
        let t = lex("hub/google:bit-r50x1.v2").unwrap();
        assert_eq!(t, vec![Token::Ident("hub/google:bit-r50x1.v2".into())]);
    }

    #[test]
    fn numbers_parse_with_fractions() {
        assert_eq!(lex("0.25").unwrap(), vec![Token::Number(0.25)]);
        assert_eq!(lex("100").unwrap(), vec![Token::Number(100.0)]);
    }

    #[test]
    fn malformed_number_is_an_error() {
        let err = lex("1.2.3").unwrap_err();
        assert!(err.message.contains("malformed number"));
    }

    #[test]
    fn unexpected_character_reports_offset() {
        let err = lex("select !").unwrap_err();
        assert_eq!(err.offset, 7);
    }

    #[test]
    fn mem_is_an_alias_for_memory() {
        assert_eq!(lex("mem").unwrap(), vec![Token::Memory]);
    }
}
