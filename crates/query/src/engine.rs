//! The `Sommelier` engine facade (paper Section 6).
//!
//! "Sommelier connects with a user-specified DNN model repository during
//! initialization \[and\] exposes a `query()` API in place of the original
//! interfaces between users and the model repository." Registration
//! publishes a model to the underlying repository, profiles its resources
//! under the configured execution setting, and inserts it into both
//! indices; queries are parsed, planned, and executed as the Section 5.4
//! filter pipeline.
//!
//! [`EquivAnalyzer`] is the production [`PairAnalyzer`]: whole-model
//! analysis via `sommelier-equiv::assess_whole` on seeded probe batches
//! (with the per-model architecture factor of the generalization bound
//! cached by fingerprint), and segment analysis via `assess_replacement`.
//! The analyzer is thread-safe: analyses run concurrently during index
//! construction, results are memoized in a shared
//! [`PairwiseCache`](sommelier_equiv::PairwiseCache) keyed by model
//! fingerprints and a configuration hash, and any randomness is seeded
//! per pair so results never depend on call order.

use crate::ast::{FinalSelection, Query, RefSpec};
use crate::parser::{parse, ParseError};
use crate::plan::{plan, QueryPlan};
use crate::plancache::{normalize_query, PlanCache, PlanCacheStats};
use sommelier_equiv::genbound::architecture_factor;
use sommelier_equiv::whole::{AssessError, GenBoundMode};
use sommelier_equiv::{assess_whole, EquivConfig, PairKey, PairKind, PairwiseCache};
use sommelier_graph::{Fingerprint, Model, TaskKind};
use sommelier_index::lsh::LshConfig;
use sommelier_index::semantic::SemanticIndexConfig;
use sommelier_index::{CandidateKind, PairAnalyzer, ResourceIndex, SemanticIndex};
use sommelier_parallel::{RcuCell, ThreadPool};
use sommelier_repo::{ModelRepository, RepoError};
use sommelier_runtime::metrics::{counters, latency, qor_difference};
use sommelier_runtime::{DeviceProfile, ExecSetting, ResourceProfile};
use sommelier_tensor::{mix64, Prng, Tensor};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Engine configuration (the knob surface of paper Section 5.5).
#[derive(Clone, Debug)]
pub struct SommelierConfig {
    /// Whole-model equivalence settings (threshold is per-query; this
    /// carries the generalization-bound mode).
    pub equiv: EquivConfig,
    /// Acceptable QoR difference for segment replacements recorded as
    /// synthesized candidates.
    pub segment_epsilon: f64,
    /// Semantic index knobs (sampling, segment analysis on/off).
    pub index: SemanticIndexConfig,
    /// Resource index LSH knobs.
    pub lsh: LshConfig,
    /// Rows in the seeded validation probe used for pairwise analysis.
    pub validation_rows: usize,
    /// Execution setting under which resource profiles are taken.
    pub exec_setting: ExecSetting,
    /// Master seed for probes and index sampling.
    pub seed: u64,
    /// Worker lanes for index construction and query execution.
    /// `1` = fully sequential (bit-for-bit reference behavior), `0` =
    /// auto-detect available parallelism.
    pub jobs: usize,
    /// Pairwise-analysis cache capacity in entries; `0` disables
    /// memoization entirely.
    pub cache_cap: usize,
    /// Plan/result cache capacity in entries (the read path's memo of
    /// resolved plans and result sets, keyed by normalized query text
    /// and snapshot epoch); `0` disables query caching.
    pub query_cache_cap: usize,
}

impl Default for SommelierConfig {
    fn default() -> Self {
        SommelierConfig {
            equiv: EquivConfig::default(),
            segment_epsilon: 0.10,
            index: SemanticIndexConfig::default(),
            lsh: LshConfig::default(),
            validation_rows: 256,
            exec_setting: ExecSetting::default_cpu(),
            seed: 0x50_4d_4d_31,
            jobs: 1,
            cache_cap: 4096,
            query_cache_cap: 1024,
        }
    }
}

/// One query answer.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    /// Model key (a repository key, or `host+donor` for synthesized
    /// models).
    pub key: String,
    /// Functional-equivalence score to the reference.
    pub score: f64,
    /// QoR difference bound behind the score.
    pub diff_bound: f64,
    /// The candidate's resource profile.
    pub profile: ResourceProfile,
    /// Relation provenance (whole / transitive / synthesized).
    pub kind: CandidateKind,
}

/// Query/processing failures.
#[derive(Debug)]
pub enum QueryError {
    /// The query text failed to parse.
    Parse(ParseError),
    /// The named reference model is not registered.
    UnknownReference(String),
    /// No default reference is registered for the task.
    NoDefaultReference(TaskKind),
    /// Repository failure during registration.
    Repo(RepoError),
    /// The model could not be analyzed (e.g. failed execution).
    Analysis(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::UnknownReference(k) => {
                write!(f, "reference model '{k}' is not registered")
            }
            QueryError::NoDefaultReference(t) => {
                write!(f, "no default reference model for task '{t}'")
            }
            QueryError::Repo(e) => write!(f, "{e}"),
            QueryError::Analysis(e) => write!(f, "analysis failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<RepoError> for QueryError {
    fn from(e: RepoError) -> Self {
        QueryError::Repo(e)
    }
}

/// How [`Sommelier::connect_or_recover`] brought the engine up.
#[derive(Debug)]
pub enum SnapshotRecovery {
    /// The persisted snapshot loaded cleanly.
    Loaded,
    /// No snapshot existed (or it vanished); indices were rebuilt from
    /// the repository.
    RebuiltMissing,
    /// The snapshot was unreadable: it was quarantined to the contained
    /// path and the indices were rebuilt from the repository.
    RebuiltQuarantined(std::path::PathBuf),
}

impl SnapshotRecovery {
    /// Whether the indices had to be rebuilt.
    pub fn rebuilt(&self) -> bool {
        !matches!(self, SnapshotRecovery::Loaded)
    }
}

/// The production pairwise analyzer.
///
/// Thread-safe ([`Sync`]): probe batches and architecture factors are
/// memoized behind mutexes, expensive analysis results go through a
/// shared [`PairwiseCache`] keyed by `(fingerprint_a, fingerprint_b,
/// kind, config_hash)`, and segment-replacement randomness is seeded per
/// pair from the model fingerprints — so the analyzer returns the same
/// answer for a pair no matter which worker asks, or in what order.
pub struct EquivAnalyzer {
    equiv: EquivConfig,
    segment_epsilon: f64,
    validation_rows: usize,
    probes: Mutex<HashMap<usize, Tensor>>,
    arch_factors: Mutex<HashMap<Fingerprint, f64>>,
    cache: Arc<PairwiseCache>,
    /// Hash of every knob that influences analysis results; part of the
    /// cache key so entries can never leak across configurations.
    config_hash: u64,
    seed: u64,
}

impl EquivAnalyzer {
    /// Create an analyzer with the given settings and no memoization
    /// (a disabled cache). Use [`EquivAnalyzer::with_cache`] to share a
    /// cache with the engine.
    pub fn new(
        equiv: EquivConfig,
        segment_epsilon: f64,
        validation_rows: usize,
        seed: u64,
    ) -> Self {
        let gb = match equiv.genbound {
            GenBoundMode::Off => [0u64; 4],
            GenBoundMode::On(c) => [
                1,
                c.constant.to_bits(),
                c.gamma.to_bits(),
                c.concentration.to_bits(),
            ],
        };
        let config_hash = mix64(&[
            equiv.epsilon.to_bits(),
            gb[0],
            gb[1],
            gb[2],
            gb[3],
            segment_epsilon.to_bits(),
            validation_rows as u64,
            seed,
        ]);
        EquivAnalyzer {
            equiv,
            segment_epsilon,
            validation_rows,
            probes: Mutex::new(HashMap::new()),
            arch_factors: Mutex::new(HashMap::new()),
            cache: Arc::new(PairwiseCache::new(0)),
            config_hash,
            seed,
        }
    }

    /// Attach a (shared) pairwise-analysis cache.
    pub fn with_cache(mut self, cache: Arc<PairwiseCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The seeded probe batch for a given input width (cached).
    pub fn probe(&self, input_width: usize) -> Tensor {
        let rows = self.validation_rows;
        let seed = self.seed;
        self.probes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(input_width)
            .or_insert_with(|| {
                let mut rng = Prng::seed_from_u64(seed ^ (input_width as u64).rotate_left(17));
                Tensor::gaussian(rows, input_width, 1.0, &mut rng)
            })
            .clone()
    }

    fn cached_factor(&self, model: &Model, probe: &Tensor) -> f64 {
        let fp = Fingerprint::of_model(model);
        if let Some(f) = self
            .arch_factors
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&fp)
        {
            return *f;
        }
        let cfg = match self.equiv.genbound {
            GenBoundMode::On(c) => c,
            GenBoundMode::Off => return 0.0,
        };
        // Computed outside the lock — the factor is a pure function of
        // the model, so concurrent duplicate computation is merely
        // wasted work, never divergence.
        let f = architecture_factor(model, probe, &cfg);
        self.arch_factors
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(fp, f);
        f
    }

    fn pair_key_fp(&self, kind: PairKind, a: Fingerprint, b: Fingerprint) -> PairKey {
        PairKey {
            a: a.0,
            b: b.0,
            kind,
            config_hash: self.config_hash,
        }
    }

    fn pair_key(&self, kind: PairKind, a: &Model, b: &Model) -> PairKey {
        self.pair_key_fp(kind, Fingerprint::of_model(a), Fingerprint::of_model(b))
    }
}

impl PairAnalyzer for EquivAnalyzer {
    fn whole_diff(&self, reference: &Model, candidate: &Model) -> Option<f64> {
        let key = self.pair_key(PairKind::Whole, reference, candidate);
        if let Some(cached) = self.cache.get(&key) {
            return cached;
        }
        let probe = self.probe(reference.input_width());
        // Empirical difference without the (expensive, uncached) built-in
        // bound path; the bound term is recomposed from cached factors.
        let empirical_cfg = EquivConfig {
            epsilon: self.equiv.epsilon,
            genbound: GenBoundMode::Off,
        };
        let result = match assess_whole(reference, candidate, &probe, &empirical_cfg) {
            Ok(report) => {
                let term = match self.equiv.genbound {
                    GenBoundMode::Off => 0.0,
                    GenBoundMode::On(gb) => {
                        let fa = self.cached_factor(reference, &probe);
                        let fb = self.cached_factor(candidate, &probe);
                        let n = (probe.rows().max(1) as f64).sqrt();
                        gb.constant * 0.5 * (fa + fb) / (gb.gamma * n) + gb.concentration / n
                    }
                };
                Some(report.empirical_diff + term)
            }
            Err(AssessError::Incompatible(_)) | Err(AssessError::Exec(_)) => None,
        };
        self.cache.insert(key, result);
        result
    }

    fn segment_diff(&self, host: &Model, donor: &Model) -> Option<f64> {
        let key = self.pair_key(PairKind::Segment, host, donor);
        if let Some(cached) = self.cache.get(&key) {
            return cached;
        }
        let probe = self.probe(host.input_width());
        // A small slice suffices for noise-injection estimation.
        let rows = probe.rows().min(16);
        let small = if probe.rows() > rows {
            let slice: Vec<Tensor> = (0..rows).map(|r| probe.row_tensor(r)).collect();
            Tensor::stack_rows(&slice)
        } else {
            probe
        };
        // Per-pair seeding: the noise draws are a pure function of
        // (analyzer seed, host, donor), never of analysis order.
        let mut rng = Prng::seed_from_u64(mix64(&[self.seed, key.a, key.b, 0x5e6]));
        let result = sommelier_equiv::assessment::assess_replacement(
            host,
            donor,
            &small,
            self.segment_epsilon,
            &mut rng,
        )
        .ok()
        .and_then(|assessment| assessment.equivalent.then_some(assessment.qor_diff));
        self.cache.insert(key, result);
        result
    }

    fn cached_whole_diff(
        &self,
        reference: Fingerprint,
        candidate: Fingerprint,
    ) -> Option<Option<f64>> {
        // `peek` (not `get`): a memo miss falls through to the full
        // `whole_diff` path, whose own `get` books the miss — peek
        // counting too would double-book it.
        self.cache
            .peek(&self.pair_key_fp(PairKind::Whole, reference, candidate))
    }

    fn cached_segment_diff(&self, host: Fingerprint, donor: Fingerprint) -> Option<Option<f64>> {
        self.cache
            .peek(&self.pair_key_fp(PairKind::Segment, host, donor))
    }
}

/// An immutable, atomically published view of the engine's queryable
/// state: both indices, the default references, and the publication
/// epoch that stamps them as one consistent generation.
///
/// Mutations never touch a published snapshot — the engine's builder
/// side constructs the *next* snapshot and swaps it in through an
/// [`RcuCell`], so a query pins exactly one epoch for its whole
/// lifetime and can never observe a half-applied registration.
pub struct EngineSnapshot {
    /// The semantic index at this epoch.
    pub semantic: SemanticIndex,
    /// The resource index at this epoch.
    pub resource: ResourceIndex,
    /// Default reference model per task at this epoch.
    pub default_refs: HashMap<TaskKind, String>,
    /// Publication generation: the count of index mutations published
    /// since the engine connected (deterministic — a pure function of
    /// the mutation sequence, never of scheduling).
    pub epoch: u64,
}

/// One lane's answer from [`SommelierReader::query_batch`].
#[derive(Debug)]
pub struct BatchQueryItem {
    /// The query's result set (or its failure).
    pub results: Result<Vec<QueryResult>, QueryError>,
    /// Wall-clock execution time of this lane, milliseconds.
    pub latency_ms: f64,
    /// The snapshot epoch the query was served from. Every item of one
    /// batch carries the same epoch — the batch pins one snapshot.
    pub epoch: u64,
}

/// The lock-free read side of the engine.
///
/// A reader holds the published-snapshot cell, the worker pool, and the
/// plan/result cache — all behind `Arc`s — so it is `Clone + Send +
/// Sync` and can be handed to any number of serving threads. Queries
/// pin the current [`EngineSnapshot`] and execute against it with zero
/// locking: a concurrent reindex publishes a *new* snapshot and never
/// blocks (or is blocked by) in-flight queries.
#[derive(Clone)]
pub struct SommelierReader {
    repo: Arc<dyn ModelRepository>,
    published: Arc<RcuCell<EngineSnapshot>>,
    pool: Arc<ThreadPool>,
    plan_cache: Arc<PlanCache>,
    config: SommelierConfig,
}

impl SommelierReader {
    /// Pin the currently published snapshot. The returned `Arc` stays
    /// valid (and internally consistent) for as long as the caller
    /// holds it, regardless of concurrent publications.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.published.pin()
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.published.pin().epoch
    }

    /// A reader driving the same engine through its own pool of `jobs`
    /// lanes (`0` = auto) — the snapshot cell and plan cache stay
    /// shared, so results are identical at any lane count.
    pub fn with_pool(&self, jobs: usize) -> Self {
        let mut reader = self.clone();
        reader.pool = Arc::new(ThreadPool::new(sommelier_parallel::effective_jobs(jobs)));
        reader
    }

    /// Worker lanes this reader fans batches across.
    pub fn jobs(&self) -> usize {
        self.pool.jobs()
    }

    /// Counters of the plan/result cache; also publishes them to the
    /// process-wide metrics registry (`plan_cache.*`).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.publish_metrics();
        self.plan_cache.stats()
    }

    /// Execute a textual query against the current snapshot.
    pub fn query(&self, text: &str) -> Result<Vec<QueryResult>, QueryError> {
        let snap = self.published.pin();
        counters::set("query.snapshot_epoch", snap.epoch);
        self.query_on(&snap, text)
    }

    /// Execute a programmatically built query against the current
    /// snapshot (bypasses the text-keyed plan cache).
    pub fn query_ast(&self, query: &Query) -> Result<Vec<QueryResult>, QueryError> {
        let snap = self.published.pin();
        counters::set("query.snapshot_epoch", snap.epoch);
        self.query_ast_on(&snap, query)
    }

    /// Execute a batch of textual queries, fanned across the reader's
    /// pool. The whole batch pins *one* snapshot, so every item is
    /// served from the same epoch; per-lane latency is recorded into
    /// the exact `query.batch.latency_ms` series (p50/p90/p99 via
    /// [`latency::quantiles`]) and merged into the mergeable
    /// `query.batch_ms` histogram — one batched merge, not one
    /// registry-lock acquisition per item — so concurrent readers (the
    /// serving daemon) aggregate tail latency without contending.
    /// Items come back in input order, and the result sets are
    /// identical at any lane count.
    pub fn query_batch(&self, texts: &[String]) -> Vec<BatchQueryItem> {
        let snap = self.published.pin();
        counters::set("query.snapshot_epoch", snap.epoch);
        let items = self.pool.par_map(texts, |text| {
            let start = Instant::now();
            let results = self.query_on(&snap, text);
            BatchQueryItem {
                results,
                latency_ms: start.elapsed().as_secs_f64() * 1e3,
                epoch: snap.epoch,
            }
        });
        let mut local = latency::LocalRecorder::new();
        for item in &items {
            latency::record("query.batch.latency_ms", item.latency_ms);
            local.record(item.latency_ms);
        }
        local.flush_into(&latency::histogram("query.batch_ms"));
        items
    }

    /// The text-keyed hot path: probe the plan/result cache before
    /// even parsing — a hit skips the parser, planner, and both index
    /// filters outright (the memoized result is exact: the snapshot is
    /// immutable and execution is deterministic).
    fn query_on(
        &self,
        snap: &EngineSnapshot,
        text: &str,
    ) -> Result<Vec<QueryResult>, QueryError> {
        let normalized = normalize_query(text);
        if let Some((_, results)) = self.plan_cache.get(snap.epoch, &normalized) {
            return Ok(results);
        }
        let ast = parse(&normalized)?;
        self.query_ast_cached(snap, &ast, Some(&normalized))
    }

    fn query_ast_on(
        &self,
        snap: &EngineSnapshot,
        query: &Query,
    ) -> Result<Vec<QueryResult>, QueryError> {
        self.query_ast_cached(snap, query, None)
    }

    fn query_ast_cached(
        &self,
        snap: &EngineSnapshot,
        query: &Query,
        cache_text: Option<&str>,
    ) -> Result<Vec<QueryResult>, QueryError> {
        let reference_key = match &query.reference {
            RefSpec::Named(k) => {
                if !snap.semantic.contains(k) {
                    return Err(QueryError::UnknownReference(k.clone()));
                }
                k.clone()
            }
            RefSpec::Task(t) => snap
                .default_refs
                .get(t)
                .cloned()
                .ok_or(QueryError::NoDefaultReference(*t))?,
        };
        // An EXEC clause overrides the indexed profiles: models are
        // re-profiled under the requested execution setting (paper
        // Section 5.3: hardware-dependent metrics are collected per
        // platform; Figure 7's exec-spec). Live re-profiling reads the
        // repository — which sits outside the snapshot — so EXEC
        // queries are never cached.
        if let Some(setting) = self.exec_setting_of(query)? {
            let ref_model = self.repo.load(&reference_key)?;
            let ref_profile = ResourceProfile::under(&ref_model, &setting);
            let plan = plan(query, &reference_key, &ref_profile);
            return Ok(self.execute_plan(snap, &plan, &ref_profile, Some(&setting)));
        }
        let ref_profile = *snap
            .resource
            .profile_of(&reference_key)
            .ok_or_else(|| QueryError::UnknownReference(reference_key.clone()))?;
        let plan = plan(query, &reference_key, &ref_profile);
        let results = self.execute_plan(snap, &plan, &ref_profile, None);
        if let Some(text) = cache_text {
            self.plan_cache
                .insert(snap.epoch, text, plan, results.clone());
        }
        Ok(results)
    }

    /// Parse the query's `EXEC` clause into an execution setting.
    /// Recognized keys: `device` (`cpu` / `gpu` / `edge`), `batch`
    /// (positive integer), `workspace` (float multiplier ≥ 1).
    fn exec_setting_of(&self, query: &Query) -> Result<Option<ExecSetting>, QueryError> {
        if query.exec_spec.is_empty() {
            return Ok(None);
        }
        let mut setting = self.config.exec_setting.clone();
        for (key, value) in &query.exec_spec {
            match key.as_str() {
                "device" => {
                    setting.device = match value.as_str() {
                        "cpu" => DeviceProfile::cpu(),
                        "gpu" => DeviceProfile::gpu(),
                        "edge" => DeviceProfile::edge(),
                        other => {
                            return Err(QueryError::Analysis(format!(
                                "unknown EXEC device '{other}' (expected cpu/gpu/edge)"
                            )))
                        }
                    }
                }
                "batch" => {
                    setting.batch_size = value.parse::<f64>().ok().map(|v| v as usize).filter(|&b| b >= 1).ok_or_else(
                        || {
                            QueryError::Analysis(format!(
                                "EXEC batch must be a positive integer, got '{value}'"
                            ))
                        },
                    )?;
                }
                "workspace" => {
                    setting.workspace_factor = value.parse::<f64>().ok().filter(|w| *w >= 1.0).ok_or_else(|| {
                        QueryError::Analysis(format!(
                            "EXEC workspace must be a multiplier >= 1, got '{value}'"
                        ))
                    })?;
                }
                other => {
                    return Err(QueryError::Analysis(format!(
                        "unknown EXEC setting '{other}' (expected device/batch/workspace)"
                    )))
                }
            }
        }
        Ok(Some(setting))
    }

    fn execute_plan(
        &self,
        snap: &EngineSnapshot,
        plan: &QueryPlan,
        ref_profile: &ResourceProfile,
        setting: Option<&ExecSetting>,
    ) -> Vec<QueryResult> {
        // Statically empty plans short-circuit before touching either
        // index: a zero limit returns nothing by definition, and scores
        // live in [0, 1] so a threshold above 1 admits nothing.
        if plan.limit == 0 || plan.min_score > 1.0 {
            return Vec::new();
        }
        // Stage 1: semantic filter — an early-exit threshold scan over
        // the entry's score-sorted candidate list.
        let candidates: Vec<_> = snap
            .semantic
            .lookup_key(&plan.reference_key, plan.min_score)
            .into_iter()
            .filter(|c| c.key != plan.reference_key)
            .collect();
        counters::add("query.candidates_scored", candidates.len() as u64);
        // No semantic candidates ⇒ no results; skip the resource probe.
        if candidates.is_empty() {
            return Vec::new();
        }

        // Stage 2: resource filter, fanned out across the pool. With an
        // explicit execution setting the candidates are re-profiled on
        // the fly (each re-profile is an independent task); otherwise the
        // prebuilt index answers the range query with parallel
        // multi-probe LSH table reads. `par_map` keeps candidate order,
        // so results are identical to the sequential pipeline.
        let admitted: Option<std::collections::HashSet<String>> = match setting {
            Some(_) => None,
            None => Some(
                snap.resource
                    .query_with(&self.pool, &plan.constraint)
                    .into_iter()
                    .collect(),
            ),
        };
        let profile_of = |key: &str| -> Option<ResourceProfile> {
            match setting {
                Some(s) => {
                    let model = self.repo.load(key).ok()?;
                    Some(ResourceProfile::under(&model, s))
                }
                None => snap.resource.profile_of(key).copied(),
            }
        };
        let score_one = |c: &&sommelier_index::CandidateRecord| -> Option<QueryResult> {
            let profile = match &c.kind {
                // Synthesized models share the host's (= reference's)
                // structure, hence its resource profile.
                CandidateKind::Synthesized { .. } => {
                    if !plan.constraint.admits(ref_profile) {
                        return None;
                    }
                    *ref_profile
                }
                _ => {
                    if let Some(admitted) = &admitted {
                        if !admitted.contains(&c.key) {
                            return None;
                        }
                    }
                    let p = profile_of(&c.key)?;
                    if !plan.constraint.admits(&p) {
                        return None;
                    }
                    p
                }
            };
            Some(QueryResult {
                key: c.key.clone(),
                score: c.score,
                diff_bound: c.diff_bound,
                profile,
                kind: c.kind.clone(),
            })
        };
        let mut results: Vec<QueryResult> = self
            .pool
            .par_map(&candidates, score_one)
            .into_iter()
            .flatten()
            .collect();

        // Stage 3: final selection. Sorting uses `total_cmp` so the
        // pipeline never panics on non-finite scores or profiles (a
        // corrupted snapshot is the lint layer's problem to report, not
        // a reason to abort query execution).
        match plan.selection {
            FinalSelection::Similarity => {
                results.sort_by(|a, b| b.score.total_cmp(&a.score))
            }
            FinalSelection::Memory => {
                results.sort_by(|a, b| a.profile.memory_mb.total_cmp(&b.profile.memory_mb))
            }
            FinalSelection::Flops => {
                results.sort_by(|a, b| a.profile.gflops.total_cmp(&b.profile.gflops))
            }
            FinalSelection::Latency => {
                results.sort_by(|a, b| a.profile.latency_ms.total_cmp(&b.profile.latency_ms))
            }
        }
        results.truncate(plan.limit);
        results
    }
}

/// A coalesced set of registrations and unregistrations, applied by
/// [`Sommelier::apply`] as *one* logical mutation: one pairwise-analysis
/// fan-out over the pool, one snapshot publication, one epoch bump —
/// however many models it touches.
///
/// A key appearing in both lists is a replacement (remove + add in the
/// same batch); the repository copy is overwritten.
#[derive(Clone, Debug, Default)]
pub struct MutationBatch {
    removes: Vec<String>,
    adds: Vec<Model>,
}

impl MutationBatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a key for unregistration (the repository file stays in
    /// place, exactly like [`Sommelier::unregister`]).
    pub fn unregister(mut self, key: impl Into<String>) -> Self {
        self.removes.push(key.into());
        self
    }

    /// Queue a model for registration — or replacement, when its name is
    /// also queued for unregistration.
    pub fn register(mut self, model: Model) -> Self {
        self.adds.push(model);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.removes.is_empty() && self.adds.is_empty()
    }
}

/// The Sommelier query engine.
///
/// The engine is split along the read/write axis: mutators build the
/// next [`EngineSnapshot`] from this builder-side state and publish it
/// atomically (RCU), while all query execution lives on the
/// [`SommelierReader`] — clone it via [`Sommelier::reader`] to serve
/// queries from other threads while this handle keeps registering.
pub struct Sommelier {
    repo: Arc<dyn ModelRepository>,
    semantic: SemanticIndex,
    resource: ResourceIndex,
    analyzer: EquivAnalyzer,
    default_refs: HashMap<TaskKind, String>,
    /// Task kind per indexed key — the metadata mutations need (default
    /// reference re-derivation) without touching the repository.
    tasks: HashMap<String, TaskKind>,
    config: SommelierConfig,
    /// Worker pool for index construction and query execution
    /// (`config.jobs` lanes; one lane ⇒ everything runs inline).
    pool: Arc<ThreadPool>,
    /// Memoized pairwise-analysis results, shared with the analyzer.
    cache: Arc<PairwiseCache>,
    /// Publication epoch of the last published snapshot (a
    /// deterministic count of mutations, not a wall-clock artifact).
    epoch: u64,
    /// On-disk encoding that served the restored indices (`None` when
    /// the engine was built fresh rather than loaded from a snapshot).
    snapshot_format: Option<sommelier_index::SnapshotFormat>,
    /// The read side; holds the published-snapshot cell.
    reader: SommelierReader,
}

impl Sommelier {
    /// Connect to a repository. Models already present can be indexed with
    /// [`Sommelier::index_existing`].
    pub fn connect(repo: Arc<dyn ModelRepository>, config: SommelierConfig) -> Self {
        let semantic = SemanticIndex::new(config.index, config.seed);
        let resource = ResourceIndex::new(config.lsh, config.seed);
        Self::assemble(
            repo,
            config,
            semantic,
            resource,
            HashMap::new(),
            HashMap::new(),
            0,
        )
    }

    /// Build the engine around prepared indices at a given epoch,
    /// publishing them as the initial snapshot.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        repo: Arc<dyn ModelRepository>,
        config: SommelierConfig,
        semantic: SemanticIndex,
        resource: ResourceIndex,
        default_refs: HashMap<TaskKind, String>,
        tasks: HashMap<String, TaskKind>,
        epoch: u64,
    ) -> Self {
        let pool = Arc::new(ThreadPool::new(sommelier_parallel::effective_jobs(
            config.jobs,
        )));
        let cache = Arc::new(PairwiseCache::new(config.cache_cap));
        let published = Arc::new(RcuCell::new(Arc::new(EngineSnapshot {
            semantic: semantic.clone(),
            resource: resource.clone(),
            default_refs: default_refs.clone(),
            epoch,
        })));
        let reader = SommelierReader {
            repo: Arc::clone(&repo),
            published,
            pool: Arc::clone(&pool),
            plan_cache: Arc::new(PlanCache::new(config.query_cache_cap)),
            config: config.clone(),
        };
        Sommelier {
            semantic,
            resource,
            analyzer: EquivAnalyzer::new(
                config.equiv,
                config.segment_epsilon,
                config.validation_rows,
                config.seed,
            )
            .with_cache(Arc::clone(&cache)),
            default_refs,
            tasks,
            repo,
            config,
            pool,
            cache,
            epoch,
            snapshot_format: None,
            reader,
        }
    }

    /// Publish the builder state as the next immutable snapshot. Every
    /// mutator ends here; in-flight queries keep their pinned epoch and
    /// new queries pick this one up — nobody ever blocks on the swap.
    /// Cheap by construction: both indices are structurally shared
    /// (`Arc`-backed members), so "cloning" them bumps reference counts
    /// instead of deep-copying entry tables — a mutation pays for the
    /// entries it touched, never for repository size.
    fn publish_snapshot(&mut self) {
        self.epoch += 1;
        self.reader.published.publish(Arc::new(EngineSnapshot {
            semantic: self.semantic.clone(),
            resource: self.resource.clone(),
            default_refs: self.default_refs.clone(),
            epoch: self.epoch,
        }));
    }

    /// Connect with default configuration.
    pub fn connect_default(repo: Arc<dyn ModelRepository>) -> Self {
        Self::connect(repo, SommelierConfig::default())
    }

    /// Number of indexed models.
    pub fn len(&self) -> usize {
        self.semantic.len()
    }

    pub fn is_empty(&self) -> bool {
        self.semantic.is_empty()
    }

    /// Immutable access to the semantic index (for inspection/experiments).
    pub fn semantic_index(&self) -> &SemanticIndex {
        &self.semantic
    }

    /// Immutable access to the resource index.
    pub fn resource_index(&self) -> &ResourceIndex {
        &self.resource
    }

    /// Worker lanes this engine runs on.
    pub fn jobs(&self) -> usize {
        self.pool.jobs()
    }

    /// The current publication epoch (bumped by every mutation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A handle to the lock-free read side. Clone freely across
    /// threads; every clone serves from whatever snapshot is current
    /// when it queries, and keeps working while this engine mutates.
    pub fn reader(&self) -> SommelierReader {
        self.reader.clone()
    }

    /// Counters of the plan/result cache (also published as
    /// `plan_cache.*` metrics).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.reader.plan_cache_stats()
    }

    /// Counters of the pairwise-analysis cache. Also publishes them to
    /// the process-wide metrics registry (`pairwise_cache.*`).
    pub fn cache_stats(&self) -> sommelier_equiv::CacheStats {
        self.cache.publish_metrics();
        self.cache.stats()
    }

    /// Publish a model to the repository and index it.
    pub fn register(&mut self, model: &Model) -> Result<(), QueryError> {
        self.repo.publish(&model.name, model, false)?;
        self.index_model(model)
    }

    /// Apply a coalesced mutation batch: one pairwise-analysis fan-out,
    /// one snapshot publication, one epoch bump — no matter how many
    /// models it registers, replaces, or unregisters. Additions publish
    /// to the repository (overwriting when the same key is also queued
    /// for removal — a replacement); removals leave the repository file
    /// in place. A batch that changes nothing publishes nothing and
    /// leaves the epoch untouched. Returns the number of effective
    /// mutations applied.
    pub fn apply(&mut self, batch: MutationBatch) -> Result<usize, QueryError> {
        for model in &batch.adds {
            let overwrite = batch.removes.iter().any(|k| k == &model.name);
            self.repo.publish(&model.name, model, overwrite)?;
        }
        let setting = self.config.exec_setting.clone();
        let profiles = self
            .pool
            .par_map(&batch.adds, |m| ResourceProfile::under(m, &setting));
        let mut effective_removes: Vec<&str> = batch
            .removes
            .iter()
            .map(String::as_str)
            .filter(|k| self.semantic.contains(k))
            .collect();
        effective_removes.sort_unstable();
        effective_removes.dedup();
        let count = batch.adds.len() + effective_removes.len();
        if self.apply_indexed(&batch.removes, &batch.adds, &profiles) {
            self.publish_snapshot();
            return Ok(count);
        }
        Ok(0)
    }

    /// Index every repository model that is not yet indexed — the bulk
    /// build path: resource profiling and all sampled pairwise analyses
    /// fan out across the engine's pool with per-model task granularity,
    /// while index bookkeeping stays sequential in repository key order
    /// (so the result is byte-identical at any `jobs` setting).
    pub fn index_existing(&mut self) -> Result<usize, QueryError> {
        let mut models = Vec::new();
        // `try_keys`, not `keys`: a backend that cannot produce a
        // complete listing must fail the build, not silently index a
        // truncated repository.
        for key in self.repo.try_keys()? {
            if self.semantic.contains(&key) {
                continue;
            }
            models.push(self.repo.load(&key)?);
        }
        if models.is_empty() {
            return Ok(0);
        }
        let setting = self.config.exec_setting.clone();
        let profiles = self
            .pool
            .par_map(&models, |m| ResourceProfile::under(m, &setting));
        if self.apply_indexed(&[], &models, &profiles) {
            self.publish_snapshot();
        }
        Ok(models.len())
    }

    fn index_model(&mut self, model: &Model) -> Result<(), QueryError> {
        let profile = ResourceProfile::under(model, &self.config.exec_setting);
        if self.apply_indexed(&[], std::slice::from_ref(model), &[profile]) {
            self.publish_snapshot();
        }
        Ok(())
    }

    /// Replace a model under an existing key: the old index entries are
    /// purged, the repository copy is overwritten, and the new version is
    /// re-analyzed and re-indexed (a published model update, e.g. a new
    /// fine-tune under the same name). One logical mutation: exactly one
    /// snapshot publication and epoch bump — not the remove-then-insert
    /// pair of publishes this path historically produced.
    pub fn reregister(&mut self, model: &Model) -> Result<(), QueryError> {
        self.repo.publish(&model.name, model, true)?;
        let profile = ResourceProfile::under(model, &self.config.exec_setting);
        let removes = [model.name.clone()];
        if self.apply_indexed(&removes, std::slice::from_ref(model), &[profile]) {
            self.publish_snapshot();
        }
        Ok(())
    }

    /// Remove a model from both indices (the repository file is left in
    /// place; `publish` can re-register it later). Returns whether the key
    /// was indexed.
    pub fn unregister(&mut self, key: &str) -> bool {
        let removes = [key.to_string()];
        let removed = self.apply_indexed(&removes, &[], &[]);
        if removed {
            self.publish_snapshot();
        }
        removed
    }

    /// Apply an already-profiled batch to the builder-side indices:
    /// removals and insertions land in one semantic-index update (a
    /// single analysis fan-out over the pool), default references are
    /// maintained from indexed metadata with **zero repository reads**,
    /// and nothing is published — callers publish exactly once per
    /// logical mutation. Returns whether anything changed.
    fn apply_indexed(
        &mut self,
        removes: &[String],
        models: &[Model],
        profiles: &[ResourceProfile],
    ) -> bool {
        debug_assert_eq!(models.len(), profiles.len());
        let mutated = !models.is_empty()
            || removes
                .iter()
                .any(|k| self.semantic.contains(k) || self.resource.profile_of(k).is_some());
        if !mutated {
            return false;
        }
        let repo = Arc::clone(&self.repo);
        let resolve = move |k: &str| repo.load(k).ok();
        self.semantic
            .apply_batch_with(&self.pool, removes, models, &resolve, &self.analyzer);
        for key in removes {
            self.resource.remove(key);
            self.tasks.remove(key);
        }
        // Default references orphaned by the removals are re-derived
        // from the engine's own task map (lexicographically smallest
        // surviving key per task — the same choice a repository sweep
        // used to make, without reloading a single model).
        let broken: Vec<TaskKind> = self
            .default_refs
            .iter()
            .filter(|(_, key)| !self.tasks.contains_key(*key))
            .map(|(task, _)| *task)
            .collect();
        if !broken.is_empty() {
            self.default_refs
                .retain(|_, key| self.tasks.contains_key(key));
            let mut survivors: Vec<&String> = self.tasks.keys().collect();
            survivors.sort();
            for key in survivors {
                let task = self.tasks[key];
                if broken.contains(&task) {
                    self.default_refs
                        .entry(task)
                        .or_insert_with(|| key.clone());
                }
            }
        }
        for (m, p) in models.iter().zip(profiles) {
            self.resource.insert(&m.name, *p);
            self.tasks.insert(m.name.clone(), m.task);
            self.default_refs
                .entry(m.task)
                .or_insert_with(|| m.name.clone());
        }
        true
    }

    /// Override the default reference model for a task.
    pub fn set_default_reference(&mut self, task: TaskKind, key: impl Into<String>) {
        self.default_refs.insert(task, key.into());
        self.publish_snapshot();
    }

    /// Execute a textual query (paper Figure 7 syntax) against the
    /// current published snapshot.
    pub fn query(&self, text: &str) -> Result<Vec<QueryResult>, QueryError> {
        self.reader.query(text)
    }

    /// Execute a programmatically built query.
    pub fn query_ast(&self, query: &Query) -> Result<Vec<QueryResult>, QueryError> {
        self.reader.query_ast(query)
    }

    /// Execute a batch of textual queries fanned across the engine's
    /// pool; see [`SommelierReader::query_batch`].
    pub fn query_batch(&self, texts: &[String]) -> Vec<BatchQueryItem> {
        self.reader.query_batch(texts)
    }

    /// Materialize a query result into a runnable model.
    ///
    /// Plain keys load from the repository. Synthesized keys
    /// (`host+donor`, paper Section 5.2 case ii) are built on demand:
    /// the donor's matched segments are spliced into the host.
    pub fn materialize(&self, key: &str) -> Result<Model, QueryError> {
        if let Ok(model) = self.repo.load(key) {
            return Ok(model);
        }
        let Some((host_key, donor_key)) = key.split_once('+') else {
            return Err(QueryError::UnknownReference(key.to_string()));
        };
        let host = self.repo.load(host_key)?;
        let donor = self.repo.load(donor_key)?;
        // The index certified the replacement when it recorded the
        // candidate; materialization just re-derives the structural match
        // and splices every matched segment.
        let segments =
            sommelier_equiv::segment::find_matched_segments(&host, &donor, 2);
        if segments.is_empty() {
            return Err(QueryError::Analysis(format!(
                "no structurally matched segments between '{host_key}' and '{donor_key}'"
            )));
        }
        let seg_refs: Vec<&sommelier_equiv::MatchedSegment> = segments.iter().collect();
        let mut model =
            sommelier_equiv::assessment::replace_segments(&host, &donor, &seg_refs);
        model.name = key.to_string();
        Ok(model)
    }

    /// Persist both indices to a snapshot file (paper Section 5.5:
    /// indices are lightweight and can be populated to disk), stamped
    /// with the current publication epoch. The on-disk encoding follows
    /// the path extension: `.somb` writes the binary snapshot format,
    /// anything else writes JSON.
    pub fn save_indices(&self, path: &std::path::Path) -> Result<(), QueryError> {
        match sommelier_index::SnapshotFormat::for_path(path) {
            sommelier_index::SnapshotFormat::Binary => {
                sommelier_index::persist::save_binary(&self.semantic, &self.resource, self.epoch, path)
            }
            sommelier_index::SnapshotFormat::Json => {
                sommelier_index::persist::save(&self.semantic, &self.resource, self.epoch, path)
            }
        }
        .map_err(|e| QueryError::Analysis(e.to_string()))
    }

    /// The on-disk encoding the restored indices were served from:
    /// `Some` after a snapshot load (or post-rebuild resave), `None` on
    /// an engine built fresh in memory.
    pub fn snapshot_format(&self) -> Option<sommelier_index::SnapshotFormat> {
        self.snapshot_format
    }

    /// Connect to a repository restoring previously persisted indices —
    /// registration analysis does not have to be repeated after a
    /// restart. The snapshot format (JSON or binary) is sniffed from the
    /// file contents. Default reference models are re-derived from the
    /// indexed order; the publication epoch resumes from the snapshot's
    /// stats header (pre-epoch snapshots resume from 0).
    pub fn connect_with_indices(
        repo: Arc<dyn ModelRepository>,
        config: SommelierConfig,
        path: &std::path::Path,
    ) -> Result<Self, QueryError> {
        let (snapshot, format) = sommelier_index::persist::read_snapshot_sniffed_with(
            &sommelier_fault::StdStorage,
            path,
        )
        .map_err(|e| QueryError::Analysis(e.to_string()))?;
        let mut engine = Self::assemble_from_snapshot(repo, config, snapshot);
        engine.snapshot_format = Some(format);
        Ok(engine)
    }

    fn assemble_from_snapshot(
        repo: Arc<dyn ModelRepository>,
        config: SommelierConfig,
        snapshot: sommelier_index::persist::IndexSnapshot,
    ) -> Self {
        let epoch = snapshot
            .stats
            .and_then(|s| s.epoch)
            .map(|e| e.max(0) as u64)
            .unwrap_or(0);
        let (semantic, resource) = (snapshot.semantic, snapshot.resource);
        let mut default_refs = HashMap::new();
        let mut tasks = HashMap::new();
        for key in semantic.keys() {
            if let Ok(model) = repo.load(key) {
                default_refs.entry(model.task).or_insert_with(|| key.clone());
                tasks.insert(key.clone(), model.task);
            }
        }
        Self::assemble(repo, config, semantic, resource, default_refs, tasks, epoch)
    }

    /// Connect restoring persisted indices, degrading gracefully when
    /// the snapshot is missing or unreadable: a corrupt snapshot is
    /// quarantined (`<name>.corrupt-<epoch>`) and the indices are
    /// transparently rebuilt from the repository — the query path comes
    /// up either way, it never errors on a bad snapshot file. Counters:
    /// `recovery.loads` on a clean load, `recovery.rebuilds` per
    /// rebuild, `recovery.quarantined` per file moved aside (bumped by
    /// the quarantine itself), `recovery.resave_failures` when the
    /// rebuilt snapshot could not be re-persisted.
    pub fn connect_or_recover(
        repo: Arc<dyn ModelRepository>,
        config: SommelierConfig,
        path: &std::path::Path,
    ) -> Result<(Self, SnapshotRecovery), QueryError> {
        use sommelier_index::persist::PersistError;
        match sommelier_index::persist::read_snapshot_sniffed_with(&sommelier_fault::StdStorage, path)
        {
            Ok((snapshot, format)) => {
                counters::add("recovery.loads", 1);
                let mut engine = Self::assemble_from_snapshot(repo, config, snapshot);
                engine.snapshot_format = Some(format);
                Ok((engine, SnapshotRecovery::Loaded))
            }
            Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                let engine = Self::rebuild_from_repository(repo, config, path)?;
                Ok((engine, SnapshotRecovery::RebuiltMissing))
            }
            Err(_) => {
                // Torn/garbage/unsupported snapshot: move the evidence
                // aside (best effort — an unmovable file must not block
                // recovery) and rebuild from the source of truth.
                let quarantined =
                    sommelier_fault::quarantine(&sommelier_fault::StdStorage, path).ok();
                let engine = Self::rebuild_from_repository(repo, config, path)?;
                Ok((
                    engine,
                    match quarantined {
                        Some(q) => SnapshotRecovery::RebuiltQuarantined(q),
                        None => SnapshotRecovery::RebuiltMissing,
                    },
                ))
            }
        }
    }

    fn rebuild_from_repository(
        repo: Arc<dyn ModelRepository>,
        config: SommelierConfig,
        path: &std::path::Path,
    ) -> Result<Self, QueryError> {
        counters::add("recovery.rebuilds", 1);
        let mut engine = Self::connect(repo, config);
        engine.index_existing()?;
        // Re-persist so the next start loads instead of re-analyzing;
        // failing to write the fresh snapshot must not fail recovery —
        // the engine is already serving from memory.
        if engine.save_indices(path).is_err() {
            counters::add("recovery.resave_failures", 1);
        } else {
            engine.snapshot_format = Some(sommelier_index::SnapshotFormat::for_path(path));
        }
        Ok(engine)
    }

    /// Directly measure the empirical QoR difference between two
    /// registered models on the engine's probe — a convenience for
    /// experiments and the serving integration.
    pub fn measure_diff(&self, reference: &str, candidate: &str) -> Result<f64, QueryError> {
        let a = self.repo.load(reference)?;
        let b = self.repo.load(candidate)?;
        let probe = self.analyzer.probe(a.input_width());
        let oa = sommelier_runtime::execute(&a, &probe)
            .map_err(|e| QueryError::Analysis(e.to_string()))?;
        let ob = sommelier_runtime::execute(&b, &probe)
            .map_err(|e| QueryError::Analysis(e.to_string()))?;
        Ok(qor_difference(a.task.output_style(), &oa, &ob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_repo::InMemoryRepository;
    use sommelier_zoo::families::{Family, FamilyScale};
    use sommelier_zoo::teacher::{DatasetBias, Teacher};

    fn engine_with_variants() -> (Sommelier, Vec<String>) {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 51);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let repo = Arc::new(InMemoryRepository::new());
        let mut cfg = SommelierConfig {
            validation_rows: 128,
            ..SommelierConfig::default()
        };
        cfg.index.sample_size = 16; // small pool: analyze everything
        let mut engine = Sommelier::connect(repo, cfg);
        let mut rng = Prng::seed_from_u64(1);
        let mut names = Vec::new();
        // A ladder of sizes: accurate-and-big down to cheap-and-small.
        for (i, width_factor) in [1.5, 1.0, 0.75, 0.5].into_iter().enumerate() {
            let name = format!("resnetish-v{i}");
            let mut frng = rng.fork();
            let m = Family::Resnetish.build_scaled(
                &name,
                &teacher,
                &bias,
                &FamilyScale::new(width_factor, 3 + i, 0.01),
                &mut frng,
            );
            engine.register(&m).unwrap();
            names.push(name);
        }
        (engine, names)
    }

    #[test]
    fn register_and_lookup_round_trip() {
        let (engine, names) = engine_with_variants();
        assert_eq!(engine.len(), 4);
        for n in &names {
            assert!(engine.semantic_index().contains(n));
            assert!(engine.resource_index().profile_of(n).is_some());
        }
    }

    #[test]
    fn query_returns_equivalent_cheaper_model() {
        let (engine, names) = engine_with_variants();
        let q = format!(
            "SELECT model CORR {} ON memory <= 90% WITHIN 0.5 ORDER BY similarity",
            names[0]
        );
        let results = engine.query(&q).unwrap();
        assert!(!results.is_empty(), "no results");
        let top = &results[0];
        assert_ne!(top.key, names[0]);
        let ref_mem = engine
            .resource_index()
            .profile_of(&names[0])
            .unwrap()
            .memory_mb;
        assert!(top.profile.memory_mb <= 0.9 * ref_mem);
        assert!(top.score >= 0.5);
    }

    #[test]
    fn order_by_memory_prefers_cheapest() {
        let (engine, names) = engine_with_variants();
        let q = format!(
            "SELECT models 3 CORR {} WITHIN 0.3 ORDER BY memory",
            names[0]
        );
        let results = engine.query(&q).unwrap();
        assert!(results.len() >= 2);
        assert!(results
            .windows(2)
            .all(|w| w[0].profile.memory_mb <= w[1].profile.memory_mb));
    }

    #[test]
    fn unknown_reference_is_an_error() {
        let (engine, _) = engine_with_variants();
        let err = engine.query("SELECT model CORR ghost").unwrap_err();
        assert!(matches!(err, QueryError::UnknownReference(_)));
    }

    #[test]
    fn task_reference_uses_default() {
        let (engine, names) = engine_with_variants();
        let results = engine
            .query("SELECT models 2 CORR TASK image-recognition WITHIN 0.3")
            .unwrap();
        assert!(!results.is_empty());
        // Default reference is the first registered model; it must not be
        // returned as its own equivalent.
        assert!(results.iter().all(|r| r.key != names[0]));
    }

    #[test]
    fn no_default_reference_for_unseen_task() {
        let (engine, _) = engine_with_variants();
        let err = engine
            .query("SELECT model CORR TASK question-answering")
            .unwrap_err();
        assert!(matches!(err, QueryError::NoDefaultReference(_)));
    }

    #[test]
    fn impossible_resource_budget_returns_empty() {
        let (engine, names) = engine_with_variants();
        let q = format!("SELECT model CORR {} ON memory <= 0.000001 MB", names[0]);
        let results = engine.query(&q).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn strict_threshold_prunes_more_than_loose() {
        let (engine, names) = engine_with_variants();
        let strict = engine
            .query(&format!("SELECT models 10 CORR {} WITHIN 0.98", names[0]))
            .unwrap();
        let loose = engine
            .query(&format!("SELECT models 10 CORR {} WITHIN 0.2", names[0]))
            .unwrap();
        assert!(strict.len() <= loose.len());
        assert!(!loose.is_empty());
    }

    #[test]
    fn exec_clause_reprofiles_candidates() {
        let (engine, names) = engine_with_variants();
        // Under batch 32, activation memory scales up ~32x while
        // parameters stay put — the admitted set under an absolute bound
        // must shrink relative to batch 1.
        let q1 = format!("SELECT models 10 CORR {} WITHIN 0.0 EXEC batch = 1", names[0]);
        let q32 = format!("SELECT models 10 CORR {} WITHIN 0.0 EXEC batch = 32", names[0]);
        let r1 = engine.query(&q1).unwrap();
        let r32 = engine.query(&q32).unwrap();
        assert_eq!(r1.len(), r32.len());
        for (a, b) in r1.iter().zip(&r32) {
            assert!(
                b.profile.memory_mb > a.profile.memory_mb,
                "batch-32 memory must exceed batch-1 for {}",
                a.key
            );
        }
        // Device selection changes the latency estimate.
        let qgpu = format!("SELECT model CORR {} WITHIN 0.0 EXEC device = gpu", names[0]);
        let rgpu = engine.query(&qgpu).unwrap();
        assert!(!rgpu.is_empty());
    }

    #[test]
    fn exec_clause_rejects_unknown_settings() {
        let (engine, names) = engine_with_variants();
        let err = engine
            .query(&format!("SELECT model CORR {} EXEC turbo = yes", names[0]))
            .unwrap_err();
        assert!(matches!(err, QueryError::Analysis(_)));
        let err = engine
            .query(&format!("SELECT model CORR {} EXEC batch = 0", names[0]))
            .unwrap_err();
        assert!(matches!(err, QueryError::Analysis(_)));
    }

    #[test]
    fn indices_persist_and_restore_through_engine() {
        let (engine, names) = engine_with_variants();
        let path = std::env::temp_dir().join(format!(
            "somm-engine-snap-{}.json",
            std::process::id()
        ));
        engine.save_indices(&path).unwrap();

        // A fresh engine restored from the snapshot answers identically
        // without re-analysis. The repository must be shared.
        let repo = engine.repo.clone();
        let restored = Sommelier::connect_with_indices(
            repo,
            SommelierConfig::default(),
            &path,
        )
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.len(), engine.len());
        let q = format!("SELECT models 5 CORR {} WITHIN 0.2", names[0]);
        let a = engine.query(&q).unwrap();
        let b = restored.query(&q).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
        }
        // Default references were re-derived.
        assert!(restored
            .query("SELECT model CORR TASK image-recognition WITHIN 0.0")
            .is_ok());
    }

    #[test]
    fn reregister_replaces_a_model_version() {
        let (mut engine, names) = engine_with_variants();
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 51);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let mut rng = Prng::seed_from_u64(77);
        // Publish a very different model under an existing key.
        let replacement = Family::Vggish.build_scaled(
            &names[2],
            &teacher,
            &bias,
            &FamilyScale::new(0.5, 2, 0.05),
            &mut rng,
        );
        let before = *engine.resource_index().profile_of(&names[2]).unwrap();
        engine.reregister(&replacement).unwrap();
        let after = *engine.resource_index().profile_of(&names[2]).unwrap();
        assert_ne!(before.memory_mb, after.memory_mb);
        assert_eq!(engine.len(), 4, "model count unchanged after update");
        // The repository holds the new version.
        let stored = engine.repo.load(&names[2]).unwrap();
        assert_eq!(stored.metadata["family"], "vggish");
    }

    #[test]
    fn synthesized_results_materialize_into_runnable_models() {
        let (engine, names) = engine_with_variants();
        // Find a synthesized candidate in the raw index.
        let synth_key = engine
            .semantic_index()
            .candidates_of(&names[0])
            .iter()
            .find(|c| matches!(c.kind, CandidateKind::Synthesized { .. }))
            .map(|c| c.key.clone())
            .expect("segment analysis produced synthesized candidates");
        let model = engine.materialize(&synth_key).unwrap();
        assert_eq!(model.name, synth_key);
        // It runs and matches the host's geometry.
        let mut rng = Prng::seed_from_u64(1);
        let x = Tensor::gaussian(4, model.input_width(), 1.0, &mut rng);
        let out = sommelier_runtime::execute(&model, &x).unwrap();
        assert_eq!(out.rows(), 4);
        // Plain keys still load directly; garbage keys fail.
        assert!(engine.materialize(&names[1]).is_ok());
        assert!(engine.materialize("no-such+pair").is_err());
        assert!(engine.materialize("nonsense").is_err());
    }

    #[test]
    fn unregister_removes_model_from_results() {
        let (mut engine, names) = engine_with_variants();
        let q = format!("SELECT models 10 CORR {} WITHIN 0.0", names[0]);
        let before = engine.query(&q).unwrap();
        assert!(before.iter().any(|r| r.key == names[2]));
        assert!(engine.unregister(&names[2]));
        let after = engine.query(&q).unwrap();
        assert!(after.iter().all(|r| r.key != names[2]));
        // Synthesized entries built from the removed donor vanish too.
        assert!(after
            .iter()
            .all(|r| !matches!(&r.kind, CandidateKind::Synthesized { donor } if donor == &names[2])));
        assert!(!engine.unregister(&names[2]), "second removal is a no-op");
        assert!(engine.resource_index().profile_of(&names[2]).is_none());
    }

    #[test]
    fn multi_task_repository_keeps_tasks_separate() {
        // One index serves the whole repository (paper Section 5.2); the
        // I/O check keeps incomparable tasks from cross-contaminating
        // candidate lists, and default references resolve per task.
        let repo = Arc::new(InMemoryRepository::new());
        let mut cfg = SommelierConfig {
            validation_rows: 96,
            ..SommelierConfig::default()
        };
        cfg.index.sample_size = 16;
        cfg.index.segments = false;
        let mut engine = Sommelier::connect(repo, cfg);
        let mut rng = Prng::seed_from_u64(3);
        for task in [TaskKind::ImageRecognition, TaskKind::SentimentAnalysis] {
            let teacher = Teacher::for_task(task, 60);
            let ds = sommelier_zoo::Dataset::default_name_for(task);
            let bias = DatasetBias::new(&teacher, ds, 0.05);
            for i in 0..2 {
                let mut frng = rng.fork();
                let m = Family::Resnetish.build_scaled(
                    format!("{}-{i}", task.slug()),
                    &teacher,
                    &bias,
                    &FamilyScale::new(1.0 - 0.3 * i as f64, 3, 0.01),
                    &mut frng,
                );
                engine.register(&m).unwrap();
            }
        }
        // Image-recognition candidates never include sentiment models
        // (their I/O contracts differ) and vice versa.
        let vision = engine
            .query("SELECT models 10 CORR image-recognition-0 WITHIN 0.0")
            .unwrap();
        assert!(!vision.is_empty());
        assert!(vision.iter().all(|r| !r.key.contains("sentiment")));
        let nlp = engine
            .query("SELECT models 10 CORR TASK sentiment-analysis WITHIN 0.0")
            .unwrap();
        assert!(!nlp.is_empty());
        assert!(nlp.iter().all(|r| !r.key.contains("image")));
    }

    #[test]
    fn query_errors_have_readable_messages() {
        let (engine, _) = engine_with_variants();
        let parse = engine.query("garbage !").unwrap_err();
        assert!(parse.to_string().contains("lex error"));
        let unknown = engine.query("SELECT model CORR ghost").unwrap_err();
        assert!(unknown.to_string().contains("not registered"));
        let no_default = engine
            .query("SELECT model CORR TASK named-entity-recognition")
            .unwrap_err();
        assert!(no_default.to_string().contains("no default reference"));
    }

    #[test]
    fn reindexing_is_incremental_and_publishes_once() {
        let (mut engine, names) = engine_with_variants();
        let before = engine.cache_stats();
        assert_eq!(before.hits, 0, "first build analyzes only fresh pairs");
        assert!(before.misses > 0, "analyses must register cache misses");
        assert!(before.entries > 0);
        let epoch_before = engine.epoch();
        // Re-register an unchanged model: the remove and the re-insert
        // coalesce into one batch, the edge table retains every
        // measurement for the unchanged fingerprints, so the rebuild
        // runs zero fresh analyses — and the whole logical mutation is
        // exactly one snapshot publication (one epoch bump), not the
        // historical remove-publish + insert-publish pair.
        let model = engine.repo.load(&names[2]).unwrap();
        engine.reregister(&model).unwrap();
        let after = engine.cache_stats();
        assert_eq!(after.misses, before.misses, "no new analyses were needed");
        assert_eq!(
            engine.epoch(),
            epoch_before + 1,
            "reregister is one logical mutation: exactly one publish"
        );
    }

    /// A repository wrapper that counts `load` calls, so tests can
    /// assert a mutation path touched storage exactly as often as
    /// claimed (for unregister: never).
    struct CountingRepository {
        inner: InMemoryRepository,
        loads: std::sync::atomic::AtomicUsize,
    }

    impl CountingRepository {
        fn loads(&self) -> usize {
            self.loads.load(std::sync::atomic::Ordering::SeqCst)
        }
    }

    impl ModelRepository for CountingRepository {
        fn publish(&self, key: &str, model: &Model, overwrite: bool) -> Result<(), RepoError> {
            self.inner.publish(key, model, overwrite)
        }
        fn load(&self, key: &str) -> Result<Model, RepoError> {
            self.loads
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            self.inner.load(key)
        }
        fn try_keys(&self) -> Result<Vec<String>, RepoError> {
            self.inner.try_keys()
        }
    }

    #[test]
    fn unregister_rederives_defaults_without_storage_reads() {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 51);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let repo = Arc::new(CountingRepository {
            inner: InMemoryRepository::new(),
            loads: std::sync::atomic::AtomicUsize::new(0),
        });
        let mut cfg = SommelierConfig {
            validation_rows: 128,
            ..SommelierConfig::default()
        };
        cfg.index.sample_size = 16;
        let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);
        let mut rng = Prng::seed_from_u64(17);
        let mut names = Vec::new();
        for (i, scale) in [1.0, 0.8, 0.6].iter().enumerate() {
            let mut frng = rng.fork();
            let model = Family::Resnetish.build_scaled(
                format!("def-{i}"),
                &teacher,
                &bias,
                &FamilyScale::new(*scale, 3, 0.01),
                &mut frng,
            );
            names.push(model.name.clone());
            engine.register(&model).unwrap();
        }
        // "def-0" registered first, so it is the default reference.
        let reads_before = repo.loads();
        assert!(engine.unregister(&names[0]));
        assert_eq!(
            repo.loads(),
            reads_before,
            "unregister must derive the new default from indexed metadata, \
             with zero repository reads"
        );
        // The default moved to the lexicographically smallest survivor.
        let results = engine
            .query("SELECT models 10 CORR TASK image-recognition WITHIN 0.0")
            .unwrap();
        assert!(results.iter().all(|r| r.key != names[0]));
        assert!(!engine.unregister(&names[0]), "second removal is a no-op");
    }

    #[test]
    fn mutation_batch_coalesces_into_one_publish() {
        let (mut engine, names) = engine_with_variants();
        let epoch_before = engine.epoch();
        let replacement = engine.repo.load(&names[1]).unwrap();
        let batch = MutationBatch::new()
            .unregister(&names[0])
            .unregister(&names[1])
            .register(replacement);
        let applied = engine.apply(batch).unwrap();
        assert_eq!(applied, 3, "two removes and one add are three mutations");
        assert_eq!(
            engine.epoch(),
            epoch_before + 1,
            "a batch is one snapshot publication, however many mutations it holds"
        );
        let results = engine
            .query("SELECT models 10 CORR TASK image-recognition WITHIN 1.0")
            .unwrap();
        assert!(results.iter().all(|r| r.key != names[0]));
        // An empty batch is free: nothing published, epoch untouched.
        assert_eq!(engine.apply(MutationBatch::new()).unwrap(), 0);
        assert_eq!(engine.epoch(), epoch_before + 1);
    }

    #[test]
    fn zero_cache_cap_disables_memoization_without_changing_results() {
        let repo = Arc::new(InMemoryRepository::new());
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 51);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let mut rng = Prng::seed_from_u64(5);
        for i in 0..3 {
            let mut frng = rng.fork();
            let m = Family::Resnetish.build_scaled(
                format!("m{i}"),
                &teacher,
                &bias,
                &FamilyScale::new(1.0 - 0.2 * i as f64, 3, 0.01),
                &mut frng,
            );
            repo.publish(&m.name, &m, false).unwrap();
        }
        let mut engine = Sommelier::connect(
            Arc::clone(&repo) as Arc<dyn ModelRepository>,
            SommelierConfig {
                validation_rows: 64,
                cache_cap: 0,
                ..SommelierConfig::default()
            },
        );
        engine.index_existing().unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
        assert_eq!(engine.len(), 3);
    }

    #[test]
    fn index_build_is_byte_identical_across_job_counts() {
        let teacher = Teacher::for_task(TaskKind::ImageRecognition, 51);
        let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
        let build = |jobs: usize, cache_cap: usize| -> String {
            let repo = Arc::new(InMemoryRepository::new());
            let mut rng = Prng::seed_from_u64(1);
            for (i, wf) in [1.25, 1.0, 0.75, 0.5, 0.6].into_iter().enumerate() {
                let mut frng = rng.fork();
                let m = Family::Resnetish.build_scaled(
                    format!("m{i}"),
                    &teacher,
                    &bias,
                    &FamilyScale::new(wf, 3, 0.01),
                    &mut frng,
                );
                repo.publish(&m.name, &m, false).unwrap();
            }
            let mut cfg = SommelierConfig {
                validation_rows: 64,
                jobs,
                cache_cap,
                ..SommelierConfig::default()
            };
            cfg.index.sample_size = 3;
            let mut engine = Sommelier::connect(repo, cfg);
            engine.index_existing().unwrap();
            let path = std::env::temp_dir().join(format!(
                "somm-jobs-{jobs}-{cache_cap}-{}.json",
                std::process::id()
            ));
            engine.save_indices(&path).unwrap();
            let bytes = std::fs::read_to_string(&path).unwrap();
            std::fs::remove_file(&path).ok();
            bytes
        };
        let baseline = build(1, 0);
        assert_eq!(build(4, 4096), baseline, "jobs=4 with cache diverged");
        assert_eq!(build(8, 0), baseline, "jobs=8 without cache diverged");
    }

    #[test]
    fn query_batch_is_identical_across_lane_counts() {
        let (engine, names) = engine_with_variants();
        let texts: Vec<String> = (0..12)
            .map(|i| {
                format!(
                    "SELECT models 3 CORR {} WITHIN 0.{} ORDER BY memory",
                    names[i % names.len()],
                    2 + (i % 3)
                )
            })
            .collect();
        let baseline: Vec<Vec<QueryResult>> = engine
            .reader()
            .with_pool(1)
            .query_batch(&texts)
            .into_iter()
            .map(|i| i.results.unwrap())
            .collect();
        for lanes in [4, 8] {
            let got: Vec<Vec<QueryResult>> = engine
                .reader()
                .with_pool(lanes)
                .query_batch(&texts)
                .into_iter()
                .map(|i| i.results.unwrap())
                .collect();
            assert_eq!(got, baseline, "lanes={lanes} diverged");
        }
        // Every item of one batch is served from the same epoch.
        let items = engine.query_batch(&texts);
        assert!(items.iter().all(|i| i.epoch == engine.epoch()));
        assert!(items.iter().all(|i| i.latency_ms >= 0.0));
    }

    #[test]
    fn plan_cache_serves_repeats_and_epoch_invalidates() {
        let (mut engine, names) = engine_with_variants();
        let q = format!("SELECT models 5 CORR {} WITHIN 0.2", names[0]);
        let first = engine.query(&q).unwrap();
        let stats0 = engine.plan_cache_stats();
        assert_eq!(stats0.hits, 0);
        assert!(stats0.entries > 0, "miss populated the cache");
        // Textual whitespace variants share the entry.
        let variant = q.replace(' ', "  ");
        assert_eq!(engine.query(&variant).unwrap(), first);
        let stats1 = engine.plan_cache_stats();
        assert_eq!(stats1.hits, 1, "repeat query must hit");
        assert_eq!(stats1.misses, stats0.misses, "no re-execution");
        // A mutation publishes a new epoch: the same text re-executes
        // and reflects the new index state.
        let epoch_before = engine.epoch();
        assert!(engine.unregister(&names[2]));
        assert!(engine.epoch() > epoch_before);
        let after = engine.query(&q).unwrap();
        assert!(after.iter().all(|r| r.key != names[2]));
        let stats2 = engine.plan_cache_stats();
        assert!(stats2.misses > stats1.misses, "new epoch must miss");
    }

    #[test]
    fn reader_serves_pinned_snapshot_across_mutations() {
        let (mut engine, names) = engine_with_variants();
        let reader = engine.reader();
        let q = format!("SELECT models 10 CORR {} WITHIN 0.0", names[0]);
        let pinned = reader.snapshot();
        let before_epoch = pinned.epoch;
        assert!(engine.unregister(&names[3]));
        // The pinned snapshot still holds the unregistered model; the
        // live read path already serves the new epoch.
        assert!(pinned.semantic.contains(&names[3]));
        assert_eq!(reader.epoch(), before_epoch + 1);
        let live = reader.query(&q).unwrap();
        assert!(live.iter().all(|r| r.key != names[3]));
    }

    #[test]
    fn statically_empty_plans_short_circuit() {
        let (engine, names) = engine_with_variants();
        // `SELECT models 0` only arises programmatically (the parser
        // rejects it); the executor must prune it without index work.
        let zero = engine
            .query_ast(&Query::corr(&names[0]).top(0).within(0.0))
            .unwrap();
        assert!(zero.is_empty());
        let impossible = engine
            .query_ast(&Query::corr(&names[0]).top(5).within(1.5))
            .unwrap();
        assert!(impossible.is_empty());
    }

    #[test]
    fn restored_engine_resumes_the_publication_epoch() {
        let (engine, _) = engine_with_variants();
        assert_eq!(engine.epoch(), 4, "four registrations, four epochs");
        let path = std::env::temp_dir().join(format!(
            "somm-epoch-resume-{}.json",
            std::process::id()
        ));
        engine.save_indices(&path).unwrap();
        let restored = Sommelier::connect_with_indices(
            engine.repo.clone(),
            SommelierConfig::default(),
            &path,
        )
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.epoch(), 4);
        assert_eq!(restored.reader().epoch(), 4);
    }

    #[test]
    fn corrupt_snapshot_recovers_by_quarantine_and_rebuild() {
        let (engine, names) = engine_with_variants();
        let dir = std::env::temp_dir().join(format!(
            "somm-recover-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sommelier.index.json");
        engine.save_indices(&path).unwrap();
        // Tear the snapshot the way a mid-write crash would.
        let whole = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &whole[..whole.len() / 2]).unwrap();

        let before = counters::get("recovery.rebuilds");
        let (restored, outcome) = Sommelier::connect_or_recover(
            engine.repo.clone(),
            SommelierConfig {
                validation_rows: 128,
                ..SommelierConfig::default()
            },
            &path,
        )
        .unwrap();
        assert!(outcome.rebuilt());
        let quarantined = match &outcome {
            SnapshotRecovery::RebuiltQuarantined(q) => q.clone(),
            other => panic!("expected quarantine, got {other:?}"),
        };
        assert!(quarantined.exists(), "evidence file preserved");
        assert_eq!(counters::get("recovery.rebuilds"), before + 1);
        // The rebuilt engine serves queries, and re-persisted a clean
        // snapshot in the torn one's place.
        assert_eq!(restored.len(), engine.len());
        let q = format!("SELECT models 3 CORR {} WITHIN 0.2", names[0]);
        assert!(!restored.query(&q).unwrap().is_empty());
        assert!(sommelier_index::persist::read_snapshot(&path).is_ok());
        // A clean snapshot loads without another rebuild.
        let rebuilds = counters::get("recovery.rebuilds");
        let (_again, outcome) = Sommelier::connect_or_recover(
            engine.repo.clone(),
            SommelierConfig::default(),
            &path,
        )
        .unwrap();
        assert!(matches!(outcome, SnapshotRecovery::Loaded));
        assert_eq!(counters::get("recovery.rebuilds"), rebuilds);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_snapshot_restores_identically_to_json() {
        let (engine, names) = engine_with_variants();
        let dir = std::env::temp_dir().join(format!("somm-binfmt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("sommelier.index.json");
        let bpath = dir.join("sommelier.index.somb");
        engine.save_indices(&jpath).unwrap();
        engine.save_indices(&bpath).unwrap();
        assert!(engine.snapshot_format().is_none(), "fresh engine, no load");

        let from_json = Sommelier::connect_with_indices(
            engine.repo.clone(),
            SommelierConfig::default(),
            &jpath,
        )
        .unwrap();
        let from_bin = Sommelier::connect_with_indices(
            engine.repo.clone(),
            SommelierConfig::default(),
            &bpath,
        )
        .unwrap();
        assert_eq!(from_json.snapshot_format(), Some(sommelier_index::SnapshotFormat::Json));
        assert_eq!(from_bin.snapshot_format(), Some(sommelier_index::SnapshotFormat::Binary));
        assert_eq!(from_bin.epoch(), from_json.epoch(), "epoch resumes from either format");
        // Both restored engines serve identical results.
        let q = format!("SELECT models 5 CORR {} WITHIN 0.2", names[0]);
        let a = from_json.query(&q).unwrap();
        let b = from_bin.query(&q).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "bit-equal scores");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_binary_snapshot_recovers_by_quarantine_and_rebuild() {
        let (engine, names) = engine_with_variants();
        let dir = std::env::temp_dir().join(format!("somm-binrec-{}", std::process::id()));
        for kind in sommelier_fault::BinaryTearKind::ALL {
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("sommelier.index.somb");
            engine.save_indices(&path).unwrap();
            let whole = std::fs::read(&path).unwrap();
            std::fs::write(&path, sommelier_fault::tear_binary(&whole, 31, kind)).unwrap();

            let before = counters::get("recovery.rebuilds");
            let (restored, outcome) = Sommelier::connect_or_recover(
                engine.repo.clone(),
                SommelierConfig {
                    validation_rows: 128,
                    ..SommelierConfig::default()
                },
                &path,
            )
            .unwrap();
            assert!(outcome.rebuilt(), "{}: torn binary must rebuild", kind.name());
            assert!(
                matches!(outcome, SnapshotRecovery::RebuiltQuarantined(_)),
                "{}: evidence quarantined",
                kind.name()
            );
            assert_eq!(counters::get("recovery.rebuilds"), before + 1);
            assert_eq!(restored.len(), engine.len());
            assert_eq!(
                restored.snapshot_format(),
                Some(sommelier_index::SnapshotFormat::Binary),
                "{}: resave keeps the binary format",
                kind.name()
            );
            let q = format!("SELECT models 3 CORR {} WITHIN 0.2", names[0]);
            assert!(!restored.query(&q).unwrap().is_empty());
            // The resaved snapshot is clean binary.
            let (_, fmt) = sommelier_index::persist::read_snapshot_sniffed_with(
                &sommelier_fault::StdStorage,
                &path,
            )
            .unwrap();
            assert_eq!(fmt, sommelier_index::SnapshotFormat::Binary);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_recovers_without_quarantine() {
        let (engine, _) = engine_with_variants();
        let path = std::env::temp_dir().join(format!(
            "somm-recover-missing-{}.json",
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
        let (restored, outcome) = Sommelier::connect_or_recover(
            engine.repo.clone(),
            SommelierConfig {
                validation_rows: 128,
                ..SommelierConfig::default()
            },
            &path,
        )
        .unwrap();
        assert!(matches!(outcome, SnapshotRecovery::RebuiltMissing));
        assert_eq!(restored.len(), engine.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn measure_diff_is_zero_for_self() {
        let (engine, names) = engine_with_variants();
        let d = engine.measure_diff(&names[0], &names[0]).unwrap();
        assert_eq!(d, 0.0);
        let d2 = engine.measure_diff(&names[0], &names[3]).unwrap();
        assert!(d2 > 0.0);
    }
}
