//! The Sommelier query language and engine facade (paper Sections 5–6).
//!
//! A query names a reference model (or a task category for a default
//! reference), a functional-equivalence threshold, and relative or
//! absolute resource bounds (Figure 7's syntax):
//!
//! ```text
//! SELECT model CORR resnetish-50
//!     ON memory <= 80% AND flops <= 60%
//!     WITHIN 0.95
//!     ORDER BY similarity
//! ```
//!
//! Processing follows Section 5.4: the text is parsed into an AST
//! ([`ast`], [`lexer`], [`parser`]), planned into a pipeline of filters
//! ([`plan`]) — semantic filter, resource filter, final selection — and
//! executed against the two indices by the [`engine::Sommelier`] facade,
//! which also owns model registration (repository publish + index
//! insertion with the production [`engine::EquivAnalyzer`]).

pub mod ast;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod plancache;

pub use ast::{FinalSelection, Query, RefSpec, ResourceDim, ResourcePredicate, SelectKind};
pub use engine::{
    BatchQueryItem, EngineSnapshot, MutationBatch, QueryError, QueryResult, SnapshotRecovery,
    Sommelier, SommelierConfig, SommelierReader,
};
pub use parser::{parse, ParseError};
pub use plan::{plan, plan_checked, PlanDiagnostic, QueryPlan};
pub use plancache::{normalize_query, PlanCache, PlanCacheStats};
