//! The query abstract syntax tree.
//!
//! A parsed query carries the three lookup components of paper
//! Section 5.1: the *semantic constraint* (reference model + equivalence
//! threshold), the *resource budget* (relative or absolute per-dimension
//! bounds), and the *final selection criteria*. An optional `EXEC` clause
//! carries execution settings (hardware, batch size) as key–value pairs,
//! mirroring Figure 7's `exec-spec`.

use serde::{Deserialize, Serialize};
use sommelier_graph::TaskKind;
use std::collections::BTreeMap;

/// What the query returns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectKind {
    /// The single best model.
    Model,
    /// The best `n` models.
    Models(usize),
}

/// The reference anchoring the semantic constraint.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefSpec {
    /// A model the user knows, by repository key.
    Named(String),
    /// A task category; the engine substitutes its default reference
    /// model (paper Section 5.1: "If the user has no prior knowledge of a
    /// suitable reference model, they can specify the inference task
    /// category instead").
    Task(TaskKind),
}

/// A resource dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceDim {
    Memory,
    Flops,
    Latency,
}

/// A bound value: relative to the reference model or absolute.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum BoundValue {
    /// Percentage of the reference model's usage (e.g. `80%`).
    RelativePercent(f64),
    /// Absolute value in the dimension's canonical unit (MB / GFLOPs /
    /// ms).
    Absolute(f64),
}

/// One `ON` predicate: `dimension (< | <=) value`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourcePredicate {
    pub dim: ResourceDim,
    pub value: BoundValue,
}

/// The final selection criterion among candidates surviving both filters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FinalSelection {
    /// Highest functional-equivalence score first (default).
    #[default]
    Similarity,
    /// Smallest memory footprint first.
    Memory,
    /// Fewest FLOPs first.
    Flops,
    /// Lowest latency first.
    Latency,
}

/// A parsed query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Query {
    pub select: SelectKind,
    pub reference: RefSpec,
    /// Minimum functional-equivalence score in `[0, 1]` (`WITHIN`).
    pub threshold: f64,
    pub predicates: Vec<ResourcePredicate>,
    pub selection: FinalSelection,
    /// Execution settings from the `EXEC` clause.
    pub exec_spec: BTreeMap<String, String>,
}

impl Query {
    /// A programmatic query builder starting from a named reference with
    /// the default threshold 0.95.
    pub fn corr(reference: impl Into<String>) -> Query {
        Query {
            select: SelectKind::Model,
            reference: RefSpec::Named(reference.into()),
            threshold: 0.95,
            predicates: Vec::new(),
            selection: FinalSelection::default(),
            exec_spec: BTreeMap::new(),
        }
    }

    /// Set the equivalence threshold.
    pub fn within(mut self, threshold: f64) -> Query {
        self.threshold = threshold;
        self
    }

    /// Add a relative memory bound (fraction of the reference, e.g. 0.8).
    pub fn memory_at_most_frac(mut self, frac: f64) -> Query {
        self.predicates.push(ResourcePredicate {
            dim: ResourceDim::Memory,
            value: BoundValue::RelativePercent(frac * 100.0),
        });
        self
    }

    /// Add a relative FLOPs bound.
    pub fn flops_at_most_frac(mut self, frac: f64) -> Query {
        self.predicates.push(ResourcePredicate {
            dim: ResourceDim::Flops,
            value: BoundValue::RelativePercent(frac * 100.0),
        });
        self
    }

    /// Add an absolute latency bound in ms.
    pub fn latency_at_most_ms(mut self, ms: f64) -> Query {
        self.predicates.push(ResourcePredicate {
            dim: ResourceDim::Latency,
            value: BoundValue::Absolute(ms),
        });
        self
    }

    /// Return the best `n` models rather than one.
    pub fn top(mut self, n: usize) -> Query {
        self.select = SelectKind::Models(n);
        self
    }

    /// Set the final selection criterion.
    pub fn order_by(mut self, sel: FinalSelection) -> Query {
        self.selection = sel;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let q = Query::corr("resnetish-50")
            .within(0.9)
            .memory_at_most_frac(0.8)
            .flops_at_most_frac(0.5)
            .top(3)
            .order_by(FinalSelection::Memory);
        assert_eq!(q.reference, RefSpec::Named("resnetish-50".into()));
        assert_eq!(q.threshold, 0.9);
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.select, SelectKind::Models(3));
        assert_eq!(q.selection, FinalSelection::Memory);
        assert!(matches!(
            q.predicates[0].value,
            BoundValue::RelativePercent(p) if (p - 80.0).abs() < 1e-9
        ));
    }

    #[test]
    fn default_selection_is_similarity() {
        assert_eq!(FinalSelection::default(), FinalSelection::Similarity);
        assert_eq!(Query::corr("x").selection, FinalSelection::Similarity);
    }
}
