//! Query planning (paper Section 5.4).
//!
//! A query is executed as a pipeline of filtering operations: the
//! *semantic filter* (candidate lookup on the semantic index), the
//! *resource filter* (range query on the resource index), and the *final
//! selection*. Planning resolves what the AST leaves symbolic: the
//! reference key (task references resolve to the default reference
//! model), and relative resource bounds against the reference model's
//! profile, producing the concrete multi-dimensional constraint vector
//! the paper describes ("memory less than 200 MB, computation complexity
//! less than 50 GFLOPS, and latency less than 30 ms is simply represented
//! as a vector (200, 50, 30)").

use crate::ast::{BoundValue, FinalSelection, Query, ResourceDim, SelectKind};
use serde::{Deserialize, Serialize};
use sommelier_index::ResourceConstraint;
use sommelier_runtime::ResourceProfile;

/// A fully resolved query plan.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// Resolved reference model key.
    pub reference_key: String,
    /// Minimum functional-equivalence score.
    pub min_score: f64,
    /// Resolved absolute resource bounds.
    pub constraint: ResourceConstraint,
    /// Final ordering criterion.
    pub selection: FinalSelection,
    /// Number of results to return.
    pub limit: usize,
}

/// A non-fatal observation produced while resolving a query into a plan.
///
/// Planning never fails — a questionable query still resolves to *some*
/// plan — but combinations that are statically unsatisfiable or redundant
/// are worth surfacing before the engine spends any work on them. The
/// `sommelier-lint` crate maps these onto its `SOM04x` diagnostic codes;
/// the engine itself treats them as advisory.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PlanDiagnostic {
    /// The `WITHIN` threshold exceeds 1.0: equivalence scores live in
    /// `[0, 1]`, so the semantic filter can never admit anything.
    UnsatisfiableThreshold { threshold: f64 },
    /// A resolved resource bound is non-positive: no profile can satisfy
    /// it, so the resource filter statically prunes to empty.
    EmptyBudget { dim: ResourceDim, bound: f64 },
    /// A predicate on a dimension is at least as loose as another on the
    /// same dimension; the looser bound can never influence the result.
    ShadowedPredicate {
        dim: ResourceDim,
        kept: f64,
        shadowed: f64,
    },
    /// `SELECT models 0`: the final selection statically returns nothing.
    LimitZero,
}

impl std::fmt::Display for PlanDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanDiagnostic::UnsatisfiableThreshold { threshold } => write!(
                f,
                "WITHIN {threshold} can never be satisfied (scores live in [0, 1])"
            ),
            PlanDiagnostic::EmptyBudget { dim, bound } => write!(
                f,
                "resolved {dim:?} bound {bound} is non-positive; no model can satisfy it"
            ),
            PlanDiagnostic::ShadowedPredicate { dim, kept, shadowed } => write!(
                f,
                "{dim:?} predicate {shadowed} is shadowed by the tighter bound {kept}"
            ),
            PlanDiagnostic::LimitZero => write!(f, "SELECT models 0 statically returns nothing"),
        }
    }
}

/// Resolve a query against a reference key and its resource profile,
/// collecting [`PlanDiagnostic`]s about statically suspicious plans.
pub fn plan_checked(
    query: &Query,
    reference_key: &str,
    reference_profile: &ResourceProfile,
) -> (QueryPlan, Vec<PlanDiagnostic>) {
    let mut diagnostics = Vec::new();
    if query.threshold > 1.0 {
        diagnostics.push(PlanDiagnostic::UnsatisfiableThreshold {
            threshold: query.threshold,
        });
    }
    let mut constraint = ResourceConstraint::default();
    for pred in &query.predicates {
        let bound = match (pred.dim, pred.value) {
            (ResourceDim::Memory, BoundValue::RelativePercent(p)) => {
                reference_profile.memory_mb * p / 100.0
            }
            (ResourceDim::Flops, BoundValue::RelativePercent(p)) => {
                reference_profile.gflops * p / 100.0
            }
            (ResourceDim::Latency, BoundValue::RelativePercent(p)) => {
                reference_profile.latency_ms * p / 100.0
            }
            (_, BoundValue::Absolute(v)) => v,
        };
        let slot = match pred.dim {
            ResourceDim::Memory => &mut constraint.max_memory_mb,
            ResourceDim::Flops => &mut constraint.max_gflops,
            ResourceDim::Latency => &mut constraint.max_latency_ms,
        };
        // Multiple predicates on the same dimension intersect (tightest
        // bound wins); the looser one is dead weight worth reporting.
        *slot = Some(match *slot {
            Some(existing) => {
                let (kept, shadowed) = if bound < existing {
                    (bound, existing)
                } else {
                    (existing, bound)
                };
                diagnostics.push(PlanDiagnostic::ShadowedPredicate {
                    dim: pred.dim,
                    kept,
                    shadowed,
                });
                kept
            }
            None => bound,
        });
    }
    for (dim, slot) in [
        (ResourceDim::Memory, constraint.max_memory_mb),
        (ResourceDim::Flops, constraint.max_gflops),
        (ResourceDim::Latency, constraint.max_latency_ms),
    ] {
        if let Some(bound) = slot {
            if bound <= 0.0 {
                diagnostics.push(PlanDiagnostic::EmptyBudget { dim, bound });
            }
        }
    }
    let limit = match query.select {
        SelectKind::Model => 1,
        SelectKind::Models(n) => n,
    };
    if limit == 0 {
        diagnostics.push(PlanDiagnostic::LimitZero);
    }
    (
        QueryPlan {
            reference_key: reference_key.to_string(),
            min_score: query.threshold,
            constraint,
            selection: query.selection,
            limit,
        },
        diagnostics,
    )
}

/// Resolve a query against a reference key and its resource profile.
pub fn plan(query: &Query, reference_key: &str, reference_profile: &ResourceProfile) -> QueryPlan {
    plan_checked(query, reference_key, reference_profile).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Query;

    fn profile() -> ResourceProfile {
        ResourceProfile {
            memory_mb: 100.0,
            gflops: 10.0,
            latency_ms: 20.0,
        }
    }

    #[test]
    fn relative_bounds_resolve_against_reference() {
        let q = Query::corr("ref")
            .memory_at_most_frac(0.8)
            .flops_at_most_frac(0.5);
        let p = plan(&q, "ref", &profile());
        assert_eq!(p.constraint.max_memory_mb, Some(80.0));
        assert_eq!(p.constraint.max_gflops, Some(5.0));
        assert_eq!(p.constraint.max_latency_ms, None);
        assert_eq!(p.limit, 1);
        assert_eq!(p.min_score, 0.95);
    }

    #[test]
    fn absolute_bounds_pass_through() {
        let q = Query::corr("ref").latency_at_most_ms(30.0);
        let p = plan(&q, "ref", &profile());
        assert_eq!(p.constraint.max_latency_ms, Some(30.0));
    }

    #[test]
    fn repeated_dimension_takes_tightest() {
        let q = Query::corr("ref")
            .memory_at_most_frac(0.8)
            .memory_at_most_frac(0.5);
        let p = plan(&q, "ref", &profile());
        assert_eq!(p.constraint.max_memory_mb, Some(50.0));
    }

    #[test]
    fn limit_tracks_select_kind() {
        let q = Query::corr("ref").top(7);
        assert_eq!(plan(&q, "ref", &profile()).limit, 7);
    }

    #[test]
    fn clean_query_plans_without_diagnostics() {
        let q = Query::corr("ref").within(0.9).memory_at_most_frac(0.8);
        let (_, diags) = plan_checked(&q, "ref", &profile());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn impossible_threshold_is_reported() {
        let q = Query::corr("ref").within(1.5);
        let (p, diags) = plan_checked(&q, "ref", &profile());
        assert_eq!(p.min_score, 1.5, "plan still resolves");
        assert!(diags
            .iter()
            .any(|d| matches!(d, PlanDiagnostic::UnsatisfiableThreshold { .. })));
    }

    #[test]
    fn non_positive_budget_is_reported() {
        let q = Query::corr("ref").latency_at_most_ms(-3.0);
        let (_, diags) = plan_checked(&q, "ref", &profile());
        assert!(diags.iter().any(|d| matches!(
            d,
            PlanDiagnostic::EmptyBudget {
                dim: ResourceDim::Latency,
                ..
            }
        )));
    }

    #[test]
    fn shadowed_predicate_is_reported() {
        let q = Query::corr("ref")
            .memory_at_most_frac(0.8)
            .memory_at_most_frac(0.5);
        let (p, diags) = plan_checked(&q, "ref", &profile());
        assert_eq!(p.constraint.max_memory_mb, Some(50.0));
        assert!(diags.iter().any(|d| matches!(
            d,
            PlanDiagnostic::ShadowedPredicate { kept, shadowed, .. }
                if *kept == 50.0 && *shadowed == 80.0
        )));
    }

    #[test]
    fn zero_limit_is_reported() {
        let q = Query::corr("ref").top(0);
        let (_, diags) = plan_checked(&q, "ref", &profile());
        assert!(diags.contains(&PlanDiagnostic::LimitZero));
    }
}
