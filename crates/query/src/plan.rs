//! Query planning (paper Section 5.4).
//!
//! A query is executed as a pipeline of filtering operations: the
//! *semantic filter* (candidate lookup on the semantic index), the
//! *resource filter* (range query on the resource index), and the *final
//! selection*. Planning resolves what the AST leaves symbolic: the
//! reference key (task references resolve to the default reference
//! model), and relative resource bounds against the reference model's
//! profile, producing the concrete multi-dimensional constraint vector
//! the paper describes ("memory less than 200 MB, computation complexity
//! less than 50 GFLOPS, and latency less than 30 ms is simply represented
//! as a vector (200, 50, 30)").

use crate::ast::{BoundValue, FinalSelection, Query, ResourceDim, SelectKind};
use serde::{Deserialize, Serialize};
use sommelier_index::ResourceConstraint;
use sommelier_runtime::ResourceProfile;

/// A fully resolved query plan.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// Resolved reference model key.
    pub reference_key: String,
    /// Minimum functional-equivalence score.
    pub min_score: f64,
    /// Resolved absolute resource bounds.
    pub constraint: ResourceConstraint,
    /// Final ordering criterion.
    pub selection: FinalSelection,
    /// Number of results to return.
    pub limit: usize,
}

/// Resolve a query against a reference key and its resource profile.
pub fn plan(query: &Query, reference_key: &str, reference_profile: &ResourceProfile) -> QueryPlan {
    let mut constraint = ResourceConstraint::default();
    for pred in &query.predicates {
        let bound = match (pred.dim, pred.value) {
            (ResourceDim::Memory, BoundValue::RelativePercent(p)) => {
                reference_profile.memory_mb * p / 100.0
            }
            (ResourceDim::Flops, BoundValue::RelativePercent(p)) => {
                reference_profile.gflops * p / 100.0
            }
            (ResourceDim::Latency, BoundValue::RelativePercent(p)) => {
                reference_profile.latency_ms * p / 100.0
            }
            (_, BoundValue::Absolute(v)) => v,
        };
        let slot = match pred.dim {
            ResourceDim::Memory => &mut constraint.max_memory_mb,
            ResourceDim::Flops => &mut constraint.max_gflops,
            ResourceDim::Latency => &mut constraint.max_latency_ms,
        };
        // Multiple predicates on the same dimension intersect (tightest
        // bound wins).
        *slot = Some(match *slot {
            Some(existing) => existing.min(bound),
            None => bound,
        });
    }
    QueryPlan {
        reference_key: reference_key.to_string(),
        min_score: query.threshold,
        constraint,
        selection: query.selection,
        limit: match query.select {
            SelectKind::Model => 1,
            SelectKind::Models(n) => n,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Query;

    fn profile() -> ResourceProfile {
        ResourceProfile {
            memory_mb: 100.0,
            gflops: 10.0,
            latency_ms: 20.0,
        }
    }

    #[test]
    fn relative_bounds_resolve_against_reference() {
        let q = Query::corr("ref")
            .memory_at_most_frac(0.8)
            .flops_at_most_frac(0.5);
        let p = plan(&q, "ref", &profile());
        assert_eq!(p.constraint.max_memory_mb, Some(80.0));
        assert_eq!(p.constraint.max_gflops, Some(5.0));
        assert_eq!(p.constraint.max_latency_ms, None);
        assert_eq!(p.limit, 1);
        assert_eq!(p.min_score, 0.95);
    }

    #[test]
    fn absolute_bounds_pass_through() {
        let q = Query::corr("ref").latency_at_most_ms(30.0);
        let p = plan(&q, "ref", &profile());
        assert_eq!(p.constraint.max_latency_ms, Some(30.0));
    }

    #[test]
    fn repeated_dimension_takes_tightest() {
        let q = Query::corr("ref")
            .memory_at_most_frac(0.8)
            .memory_at_most_frac(0.5);
        let p = plan(&q, "ref", &profile());
        assert_eq!(p.constraint.max_memory_mb, Some(50.0));
    }

    #[test]
    fn limit_tracks_select_kind() {
        let q = Query::corr("ref").top(7);
        assert_eq!(plan(&q, "ref", &profile()).limit, 7);
    }
}
