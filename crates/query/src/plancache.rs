//! The epoch-keyed plan/result cache of the lock-free query path.
//!
//! A query against a *published engine snapshot* is a pure function of
//! `(normalized query text, snapshot epoch)`: the snapshot is immutable,
//! planning is deterministic, and execution orders with `total_cmp` — so
//! the resolved [`QueryPlan`] *and* the final result set can be memoized
//! outright. Entries are keyed by the epoch, which makes invalidation
//! free: a registration publishes a new snapshot with a bumped epoch,
//! new queries probe under the new key, and stale entries age out of the
//! LRU without any explicit flush (the paper's Section 5.5 observation
//! that indices are cheap to keep around applies to plans a fortiori).
//!
//! Queries carrying an `EXEC` clause are *never* cached: they re-profile
//! models live from the repository, which sits outside the snapshot and
//! may change without an epoch bump.
//!
//! The structure mirrors the pairwise-analysis cache: lock-striped
//! shards, per-shard LRU clock, `capacity == 0` disables caching
//! entirely, and hit/miss counters publish to the process-wide metrics
//! registry on demand (`plan_cache.*`).

use crate::engine::QueryResult;
use crate::plan::QueryPlan;
use sommelier_runtime::metrics::counters;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const SHARDS: usize = 16;

/// Collapse insignificant whitespace so textual variants of the same
/// query share a cache entry ("SELECT  model …" ≡ "SELECT model …").
/// The query language has no whitespace-significant tokens.
pub fn normalize_query(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

struct Entry {
    epoch: u64,
    text: String,
    plan: QueryPlan,
    results: Vec<QueryResult>,
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    clock: u64,
}

/// Counter snapshot of a [`PlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that fell through to plan + execute.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// A sharded, epoch-keyed LRU over resolved plans and result sets.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` entries; `0` disables caching
    /// (every probe misses silently, nothing is stored or counted).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard: capacity.div_ceil(SHARDS).max(1),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Whether caching is disabled (`capacity == 0`).
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    fn key_of(epoch: u64, text: &str) -> u64 {
        // DefaultHasher with `new()` uses fixed keys, so the mapping is
        // deterministic across processes and job counts.
        let mut h = DefaultHasher::new();
        epoch.hash(&mut h);
        text.hash(&mut h);
        h.finish()
    }

    fn shard_of(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % SHARDS as u64) as usize]
    }

    /// Look up the plan and result set cached for `(epoch, text)`.
    /// `text` must already be normalized.
    pub fn get(&self, epoch: u64, text: &str) -> Option<(QueryPlan, Vec<QueryResult>)> {
        if self.is_disabled() {
            return None;
        }
        let key = Self::key_of(epoch, text);
        let mut shard = self.shard_of(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.clock += 1;
        let stamp = shard.clock;
        match shard.map.get_mut(&key) {
            // The epoch/text check guards against hash collisions; the
            // epoch is also hashed, so stale-epoch entries are simply
            // unreachable and age out via LRU.
            Some(e) if e.epoch == epoch && e.text == text => {
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((e.plan.clone(), e.results.clone()))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store the plan and results computed for `(epoch, text)`.
    pub fn insert(
        &self,
        epoch: u64,
        text: &str,
        plan: QueryPlan,
        results: Vec<QueryResult>,
    ) {
        if self.is_disabled() {
            return;
        }
        let key = Self::key_of(epoch, text);
        let mut shard = self.shard_of(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.clock += 1;
        let stamp = shard.clock;
        if shard.map.len() >= self.per_shard && !shard.map.contains_key(&key) {
            // Evict the least recently touched entry of this shard.
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&victim);
            }
        }
        shard.map.insert(
            key,
            Entry {
                epoch,
                text: text.to_string(),
                plan,
                results,
                stamp,
            },
        );
    }

    /// Hit/miss/entry counters.
    pub fn stats(&self) -> PlanCacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len() as u64)
            .sum();
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Publish the counters to the metrics registry (`plan_cache.*`).
    pub fn publish_metrics(&self) {
        let stats = self.stats();
        counters::set("plan_cache.hits", stats.hits);
        counters::set("plan_cache.misses", stats.misses);
        counters::set("plan_cache.entries", stats.entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::FinalSelection;
    use sommelier_index::ResourceConstraint;

    fn plan_fixture(limit: usize) -> QueryPlan {
        QueryPlan {
            reference_key: "ref".into(),
            min_score: 0.5,
            constraint: ResourceConstraint::default(),
            selection: FinalSelection::Similarity,
            limit,
        }
    }

    #[test]
    fn normalization_collapses_whitespace_only() {
        assert_eq!(
            normalize_query("  SELECT   model\tCORR x\n WITHIN 0.5 "),
            "SELECT model CORR x WITHIN 0.5"
        );
        assert_eq!(normalize_query("SELECT model"), "SELECT model");
    }

    #[test]
    fn hit_returns_stored_plan_and_results() {
        let cache = PlanCache::new(64);
        assert!(cache.get(1, "q").is_none());
        cache.insert(1, "q", plan_fixture(3), Vec::new());
        let (plan, results) = cache.get(1, "q").expect("hit after insert");
        assert_eq!(plan.limit, 3);
        assert!(results.is_empty());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn epochs_partition_the_key_space() {
        let cache = PlanCache::new(64);
        cache.insert(1, "q", plan_fixture(1), Vec::new());
        assert!(cache.get(2, "q").is_none(), "new epoch must miss");
        cache.insert(2, "q", plan_fixture(2), Vec::new());
        assert_eq!(cache.get(1, "q").unwrap().0.limit, 1);
        assert_eq!(cache.get(2, "q").unwrap().0.limit, 2);
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let cache = PlanCache::new(0);
        cache.insert(1, "q", plan_fixture(1), Vec::new());
        assert!(cache.get(1, "q").is_none());
        assert_eq!(cache.stats(), PlanCacheStats::default());
    }

    #[test]
    fn eviction_keeps_recently_used_entries() {
        // One entry per shard: any insert beyond capacity evicts the
        // stalest entry of its shard.
        let cache = PlanCache::new(SHARDS);
        for i in 0..(SHARDS as u64 * 4) {
            cache.insert(1, &format!("q{i}"), plan_fixture(1), Vec::new());
        }
        let stats = cache.stats();
        assert!(stats.entries <= SHARDS as u64, "capacity respected");
        assert!(stats.entries > 0);
    }

    /// Regression test for republish churn: epochs key the cache, so a
    /// long-lived process (the serving daemon) that survives thousands
    /// of snapshot publications must not let dead-epoch entries pile
    /// up. Stale entries become unreachable the moment the epoch
    /// bumps; the LRU must then actually evict them instead of letting
    /// the map grow by one generation per epoch.
    #[test]
    fn stale_epoch_entries_are_evicted_under_republish_churn() {
        let capacity = 32;
        let cache = PlanCache::new(capacity);
        let queries: Vec<String> = (0..8).map(|i| format!("q{i}")).collect();
        // 500 epochs × 8 queries: ~4000 insertions through a
        // 32-entry cache. Unbounded growth across epochs would leave
        // thousands of entries resident.
        for epoch in 0..500u64 {
            for q in &queries {
                assert!(
                    cache.get(epoch, q).is_none(),
                    "entry from a dead epoch must not answer epoch {epoch}"
                );
                cache.insert(epoch, q, plan_fixture(1), Vec::new());
            }
        }
        let stats = cache.stats();
        // Shard capacity rounds up (`div_ceil`), so the hard bound is
        // per_shard × SHARDS, not the nominal capacity.
        let hard_bound = (capacity as u64).div_ceil(SHARDS as u64) * SHARDS as u64;
        assert!(
            stats.entries <= hard_bound,
            "{} entries resident after 500 epochs (bound {hard_bound}): \
             stale epochs are not being evicted",
            stats.entries
        );
        assert_eq!(stats.hits, 0, "every probe crossed an epoch boundary");
        // Current-epoch entries still serve hits after all that churn.
        cache.insert(500, "fresh", plan_fixture(7), Vec::new());
        assert_eq!(cache.get(500, "fresh").unwrap().0.limit, 7);
    }
}
