//! Churn determinism: the incrementally maintained index is a pure
//! function of the final key universe.
//!
//! The contract under test (PR 8's acceptance bar): after an arbitrary
//! sequence of `register` / `unregister` / `reregister` mutations, the
//! engine's indices serialize — JSON *and* `.somb` — byte-identically
//! to a from-scratch `index_existing` build over just the surviving
//! models, at `jobs` 1, 4, and 8. No drift from removal order, slot
//! reuse, compaction timing, edge-table retention, or scheduling.

use proptest::prelude::*;
use sommelier_graph::{Model, TaskKind};
use sommelier_index::persist::{IndexSnapshot, SnapshotStats, SNAPSHOT_VERSION};
use sommelier_index::somb;
use sommelier_query::{Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_tensor::Prng;
use sommelier_zoo::families::{Family, FamilyScale};
use sommelier_zoo::teacher::{DatasetBias, Teacher};
use std::collections::BTreeSet;
use std::sync::Arc;

const POOL: usize = 5;

/// Deterministic model pool: `m-<idx>` in two content generations, so
/// `reregister` can swap a key's weights without touching its name.
fn build_model(idx: usize, generation: usize) -> Model {
    let teacher = Teacher::for_task(TaskKind::ImageRecognition, 51);
    let bias = DatasetBias::new(&teacher, "imagenet", 0.05);
    let mut rng = Prng::seed_from_u64(1000 + (idx * 2 + generation) as u64);
    let scale = 1.4 - 0.2 * idx as f64 - 0.05 * generation as f64;
    Family::Resnetish.build_scaled(
        format!("m-{idx}"),
        &teacher,
        &bias,
        &FamilyScale::new(scale, 3, 0.01),
        &mut rng,
    )
}

fn config(jobs: usize) -> SommelierConfig {
    let mut cfg = SommelierConfig {
        jobs,
        validation_rows: 128,
        ..SommelierConfig::default()
    };
    cfg.index.sample_size = 16; // small pool: analyze every pair
    cfg
}

/// Serialize an engine's published indices at an explicit epoch. Both
/// sides of the comparison pass the same epoch, so the images differ
/// only if the index *contents* differ.
fn images(engine: &Sommelier, epoch: u64) -> (String, Vec<u8>) {
    let snap = engine.reader().snapshot();
    let stats = SnapshotStats::of(&snap.semantic, &snap.resource, epoch);
    let json = serde_json::to_string(&IndexSnapshot {
        version: SNAPSHOT_VERSION,
        stats: Some(stats),
        semantic: snap.semantic.clone(),
        resource: snap.resource.clone(),
    })
    .expect("snapshot serializes");
    let binary = somb::encode(&snap.semantic, &snap.resource, Some(&stats));
    (json, binary)
}

/// Run one churn sequence at a `jobs` setting; return the incremental
/// engine's images plus a from-scratch rebuild's images over the
/// surviving models.
fn churn(ops: &[(u8, u8)], jobs: usize) -> ((String, Vec<u8>), (String, Vec<u8>)) {
    let repo = Arc::new(InMemoryRepository::new());
    let mut engine = Sommelier::connect(
        Arc::clone(&repo) as Arc<dyn ModelRepository>,
        config(jobs),
    );
    let mut live: BTreeSet<usize> = BTreeSet::new();
    let mut published: BTreeSet<usize> = BTreeSet::new();
    let mut generation = [0usize; POOL];
    for &(op, idx) in ops {
        let idx = idx as usize % POOL;
        if !live.contains(&idx) {
            // `unregister` leaves the repository file behind, so a
            // re-add of a previously published key is a `reregister`.
            let model = build_model(idx, generation[idx]);
            if published.insert(idx) {
                engine.register(&model).unwrap();
            } else {
                engine.reregister(&model).unwrap();
            }
            live.insert(idx);
        } else {
            match op % 3 {
                0 | 1 => {
                    assert!(engine.unregister(&format!("m-{idx}")));
                    live.remove(&idx);
                }
                _ => {
                    generation[idx] ^= 1;
                    engine.reregister(&build_model(idx, generation[idx])).unwrap();
                }
            }
        }
    }
    let incremental = images(&engine, 0);

    // From-scratch control: a fresh repository holding exactly the
    // surviving models (at their current content), bulk-indexed.
    let fresh_repo = Arc::new(InMemoryRepository::new());
    for idx in &live {
        let model = repo.load(&format!("m-{idx}")).unwrap();
        fresh_repo.publish(&model.name, &model, false).unwrap();
    }
    let mut fresh = Sommelier::connect(fresh_repo as Arc<dyn ModelRepository>, config(jobs));
    fresh.index_existing().unwrap();
    (incremental, images(&fresh, 0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random mutation sequences leave indices byte-identical to a
    /// from-scratch build of the surviving key set, at jobs 1/4/8 —
    /// and identical across those job counts too.
    #[test]
    fn churned_indices_match_a_from_scratch_build(
        ops in proptest::collection::vec((0u8..3, 0u8..POOL as u8), 1..12),
    ) {
        let mut per_jobs = Vec::new();
        for jobs in [1usize, 4, 8] {
            let (incremental, scratch) = churn(&ops, jobs);
            // Churned JSON and .somb images must equal the
            // from-scratch build's at this job count.
            prop_assert_eq!(&incremental.0, &scratch.0);
            prop_assert_eq!(&incremental.1, &scratch.1);
            per_jobs.push(incremental);
        }
        // And the images must agree across job counts too.
        prop_assert_eq!(&per_jobs[0], &per_jobs[1]);
        prop_assert_eq!(&per_jobs[1], &per_jobs[2]);
    }
}

/// A directed worst-case sequence (remove-heavy churn through slot
/// reuse and a compaction) pinned outside proptest so it always runs.
#[test]
fn compaction_heavy_churn_is_canonical() {
    let ops: Vec<(u8, u8)> = vec![
        (2, 0), (2, 1), (2, 2), (2, 3), (2, 4), // register all five
        (0, 0), (0, 1), (0, 2), (0, 3),         // remove four: compaction
        (2, 1), (2, 1),                          // re-register + replace
    ];
    let (incremental, scratch) = churn(&ops, 4);
    assert_eq!(incremental.0, scratch.0, "JSON image differs");
    assert_eq!(incremental.1, scratch.1, ".somb image differs");
}
