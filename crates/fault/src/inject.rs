//! Deterministic fault injection over any [`Storage`] backend.
//!
//! Two failure models, both fully determined by a [`FaultPlan`]:
//!
//! * **Crash** — `crash_at = Some(n)` arms the n-th primitive
//!   operation (0-based, counted across the storage's lifetime). The
//!   armed op takes a *torn* effect — a seeded prefix of a write lands,
//!   a rename/link is dropped, a read returns EIO — then errors, and
//!   every subsequent op fails too: the process is dead. Reopening the
//!   directory with a fresh backend models the post-crash restart.
//! * **Transient** — per-[`OpKind`] budgets of
//!   [`io::ErrorKind::Interrupted`] failures that burn down and then
//!   let the op through untouched, for exercising the retry layer.
//!
//! The op counter spans primitives only; the composite operations
//! ([`Storage::write_atomic`], [`Storage::create_exclusive`]) inherit
//! injection at every constituent step.

use crate::storage::Storage;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// Primitive operation kinds, for budgeted transient faults and crash
/// reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    Read,
    Write,
    Fsync,
    Rename,
    Link,
    Remove,
    List,
}

impl OpKind {
    fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Fsync => "fsync",
            OpKind::Rename => "rename",
            OpKind::Link => "link",
            OpKind::Remove => "remove",
            OpKind::List => "list",
        }
    }
}

/// What the armed crash point did to the in-flight operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A write landed only a seeded prefix of its bytes.
    TornWrite,
    /// A rename/link/remove was dropped entirely.
    DroppedOp,
    /// A read/list/fsync failed with EIO and no effect.
    Eio,
}

/// A deterministic fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed driving every injected choice (torn-prefix lengths).
    pub seed: u64,
    /// Crash at this primitive-op index (0-based); `None` = never.
    pub crash_at: Option<u64>,
    /// Per-kind budgets of transient (`Interrupted`) failures.
    pub transient: Vec<(OpKind, u32)>,
}

impl FaultPlan {
    /// A plan that only counts ops (no faults) — used to size a
    /// crash-loop sweep.
    pub fn count_only() -> Self {
        FaultPlan::default()
    }

    /// A plan that crashes at primitive op `n`.
    pub fn crash_at(seed: u64, n: u64) -> Self {
        FaultPlan {
            seed,
            crash_at: Some(n),
            ..FaultPlan::default()
        }
    }
}

/// Tear shapes for binary snapshot images (the `.somb` fault surface).
///
/// [`FaultyStorage`] tears *writes* mid-protocol; these tear a file
/// *at rest* — the cases a crash-free byte flip (bad disk, truncating
/// copy, hand-edit) produces. Format-agnostic: the functions operate on
/// raw bytes and never parse the image, so they compose with any layout
/// the snapshot format evolves into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryTearKind {
    /// Cut the image short inside its trailing data region (the slab
    /// sits at the tail of the section chain, so a truncated copy loses
    /// slab bytes first).
    TruncatedSlab,
    /// Flip one byte of the body, leaving length intact — a CRC-only
    /// corruption.
    CorruptedCrc,
    /// Delete a single interior byte, shifting every later section off
    /// its declared (aligned) offset.
    MisalignedSection,
}

impl BinaryTearKind {
    pub const ALL: [BinaryTearKind; 3] = [
        BinaryTearKind::TruncatedSlab,
        BinaryTearKind::CorruptedCrc,
        BinaryTearKind::MisalignedSection,
    ];

    pub fn name(self) -> &'static str {
        match self {
            BinaryTearKind::TruncatedSlab => "truncated-slab",
            BinaryTearKind::CorruptedCrc => "corrupted-crc",
            BinaryTearKind::MisalignedSection => "misaligned-section",
        }
    }
}

/// Apply a deterministic tear to a binary image. The choice of cut /
/// flip position is seeded; the same `(bytes, seed, kind)` always
/// produces the same tear. Images shorter than a few bytes are returned
/// truncated to empty (nothing meaningful to tear).
pub fn tear_binary(bytes: &[u8], seed: u64, kind: BinaryTearKind) -> Vec<u8> {
    if bytes.len() < 4 {
        return Vec::new();
    }
    let r = mix(seed, bytes.len() as u64);
    match kind {
        BinaryTearKind::TruncatedSlab => {
            // Cut somewhere in the last third: past the header, inside
            // the data sections.
            let lo = bytes.len() * 2 / 3;
            let cut = lo + (r as usize) % (bytes.len() - lo);
            bytes[..cut].to_vec()
        }
        BinaryTearKind::CorruptedCrc => {
            // Flip one body byte past the 4-byte magic so the image
            // still sniffs as binary but fails its checksums.
            let mut out = bytes.to_vec();
            let pos = 4 + (r as usize) % (bytes.len() - 4);
            out[pos] ^= 0x80 | ((r >> 32) as u8 & 0x7F);
            out
        }
        BinaryTearKind::MisalignedSection => {
            // Drop one interior byte: lengths and offsets now disagree
            // and aligned sections land unaligned.
            let mut out = bytes.to_vec();
            let pos = 4 + (r as usize) % (bytes.len() - 5);
            out.remove(pos);
            out
        }
    }
}

struct InjectState {
    op: u64,
    dead: bool,
    transient_left: HashMap<OpKind, u32>,
    injected: Vec<(u64, OpKind, FaultKind)>,
}

/// A [`Storage`] backend that injects the faults of a [`FaultPlan`]
/// into an inner backend.
pub struct FaultyStorage<S> {
    inner: S,
    seed: u64,
    crash_at: Option<u64>,
    state: Mutex<InjectState>,
}

/// splitmix64 — deterministic per-op randomness from (seed, op index).
fn mix(seed: u64, op: u64) -> u64 {
    let mut z = seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<S: Storage> FaultyStorage<S> {
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        let transient_left = plan.transient.iter().copied().collect();
        FaultyStorage {
            inner,
            seed: plan.seed,
            crash_at: plan.crash_at,
            state: Mutex::new(InjectState {
                op: 0,
                dead: false,
                transient_left,
                injected: Vec::new(),
            }),
        }
    }

    /// Primitive operations issued so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).op
    }

    /// Whether the simulated process has crashed.
    pub fn is_dead(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).dead
    }

    /// Every injected fault so far, as `(op index, op kind, effect)`.
    pub fn injected(&self) -> Vec<(u64, OpKind, FaultKind)> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .injected
            .clone()
    }

    /// Gate an operation: returns `Ok(op_index)` to proceed, or the
    /// injected error. `Err` paths record what happened.
    fn gate(&self, kind: OpKind) -> Result<u64, io::Error> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.dead {
            return Err(io::Error::other(format!(
                "injected: process dead (crashed earlier), {} refused",
                kind.name()
            )));
        }
        let op = st.op;
        st.op += 1;
        if let Some(budget) = st.transient_left.get_mut(&kind) {
            if *budget > 0 {
                *budget -= 1;
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected: transient {} failure", kind.name()),
                ));
            }
        }
        if self.crash_at == Some(op) {
            st.dead = true;
            let effect = match kind {
                OpKind::Write => FaultKind::TornWrite,
                OpKind::Rename | OpKind::Link | OpKind::Remove => FaultKind::DroppedOp,
                OpKind::Read | OpKind::List | OpKind::Fsync => FaultKind::Eio,
            };
            st.injected.push((op, kind, effect));
            // Signal the crash via a sentinel error *after* the torn
            // effect is applied by the caller (writes only).
            return Err(crash_error(op, kind));
        }
        Ok(op)
    }
}

fn crash_error(op: u64, kind: OpKind) -> io::Error {
    io::Error::other(format!("injected: crash at op {op} ({})", kind.name()))
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.gate(OpKind::Read)?;
        self.inner.read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.gate(OpKind::Write) {
            Ok(_) => self.inner.write_file(path, bytes),
            Err(e) => {
                // A crashing write tears: a seeded prefix reaches the
                // file (possibly zero bytes), the rest never does.
                if e.to_string().contains("crash at op") {
                    let op = self.ops().saturating_sub(1);
                    let cut = if bytes.is_empty() {
                        0
                    } else {
                        (mix(self.seed, op) as usize) % bytes.len()
                    };
                    let _ = self.inner.write_file(path, &bytes[..cut]);
                }
                Err(e)
            }
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.gate(OpKind::Fsync)?;
        self.inner.fsync(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(OpKind::Rename)?;
        self.inner.rename(from, to)
    }

    fn link(&self, existing: &Path, new: &Path) -> io::Result<()> {
        self.gate(OpKind::Link)?;
        self.inner.link(existing, new)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.gate(OpKind::Remove)?;
        self.inner.remove(path)
    }

    fn exists(&self, path: &Path) -> bool {
        // Advisory probe: not a crash point (it has no effect to tear),
        // but a dead process can no longer observe anything.
        if self.state.lock().unwrap_or_else(|e| e.into_inner()).dead {
            return false;
        }
        self.inner.exists(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.gate(OpKind::List)?;
        self.inner.list(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::StdStorage;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sommelier-inject-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crash_during_atomic_write_never_tears_the_destination() {
        let dir = scratch("tear");
        let path = dir.join("f.json");
        StdStorage.write_atomic(&path, b"OLD-STATE").unwrap();
        // write_atomic = write, fsync, rename (+ cleanup attempts):
        // crash each of the first three primitive steps.
        for at in 0..3 {
            let s = FaultyStorage::new(StdStorage, FaultPlan::crash_at(7, at));
            let err = s.write_atomic(&path, b"NEW-STATE-LONGER").unwrap_err();
            assert!(err.to_string().contains("injected"), "{err}");
            assert!(s.is_dead());
            // The destination still holds the old bytes, whole.
            assert_eq!(StdStorage.read(&path).unwrap(), b"OLD-STATE");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_past_the_rename_commits_the_new_state() {
        let dir = scratch("commit");
        let path = dir.join("f.json");
        StdStorage.write_atomic(&path, b"OLD").unwrap();
        // Op 3 is the (best-effort) temp cleanup after a successful
        // rename — by then the new state is committed.
        let s = FaultyStorage::new(StdStorage, FaultPlan::crash_at(7, 3));
        // The composite itself succeeded before op 3 runs inside it?
        // No: rename is op 2 and there is no op 3 in write_atomic's
        // happy path — so the write succeeds and the *next* op dies.
        s.write_atomic(&path, b"NEW").unwrap();
        assert_eq!(StdStorage.read(&path).unwrap(), b"NEW");
        assert!(s.read(&path).is_err(), "op 3 crashes the next read");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_prefix_is_deterministic_per_seed() {
        let dir = scratch("det");
        let run = |seed: u64| -> Vec<u8> {
            let path = dir.join(format!("t-{seed}.json"));
            let s = FaultyStorage::new(StdStorage, FaultPlan::crash_at(seed, 0));
            let _ = s.write_file(&path, b"0123456789abcdef");
            StdStorage.read(&path).unwrap_or_default()
        };
        assert_eq!(run(1), run(1), "same seed, same tear");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_budget_burns_down_then_succeeds() {
        let dir = scratch("trans");
        let path = dir.join("f.json");
        let plan = FaultPlan {
            seed: 1,
            crash_at: None,
            transient: vec![(OpKind::Write, 2)],
        };
        let s = FaultyStorage::new(StdStorage, plan);
        for _ in 0..2 {
            let err = s.write_file(&path, b"x").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        }
        s.write_file(&path, b"x").unwrap();
        assert!(!s.is_dead());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_tears_are_deterministic_and_distinct() {
        let image: Vec<u8> = (0u16..600).map(|i| (i % 251) as u8).collect();
        for kind in BinaryTearKind::ALL {
            let a = tear_binary(&image, 9, kind);
            let b = tear_binary(&image, 9, kind);
            assert_eq!(a, b, "{}: same seed, same tear", kind.name());
            assert_ne!(a, image, "{}: the tear changed something", kind.name());
        }
        let t = tear_binary(&image, 9, BinaryTearKind::TruncatedSlab);
        assert!(t.len() >= image.len() * 2 / 3 && t.len() < image.len());
        assert_eq!(t, image[..t.len()], "truncation is a clean prefix");
        let c = tear_binary(&image, 9, BinaryTearKind::CorruptedCrc);
        assert_eq!(c.len(), image.len());
        assert_eq!(
            c.iter().zip(&image).filter(|(x, y)| x != y).count(),
            1,
            "exactly one flipped byte"
        );
        let m = tear_binary(&image, 9, BinaryTearKind::MisalignedSection);
        assert_eq!(m.len(), image.len() - 1, "one byte deleted");
        assert_eq!(m[..4], image[..4], "magic untouched: still sniffs binary");
    }

    #[test]
    fn op_counting_spans_composites() {
        let dir = scratch("count");
        let s = FaultyStorage::new(StdStorage, FaultPlan::count_only());
        s.write_atomic(&dir.join("a.json"), b"a").unwrap();
        // write + fsync + rename.
        assert_eq!(s.ops(), 3);
        s.create_exclusive(&dir.join("b.json"), b"b").unwrap();
        // + write + fsync + link + remove(temp).
        assert_eq!(s.ops(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }
}
