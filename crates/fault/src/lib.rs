//! `sommelier-fault` — crash-safe storage for the Sommelier stores.
//!
//! The paper notes both indices "can be populated to disk when they grow
//! large" (Section 5.5), and the serving integration (Section 7.1)
//! assumes the engine always comes back up with a valid snapshot. That
//! only holds if every byte that reaches a store file got there
//! *atomically*: a bare `fs::write` interrupted by a crash leaves torn
//! JSON that takes the whole query path down on the next start.
//!
//! This crate is the durability layer the rest of the workspace writes
//! through:
//!
//! * [`Storage`] — the primitive I/O vocabulary (read / write / fsync /
//!   rename / link / remove / list) plus two *composite* operations
//!   every store uses: [`Storage::write_atomic`] (write-to-temp → fsync
//!   → atomic rename) and [`Storage::create_exclusive`] (write-to-temp
//!   → fsync → atomic hard-link, the `O_EXCL`-style publish that closes
//!   check-then-write races). The composites are provided methods built
//!   from the primitives, so *every* backend — including the
//!   fault-injecting one — gets crash points between each primitive
//!   step for free.
//! * [`StdStorage`] — the real filesystem backend.
//! * [`FaultyStorage`] — a deterministic, seeded fault injector that
//!   wraps any backend: it can crash the process model at an exact
//!   primitive-op index (partial write, dropped rename, EIO on read —
//!   everything after the crash fails, like a dead process), or burn a
//!   per-op-kind budget of *transient* errors for exercising retries.
//! * [`retry`] — bounded retry-with-backoff for transient storage
//!   errors, and [`RetryingStorage`] which applies it to every
//!   primitive.
//! * [`quarantine`] — move an unreadable artifact aside as
//!   `<name>.corrupt-<epoch>` so recovery can rebuild without
//!   destroying the evidence.
//!
//! Observability: retry and quarantine bump the process-wide
//! `recovery.*` counters in `sommelier_runtime::metrics`.

pub mod inject;
pub mod retry;
pub mod storage;

pub use inject::{tear_binary, BinaryTearKind, FaultKind, FaultPlan, FaultyStorage, OpKind};
pub use retry::{RetryPolicy, RetryingStorage};
pub use storage::{quarantine, temp_sibling, StdStorage, Storage};
