//! The storage abstraction and the real filesystem backend.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic discriminator for temp-file names within this process.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The temp-file sibling used by the atomic composites: lives in the
/// same directory as `path` (so the final rename never crosses a
/// filesystem) and carries a `.tmp-` marker that `fsck` and the lint
/// layer recognize as an orphan when a crash strands it.
pub fn temp_sibling(path: &Path) -> PathBuf {
    let file = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("unnamed");
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    path.with_file_name(format!(
        "{file}.tmp-{}-{seq}",
        std::process::id()
    ))
}

/// The primitive I/O surface the stores are written against.
///
/// The atomic composites ([`Storage::write_atomic`],
/// [`Storage::create_exclusive`]) are *provided* methods expressed in
/// terms of the primitives. That shape is load-bearing: a
/// fault-injecting backend only has to intercept primitives to obtain a
/// crash point between every step of every composite — exactly the
/// torn-write windows a real crash exposes.
pub trait Storage: Send + Sync {
    /// Read the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Plain full-file create+write (NOT durable, NOT atomic). Only
    /// ever used on temp siblings; final paths change exclusively via
    /// [`Storage::rename`] / [`Storage::link`].
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Flush file contents to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;

    /// Atomically replace `to` with `from` (may overwrite).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Atomically materialize `new` as a hard link to `existing`;
    /// fails with [`io::ErrorKind::AlreadyExists`] if `new` exists.
    /// This is the no-overwrite counterpart of [`Storage::rename`].
    fn link(&self, existing: &Path, new: &Path) -> io::Result<()>;

    /// Delete a file.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Whether a file exists (advisory only — never use as a
    /// check-then-act guard; that is what [`Storage::link`] is for).
    fn exists(&self, path: &Path) -> bool;

    /// File names (not paths) of a directory's entries.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Durably replace `path` with `bytes`: write a temp sibling,
    /// fsync it, rename it over the destination. A crash at any
    /// primitive leaves either the old file or the new file at `path`
    /// — never a torn mixture — plus at worst a stranded `.tmp-`
    /// sibling.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = temp_sibling(path);
        if let Err(e) = self.write_file(&tmp, bytes) {
            let _ = self.remove(&tmp);
            return Err(e);
        }
        if let Err(e) = self.fsync(&tmp) {
            let _ = self.remove(&tmp);
            return Err(e);
        }
        if let Err(e) = self.rename(&tmp, path) {
            let _ = self.remove(&tmp);
            return Err(e);
        }
        Ok(())
    }

    /// Durably create `path` with `bytes` only if it does not already
    /// exist: write a temp sibling, fsync it, hard-link it into place.
    /// The link is the single atomic commit point, so two concurrent
    /// publishers of the same path cannot both succeed — exactly one
    /// link wins, the loser observes [`io::ErrorKind::AlreadyExists`].
    fn create_exclusive(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = temp_sibling(path);
        if let Err(e) = self.write_file(&tmp, bytes) {
            let _ = self.remove(&tmp);
            return Err(e);
        }
        if let Err(e) = self.fsync(&tmp) {
            let _ = self.remove(&tmp);
            return Err(e);
        }
        let linked = self.link(&tmp, path);
        let _ = self.remove(&tmp);
        linked
    }
}

/// The real filesystem backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdStorage;

impl StdStorage {
    /// Best-effort fsync of `path`'s parent directory, making a
    /// just-committed rename/link durable against power loss.
    fn sync_parent(path: &Path) {
        if let Some(parent) = path.parent() {
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
}

impl Storage for StdStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)?;
        Self::sync_parent(to);
        Ok(())
    }

    fn link(&self, existing: &Path, new: &Path) -> io::Result<()> {
        fs::hard_link(existing, new)?;
        Self::sync_parent(new);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().into_string().map_err(|n| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("non-UTF-8 file name {n:?}"),
                )
            })?;
            out.push(name);
        }
        Ok(out)
    }
}

/// Move an unreadable artifact aside as `<name>.corrupt-<epoch>`
/// (appending `-<n>` on collision) so recovery can rebuild while the
/// evidence survives for inspection. Bumps `recovery.quarantined`.
pub fn quarantine(storage: &dyn Storage, path: &Path) -> io::Result<PathBuf> {
    let epoch = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let file = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("unnamed");
    let mut dest = path.with_file_name(format!("{file}.corrupt-{epoch}"));
    let mut n = 0u32;
    while storage.exists(&dest) {
        n += 1;
        dest = path.with_file_name(format!("{file}.corrupt-{epoch}-{n}"));
    }
    storage.rename(path, &dest)?;
    sommelier_runtime::metrics::counters::add("recovery.quarantined", 1);
    Ok(dest)
}

/// Whether a store file name marks a quarantined artifact.
pub fn is_quarantine_name(name: &str) -> bool {
    name.contains(".corrupt-")
}

/// Whether a store file name marks a temp sibling of an atomic write
/// (an orphan, if it survived the writing process).
pub fn is_temp_name(name: &str) -> bool {
    name.contains(".tmp-")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sommelier-fault-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = scratch("atomic");
        let path = dir.join("f.json");
        let s = StdStorage;
        s.write_atomic(&path, b"one").unwrap();
        assert_eq!(s.read(&path).unwrap(), b"one");
        s.write_atomic(&path, b"two").unwrap();
        assert_eq!(s.read(&path).unwrap(), b"two");
        assert!(s.list(&dir).unwrap().iter().all(|n| !is_temp_name(n)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_exclusive_rejects_existing() {
        let dir = scratch("excl");
        let path = dir.join("f.json");
        let s = StdStorage;
        s.create_exclusive(&path, b"first").unwrap();
        let err = s.create_exclusive(&path, b"second").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(s.read(&path).unwrap(), b"first");
        assert!(s.list(&dir).unwrap().iter().all(|n| !is_temp_name(n)));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quarantine_moves_aside_and_never_collides() {
        let dir = scratch("quar");
        let s = StdStorage;
        let path = dir.join("snap.json");
        s.write_file(&path, b"garbage").unwrap();
        let q1 = quarantine(&s, &path).unwrap();
        assert!(!s.exists(&path));
        assert!(is_quarantine_name(q1.file_name().unwrap().to_str().unwrap()));
        // Same epoch second → the collision suffix kicks in.
        s.write_file(&path, b"garbage2").unwrap();
        let q2 = quarantine(&s, &path).unwrap();
        assert_ne!(q1, q2);
        assert_eq!(s.read(&q2).unwrap(), b"garbage2");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_surfaces_missing_directory() {
        let s = StdStorage;
        assert!(s.list(Path::new("/nonexistent/sommelier-dir")).is_err());
    }
}
