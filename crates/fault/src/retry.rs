//! Bounded retry-with-backoff for transient storage errors.

use crate::storage::Storage;
use std::io;
use std::path::Path;
use std::time::Duration;

/// How many times to try, and how long to wait between tries.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` = no retry.
    pub attempts: u32,
    /// Backoff before retry `k` is `base_ms << (k - 1)`, capped at
    /// [`RetryPolicy::max_delay_ms`]. `0` = no sleeping (tests).
    pub base_ms: u64,
    /// Backoff ceiling.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_ms: 5,
            max_delay_ms: 100,
        }
    }
}

impl RetryPolicy {
    /// A test-friendly policy: retry without sleeping.
    pub fn immediate(attempts: u32) -> Self {
        RetryPolicy {
            attempts,
            base_ms: 0,
            max_delay_ms: 0,
        }
    }
}

/// Whether an I/O error is worth retrying. Crash-style errors
/// (`Other`) and logical errors (`NotFound`, `AlreadyExists`,
/// `InvalidData`) are permanent; scheduler-ish hiccups are not.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Run `op` under the policy, retrying transient failures with
/// exponential backoff. Every retry bumps the process-wide
/// `recovery.retries` counter.
pub fn with_backoff<T>(
    policy: &RetryPolicy,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let attempts = policy.attempts.max(1);
    let mut last = None;
    for k in 0..attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && k + 1 < attempts => {
                sommelier_runtime::metrics::counters::add("recovery.retries", 1);
                if policy.base_ms > 0 {
                    let delay = policy
                        .base_ms
                        .checked_shl(k)
                        .unwrap_or(u64::MAX)
                        .min(policy.max_delay_ms.max(policy.base_ms));
                    std::thread::sleep(Duration::from_millis(delay));
                }
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("retry exhausted with no attempt")))
}

/// A backend that applies [`with_backoff`] to every primitive of an
/// inner [`Storage`]. Retrying primitives (rather than composites) is
/// safe by construction: each primitive is idempotent-or-atomic
/// (rewriting a temp file, re-fsyncing, re-listing), and the commit
/// points (`rename`/`link`) either happened or did not.
pub struct RetryingStorage<S> {
    inner: S,
    policy: RetryPolicy,
}

impl<S: Storage> RetryingStorage<S> {
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        RetryingStorage { inner, policy }
    }
}

impl<S: Storage> Storage for RetryingStorage<S> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        with_backoff(&self.policy, || self.inner.read(path))
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        with_backoff(&self.policy, || self.inner.write_file(path, bytes))
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        with_backoff(&self.policy, || self.inner.fsync(path))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        with_backoff(&self.policy, || self.inner.rename(from, to))
    }

    fn link(&self, existing: &Path, new: &Path) -> io::Result<()> {
        with_backoff(&self.policy, || self.inner.link(existing, new))
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        with_backoff(&self.policy, || self.inner.remove(path))
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        with_backoff(&self.policy, || self.inner.list(dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{FaultPlan, FaultyStorage, OpKind};
    use crate::storage::StdStorage;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sommelier-retry-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn budgeted_transient_faults_are_absorbed() {
        let dir = scratch("absorb");
        let path = dir.join("f.json");
        let faulty = FaultyStorage::new(
            StdStorage,
            FaultPlan {
                seed: 3,
                crash_at: None,
                transient: vec![(OpKind::Write, 2), (OpKind::Rename, 1)],
            },
        );
        let s = RetryingStorage::new(faulty, RetryPolicy::immediate(4));
        // The composite survives: each primitive retries past its
        // budget.
        s.write_atomic(&path, b"payload").unwrap();
        assert_eq!(StdStorage.read(&path).unwrap(), b"payload");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_beyond_attempts_still_fails() {
        let dir = scratch("exhaust");
        let faulty = FaultyStorage::new(
            StdStorage,
            FaultPlan {
                seed: 3,
                crash_at: None,
                transient: vec![(OpKind::Write, 10)],
            },
        );
        let s = RetryingStorage::new(faulty, RetryPolicy::immediate(3));
        let err = s.write_file(&dir.join("f.json"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let s = RetryingStorage::new(StdStorage, RetryPolicy::immediate(5));
        let before = sommelier_runtime::metrics::counters::get("recovery.retries");
        let err = s.read(Path::new("/nonexistent/somm-retry.json")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert_eq!(
            sommelier_runtime::metrics::counters::get("recovery.retries"),
            before,
            "NotFound must not burn retries"
        );
    }
}
