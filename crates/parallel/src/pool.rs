//! The work-stealing thread pool and its scoped-parallelism surface.
//!
//! Design notes (kept short; see crate docs for the overview):
//!
//! * Every worker owns a `Mutex<VecDeque<Job>>` local queue; a shared
//!   injector queue receives tasks spawned from outside the pool. An
//!   idle worker pops its own queue (LIFO for cache locality), then the
//!   injector, then steals FIFO from peers. Workers park on a condvar
//!   with a short timeout so shutdown and late task injection are both
//!   cheap and prompt.
//! * `jobs == 1` spawns no threads at all: `Scope::spawn` executes its
//!   closure inline on the caller, so the sequential configuration is
//!   not "parallel code on one thread" but literally the same execution
//!   order as a hand-written loop.
//! * `scope` performs *helping*: while waiting for its tasks, the
//!   calling thread executes queued jobs (its own or anyone else's).
//!   Nested scopes therefore make progress even when every worker is
//!   blocked in an inner `scope`, which is what makes deadlock-free
//!   nesting possible on a bounded pool.
//! * Panics inside tasks are caught per-task; the first payload is
//!   stashed in the scope state and re-thrown (`resume_unwind`) on the
//!   thread that owns the scope once all tasks have drained. Tasks that
//!   were already queued still run — the scope never returns with work
//!   in flight.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send>;

struct Shared {
    /// One local deque per worker thread.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Overflow / external-submission queue.
    injector: Mutex<VecDeque<Job>>,
    /// Parking lot for idle workers.
    cv_lock: Mutex<()>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Round-robin cursor for distributing external spawns.
    next: AtomicUsize,
}

impl Shared {
    /// Take one job from anywhere: own queue first (newest first, cache
    /// warm), then injector, then steal oldest-first from peers.
    fn pop_any(&self, home: Option<usize>) -> Option<Job> {
        if let Some(h) = home {
            if let Some(job) = self.queues[h].lock().unwrap_or_else(|e| e.into_inner()).pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some(job);
        }
        let n = self.queues.len();
        let start = home.unwrap_or(0);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == home {
                continue;
            }
            if let Some(job) = self.queues[victim]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                return Some(job);
            }
        }
        None
    }

    fn push_external(&self, job: Job) {
        if self.queues.is_empty() {
            // Sequential pool: jobs are executed inline by the spawner;
            // this path is unreachable, but keep it safe.
            self.injector
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(job);
        } else {
            let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
            self.queues[slot]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(job);
        }
        self.cv.notify_one();
    }
}

fn worker_loop(shared: Arc<Shared>, home: usize) {
    loop {
        if let Some(job) = shared.pop_any(Some(home)) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Park briefly; a timeout bounds the window where a task is
        // pushed between our failed pop and the wait.
        let guard = shared.cv_lock.lock().unwrap_or_else(|e| e.into_inner());
        let _unused = shared
            .cv
            .wait_timeout(guard, Duration::from_millis(10))
            .unwrap_or_else(|e| e.into_inner());
    }
}

/// A fixed-size work-stealing thread pool.
///
/// `ThreadPool::new(1)` spawns no threads; every task submitted through
/// [`ThreadPool::scope`] or the `par_*` helpers runs inline on the
/// caller in submission order, reproducing sequential execution
/// exactly.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    jobs: usize,
}

impl ThreadPool {
    /// Create a pool with `jobs` total lanes of parallelism (the caller
    /// counts as one lane: `jobs == 4` spawns 3 worker threads and the
    /// scope owner helps). `jobs == 0` is clamped to 1.
    pub fn new(jobs: usize) -> Self {
        let jobs = jobs.max(1);
        let n_workers = jobs - 1;
        let shared = Arc::new(Shared {
            queues: (0..n_workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            cv_lock: Mutex::new(()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next: AtomicUsize::new(0),
        });
        let workers = (0..n_workers)
            .map(|home| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sommelier-worker-{home}"))
                    .spawn(move || worker_loop(shared, home))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            jobs,
        }
    }

    /// The configured degree of parallelism (1 == sequential).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Structured concurrency over borrowed data.
    ///
    /// Tasks spawned on the [`Scope`] may borrow from the enclosing
    /// frame (`'env`). `scope` does not return until every spawned task
    /// has finished; while waiting, the calling thread executes queued
    /// tasks (helping), so nested scopes cannot deadlock the pool. If
    /// any task panicked, the first panic payload is re-thrown here
    /// after all tasks have drained.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        // The scope body itself may panic; defer it like a task panic so
        // spawned tasks still drain before unwinding past borrowed data.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));

        // Help until all spawned tasks are complete.
        while state.pending.load(Ordering::Acquire) != 0 {
            if let Some(job) = self.shared.pop_any(None) {
                job();
            } else {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }

        let task_panic = state
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        match (result, task_panic) {
            (Ok(value), None) => value,
            (Err(payload), _) => resume_unwind(payload),
            (_, Some(payload)) => resume_unwind(payload),
        }
    }

    /// Map `f` over `items`, returning results in input order
    /// regardless of which worker computed them.
    pub fn par_map<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(&T) -> R + Sync,
    ) -> Vec<R> {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        {
            let slots_ptr = SendPtr(slots.as_mut_ptr());
            let f = &f;
            // Chunk so each lane gets a few chunks (load balancing)
            // without per-item task overhead.
            let chunk = chunk_size(n, self.jobs);
            self.scope(|scope| {
                for start in (0..n).step_by(chunk) {
                    let end = (start + chunk).min(n);
                    scope.spawn(move || {
                        for (i, item) in items[start..end].iter().enumerate() {
                            let value = f(item);
                            // SAFETY: each index in 0..n is written by
                            // exactly one task (chunks are disjoint),
                            // and `scope` guarantees all writes complete
                            // before `slots` is read below.
                            unsafe {
                                *slots_ptr.get().add(start + i) = Some(value);
                            }
                        }
                    });
                }
            });
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("par_map slot unfilled"))
            .collect()
    }

    /// Apply `f` to disjoint chunks of `data` of at most `chunk` items,
    /// collecting one result per chunk in chunk order. `f` receives the
    /// chunk index and the chunk slice.
    pub fn par_chunks<T: Sync, R: Send>(
        &self,
        data: &[T],
        chunk: usize,
        f: impl Fn(usize, &[T]) -> R + Sync,
    ) -> Vec<R> {
        let chunk = chunk.max(1);
        let chunks: Vec<(usize, &[T])> = data.chunks(chunk).enumerate().collect();
        self.par_map(&chunks, |&(i, c)| f(i, c))
    }

    /// Apply `f` to disjoint mutable chunks of `data` of at most
    /// `chunk` items, in parallel. `f` receives the chunk index and the
    /// mutable chunk slice. Chunks are processed in deterministic
    /// *assignment*; since chunks are disjoint, results are independent
    /// of execution order.
    pub fn par_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let chunk = chunk.max(1);
        let f = &f;
        self.scope(|scope| {
            for (i, slice) in data.chunks_mut(chunk).enumerate() {
                scope.spawn(move || f(i, slice));
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _unused = handle.join();
        }
    }
}

/// Pick a chunk size that yields roughly `jobs * 4` chunks, bounded
/// below by 1, so stealing can balance uneven task costs.
fn chunk_size(n: usize, jobs: usize) -> usize {
    if jobs <= 1 {
        n
    } else {
        n.div_ceil(jobs * 4).max(1)
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// Handle passed to the closure of [`ThreadPool::scope`]; lets tasks
/// borrow from the enclosing environment (`'env`).
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawn a task on the pool. On a sequential pool (`jobs == 1`) the
    /// closure runs inline, immediately, on the calling thread — same
    /// order and same stack as a plain function call (panics propagate
    /// at the end of the scope, as in the parallel case).
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        if self.pool.jobs == 1 {
            // Inline execution: deterministic sequential semantics.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                self.state.record_panic(payload);
            }
            return;
        }
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            // `state` moved in: decrement happens exactly once per task.
            struct Guard<'a>(&'a ScopeState);
            impl Drop for Guard<'_> {
                fn drop(&mut self) {
                    self.0.pending.fetch_sub(1, Ordering::AcqRel);
                }
            }
            let guard = Guard(&state);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state.record_panic(payload);
            }
            drop(guard);
        });
        // SAFETY: the task borrows data with lifetime 'env. `scope`
        // does not return until `pending` reaches zero, i.e. until this
        // closure has run to completion (the decrement is in a Drop
        // guard, so it happens even on panic). Therefore the borrowed
        // data outlives every access the task makes.
        let task: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                task,
            )
        };
        self.pool.shared.push_external(task);
    }
}

/// Raw-pointer wrapper that asserts cross-thread transfer is safe; used
/// by `par_map` to let disjoint tasks write disjoint output slots.
struct SendPtr<T>(*mut T);

// Manual impls: the derive would bound `T: Copy`, but the pointer is
// copyable regardless of `T`.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Taking `self` (not the field) forces closures to capture the
    /// whole `SendPtr` — edition-2021 disjoint capture would otherwise
    /// capture the raw pointer field, which is not `Send`.
    fn get(self) -> *mut T {
        self.0
    }
}
// SAFETY: tasks write disjoint indices only, and the scope joins all
// tasks before the buffer is read. See `par_map`.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_pool_runs_inline_in_order() {
        let pool = ThreadPool::new(1);
        let log = Mutex::new(Vec::new());
        pool.scope(|scope| {
            for i in 0..8 {
                let log = &log;
                scope.spawn(move || log.lock().unwrap().push(i));
            }
        });
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn par_map_preserves_input_order() {
        for jobs in [1, 2, 4, 8] {
            let pool = ThreadPool::new(jobs);
            let items: Vec<u64> = (0..257).collect();
            let out = pool.par_map(&items, |&x| x * 3 + 1);
            let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_zero_items() {
        for jobs in [1, 4] {
            let pool = ThreadPool::new(jobs);
            let out: Vec<u64> = pool.par_map(&[] as &[u64], |&x| x);
            assert!(out.is_empty(), "jobs={jobs}");
        }
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        for jobs in [1, 3] {
            let pool = ThreadPool::new(jobs);
            let mut data: Vec<u64> = vec![0; 1001];
            pool.par_chunks_mut(&mut data, 64, |_chunk_idx, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1; // touch exactly once
                }
            });
            assert!(data.iter().all(|&v| v == 1), "jobs={jobs}");
        }
    }

    #[test]
    fn par_chunks_collects_in_chunk_order() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..100).collect();
        let sums = pool.par_chunks(&data, 7, |idx, chunk| (idx, chunk.iter().sum::<u64>()));
        let expect: Vec<(usize, u64)> = data
            .chunks(7)
            .enumerate()
            .map(|(i, c)| (i, c.iter().sum()))
            .collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn scope_borrows_stack_data() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|scope| {
            for _ in 0..64 {
                let counter = &counter;
                scope.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panic_in_worker_propagates_to_scope_caller() {
        for jobs in [1, 4] {
            let pool = ThreadPool::new(jobs);
            let finished = AtomicU64::new(0);
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|scope| {
                    for i in 0..16 {
                        let finished = &finished;
                        scope.spawn(move || {
                            if i == 7 {
                                panic!("boom from task {i}");
                            }
                            finished.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }));
            let err = result.expect_err("scope should re-throw the task panic");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(msg.contains("boom from task 7"), "jobs={jobs}: {msg}");
            // All non-panicking tasks still ran (no work left in flight).
            assert_eq!(finished.load(Ordering::Relaxed), 15, "jobs={jobs}");
            // Pool is still usable afterwards.
            let ok = pool.par_map(&[1u64, 2, 3], |&x| x + 1);
            assert_eq!(ok, vec![2, 3, 4]);
        }
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // More outer tasks than workers; every outer task opens an
        // inner scope. Helping must keep the pool live.
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..8 {
                let total = &total;
                let pool_ref = &pool;
                outer.spawn(move || {
                    pool_ref.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn par_map_results_identical_across_job_counts() {
        let items: Vec<u64> = (0..513).map(|i| i * 2654435761).collect();
        let reference = ThreadPool::new(1).par_map(&items, |&x| x.rotate_left(13) ^ 0xabcd);
        for jobs in [2, 4, 8] {
            let pool = ThreadPool::new(jobs);
            let got = pool.par_map(&items, |&x| x.rotate_left(13) ^ 0xabcd);
            assert_eq!(got, reference, "jobs={jobs}");
        }
    }
}
