//! An RCU-style publication cell: one writer swaps in immutable values,
//! any number of readers pin the current value without ever blocking.
//!
//! The engine's read path (query execution) must never wait on the write
//! path (index construction), so the classic reader/writer lock is the
//! wrong tool — it serializes readers against writers by design. Instead
//! the cell holds an `Arc<T>` behind an atomic pointer:
//!
//! * [`RcuCell::pin`] loads the pointer, bumps the value's reference
//!   count, and returns a plain `Arc<T>` — a *consistent snapshot* the
//!   caller can use for as long as it likes. Readers take no lock and
//!   never spin on writers; the only loop is a (rare) retry when a
//!   publication lands between the reader's registration and validation.
//! * [`RcuCell::publish`] swaps the pointer to a new value and then waits
//!   out a *grace period* — until every reader that might still be
//!   dereferencing the retired pointer has deregistered — before dropping
//!   the old `Arc`. Writers serialize among themselves on a mutex; the
//!   engine's mutators take `&mut self` anyway, so the mutex is contention
//!   -free in practice and exists to make the cell safe in isolation.
//!
//! The grace period uses a two-generation registration scheme: readers
//! register in `active[epoch % 2]`. A publication flips the epoch, so new
//! readers land in the other slot and the writer only has to drain the
//! slot belonging to the generation it retired. Because writers are
//! serialized, a second publication cannot begin (and thus cannot retire
//! the *new* value) until the first finishes draining — which it cannot
//! do while any reader of the old generation holds a registration. That
//! is exactly the window in which a reader may hold a raw pointer to
//! either value, so neither can be freed under it.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A lock-free-reads publication cell for `Arc`-shared immutable values.
pub struct RcuCell<T> {
    /// The currently published value, as a raw pointer carrying one
    /// strong count owned by the cell.
    current: AtomicPtr<T>,
    /// Publication generation; the low bit selects the `active` slot
    /// readers register in.
    epoch: AtomicU64,
    /// In-flight reader registrations per generation parity.
    active: [AtomicUsize; 2],
    /// Serializes publishers (grace periods must not overlap).
    writer: Mutex<()>,
}

// SAFETY: the cell hands out `Arc<T>` clones across threads; all interior
// state is atomics plus a mutex.
unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

impl<T> RcuCell<T> {
    /// Create a cell publishing `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        RcuCell {
            current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            epoch: AtomicU64::new(0),
            active: [AtomicUsize::new(0), AtomicUsize::new(0)],
            writer: Mutex::new(()),
        }
    }

    /// Pin the current value: returns an `Arc` the caller owns outright.
    /// Never blocks on publishers; retries only if a publication lands
    /// inside the (tiny) registration window.
    pub fn pin(&self) -> Arc<T> {
        loop {
            let e = self.epoch.load(Ordering::SeqCst);
            let slot = (e & 1) as usize;
            self.active[slot].fetch_add(1, Ordering::SeqCst);
            // Validate that no publication flipped the generation while
            // we registered; if one did, our registration is in a slot
            // the writer may already have drained — undo and retry.
            if self.epoch.load(Ordering::SeqCst) != e {
                self.active[slot].fetch_sub(1, Ordering::SeqCst);
                std::hint::spin_loop();
                continue;
            }
            // While this registration is held, the publisher retiring
            // generation `e` cannot finish its grace period, and the
            // next publisher cannot start (writers are serialized) — so
            // whichever pointer we load here (the value current at `e`,
            // or the one published by the in-flight flip) stays alive
            // until we deregister.
            let ptr = self.current.load(Ordering::SeqCst);
            let value = unsafe {
                Arc::increment_strong_count(ptr);
                Arc::from_raw(ptr)
            };
            self.active[slot].fetch_sub(1, Ordering::SeqCst);
            return value;
        }
    }

    /// Publish a new value, retiring the old one after a grace period.
    /// Returns the cell's new generation number.
    pub fn publish(&self, value: Arc<T>) -> u64 {
        let _guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let fresh = Arc::into_raw(value) as *mut T;
        let old = self.current.swap(fresh, Ordering::SeqCst);
        let e = self.epoch.fetch_add(1, Ordering::SeqCst);
        let retired = (e & 1) as usize;
        // Grace period: wait out readers registered against the retired
        // generation — they may still hold a raw pointer to `old`.
        while self.active[retired].load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        // SAFETY: the pointer came from `Arc::into_raw` in `new`/`publish`
        // and carries the strong count the cell owned; no reader can
        // still be between load and increment for it.
        unsafe { drop(Arc::from_raw(old)) };
        e + 1
    }

    /// The current publication generation (monotonically increasing).
    pub fn generation(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

impl<T> Drop for RcuCell<T> {
    fn drop(&mut self) {
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: exclusive access; the cell owns one strong count.
        unsafe { drop(Arc::from_raw(ptr)) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_returns_published_value() {
        let cell = RcuCell::new(Arc::new(1u64));
        assert_eq!(*cell.pin(), 1);
        cell.publish(Arc::new(2));
        assert_eq!(*cell.pin(), 2);
        assert_eq!(cell.generation(), 1);
    }

    #[test]
    fn pinned_value_survives_publication() {
        let cell = RcuCell::new(Arc::new(vec![1, 2, 3]));
        let pinned = cell.pin();
        cell.publish(Arc::new(vec![9]));
        // The old snapshot stays fully readable after being replaced.
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(*cell.pin(), vec![9]);
    }

    #[test]
    fn drop_reclaims_values_exactly_once() {
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let cell = RcuCell::new(Arc::new(Tracked(Arc::clone(&drops))));
            for _ in 0..10 {
                let pinned = cell.pin();
                cell.publish(Arc::new(Tracked(Arc::clone(&drops))));
                drop(pinned);
            }
            assert_eq!(drops.load(Ordering::SeqCst), 10, "10 retired values");
        }
        assert_eq!(drops.load(Ordering::SeqCst), 11, "cell drop frees the last");
    }

    #[test]
    fn concurrent_readers_always_see_a_whole_value() {
        // Values are (n, n): a torn or freed read would break the pairing.
        let cell = Arc::new(RcuCell::new(Arc::new((0u64, 0u64))));
        let done = Arc::new(AtomicUsize::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    for _ in 0..300 {
                        let v = cell.pin();
                        assert_eq!(v.0, v.1, "reader observed a torn value");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        // Publish continuously until every reader finished its pins, so
        // the readers genuinely race publications on any scheduler.
        let mut n = 0u64;
        while done.load(Ordering::SeqCst) < 4 {
            n += 1;
            cell.publish(Arc::new((n, n)));
            std::thread::yield_now();
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.generation(), n);
        let v = cell.pin();
        assert_eq!((v.0, v.1), (n, n));
    }
}
