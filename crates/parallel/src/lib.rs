//! `sommelier-parallel` — a dependency-free, std-only work-stealing
//! thread pool with scoped parallelism primitives.
//!
//! The hot paths of the reproduction (sampled pairwise equivalence
//! analysis during index construction, LSH bucket probing, candidate
//! scoring, batched tensor kernels) are embarrassingly parallel at the
//! task level, but the build environment carries no external crates, so
//! this crate implements the small subset of rayon-style machinery the
//! system needs:
//!
//! * [`ThreadPool`] — a fixed pool of workers, each with its own local
//!   deque; idle workers steal from peers and from a shared injector
//!   queue. A pool created with `jobs == 1` never spawns threads: every
//!   spawned closure runs inline on the caller, which makes `--jobs 1`
//!   reproduce sequential behavior exactly (bit-for-bit, same execution
//!   order).
//! * [`ThreadPool::scope`] — structured concurrency over borrowed data,
//!   mirroring `std::thread::scope`: tasks may borrow from the enclosing
//!   stack frame, every task completes before `scope` returns, and the
//!   first worker panic is propagated to the caller. Nested scopes are
//!   supported (a blocked scope *helps* by executing queued tasks, so
//!   pools never deadlock on their own work).
//! * [`ThreadPool::par_map`] / [`ThreadPool::par_chunks`] /
//!   [`ThreadPool::par_chunks_mut`] — deterministic-order data
//!   parallelism: results come back in input order regardless of which
//!   worker computed them.
//! * [`ShardedMap`] — a lock-striped hash map for commutative parallel
//!   merges (the transitive-derivation reduction of the semantic index).
//! * [`RcuCell`] — an RCU-style publication cell: readers pin an
//!   immutable `Arc`-shared value without locking, a writer swaps in the
//!   next value and waits out a grace period before reclaiming the old
//!   one (the engine's snapshot publication primitive).
//!
//! A process-wide [`global`] pool (default: sequential; sized with
//! [`set_global_jobs`] or the `SOMMELIER_JOBS` environment variable)
//! serves the tensor kernels, which have no configuration surface of
//! their own.

mod pool;
mod rcu;
mod sharded;

pub use pool::{Scope, ThreadPool};
pub use rcu::RcuCell;
pub use sharded::ShardedMap;

use std::sync::{Arc, OnceLock, RwLock};

static GLOBAL: OnceLock<RwLock<Arc<ThreadPool>>> = OnceLock::new();

fn global_cell() -> &'static RwLock<Arc<ThreadPool>> {
    GLOBAL.get_or_init(|| {
        let jobs = std::env::var("SOMMELIER_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&j| j >= 1)
            .unwrap_or(1);
        RwLock::new(Arc::new(ThreadPool::new(jobs)))
    })
}

/// The process-wide pool used by code without its own pool handle
/// (tensor kernels). Defaults to a sequential pool (`jobs == 1`) unless
/// `SOMMELIER_JOBS` is set or [`set_global_jobs`] was called, so library
/// users never get surprise threads.
pub fn global() -> Arc<ThreadPool> {
    global_cell()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Resize the process-wide pool. `jobs == 0` selects the machine's
/// available parallelism. Returns the effective job count.
pub fn set_global_jobs(jobs: usize) -> usize {
    let jobs = effective_jobs(jobs);
    let mut slot = global_cell().write().unwrap_or_else(|e| e.into_inner());
    if slot.jobs() != jobs {
        *slot = Arc::new(ThreadPool::new(jobs));
    }
    jobs
}

/// Resolve a `--jobs` style knob: `0` means "auto" (available
/// parallelism), anything else is taken literally.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_jobs_zero_is_auto() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn global_pool_is_sequential_by_default_and_resizable() {
        // Note: other tests in this binary share the global pool; only
        // assert what set_global_jobs itself guarantees.
        assert_eq!(set_global_jobs(1), 1);
        assert_eq!(global().jobs(), 1);
        assert_eq!(set_global_jobs(2), 2);
        assert_eq!(global().jobs(), 2);
        set_global_jobs(1);
    }
}
