//! Lock-striped hash map for commutative parallel merges.
//!
//! The semantic index's transitive-derivation reduction needs a
//! "min-merge" map that many workers update concurrently: the final
//! contents must be independent of update interleaving. [`ShardedMap`]
//! provides exactly that — a fixed array of mutex-guarded `HashMap`
//! shards selected by a *deterministic* hash of the key (so shard
//! assignment, and therefore lock contention, is reproducible), plus an
//! [`ShardedMap::into_sorted`] drain that returns entries in key order
//! so downstream consumers never observe map iteration order.

use std::borrow::Borrow;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// A concurrently-updatable map sharded across `S` mutexes.
///
/// All combining operations must be commutative+idempotent for the
/// result to be schedule-independent; [`ShardedMap::upsert`] enforces
/// the pattern by taking an explicit "is the new value better?"
/// predicate.
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// Create a map with `shards` lock stripes (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedMap {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard_of<Q>(&self, key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Whether an upsert of `value` under `key` would change the map:
    /// true when the key is vacant or when `better(value, current)`
    /// holds. Takes a *borrowed* key so hot loops can check before
    /// paying for a key allocation (`String` clones, etc.).
    ///
    /// The answer is advisory under concurrency — another worker may win
    /// the slot between this check and a subsequent [`ShardedMap::upsert`]
    /// — but `upsert` re-checks under the shard lock, so using this as a
    /// fast-path filter never changes the converged contents.
    pub fn would_insert<Q>(&self, key: &Q, value: &V, better: impl Fn(&V, &V) -> bool) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let shard = self.shard_of(key);
        let map = self.shards[shard].lock().unwrap_or_else(|e| e.into_inner());
        match map.get(key) {
            Some(current) => better(value, current),
            None => true,
        }
    }

    /// Insert `value` under `key`, or — if an entry already exists —
    /// replace it only when `better(&new, &old)` returns true.
    ///
    /// For schedule-independence, `better` must define a strict total
    /// preference (e.g. lexicographic `(bound, tiebreak)` comparison):
    /// any interleaving of upserts then converges to the same winner.
    pub fn upsert(&self, key: K, value: V, better: impl Fn(&V, &V) -> bool) {
        let shard = self.shard_of(&key);
        let mut map = self.shards[shard].lock().unwrap_or_else(|e| e.into_inner());
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                if better(&value, slot.get()) {
                    slot.insert(value);
                }
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(value);
            }
        }
    }

    /// Unconditional insert (last writer wins within a shard lock).
    pub fn insert(&self, key: K, value: V) {
        let shard = self.shard_of(&key);
        self.shards[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, value);
    }

    /// Clone out the value stored under `key`, if any.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let shard = self.shard_of(key);
        self.shards[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// True when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the map into a vector sorted by key — the only way to
    /// observe the contents, so callers can never depend on hash-map
    /// iteration order.
    pub fn into_sorted(self) -> Vec<(K, V)>
    where
        K: Ord,
    {
        let mut out: Vec<(K, V)> = Vec::new();
        for shard in self.shards {
            let map = shard.into_inner().unwrap_or_else(|e| e.into_inner());
            out.extend(map);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;

    #[test]
    fn upsert_keeps_better_value() {
        let map: ShardedMap<String, (u64, String)> = ShardedMap::new(4);
        let better =
            |new: &(u64, String), old: &(u64, String)| (new.0, &new.1) < (old.0, &old.1);
        map.upsert("k".into(), (5, "b".into()), better);
        map.upsert("k".into(), (3, "z".into()), better);
        map.upsert("k".into(), (3, "a".into()), better);
        map.upsert("k".into(), (9, "q".into()), better);
        assert_eq!(map.get_cloned(&"k".to_string()), Some((3, "a".to_string())));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn would_insert_checks_without_allocating_a_key() {
        let map: ShardedMap<String, (u64, u64)> = ShardedMap::new(4);
        let better = |new: &(u64, u64), old: &(u64, u64)| new < old;
        // Vacant key: anything would insert. Note the borrowed &str key.
        assert!(map.would_insert("k", &(9, 9), better));
        map.upsert("k".into(), (5, 0), better);
        // Worse value: no insert, no allocation needed to find out.
        assert!(!map.would_insert("k", &(7, 0), better));
        assert!(!map.would_insert("k", &(5, 0), better), "ties do not replace");
        // Better value: would insert.
        assert!(map.would_insert("k", &(3, 9), better));
        // And the map itself is unchanged by the checks.
        assert_eq!(map.get_cloned(&"k".to_string()), Some((5, 0)));
    }

    #[test]
    fn into_sorted_orders_by_key() {
        let map: ShardedMap<u64, u64> = ShardedMap::new(8);
        for k in [9u64, 1, 7, 3, 5] {
            map.insert(k, k * 10);
        }
        let drained = map.into_sorted();
        assert_eq!(drained, vec![(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]);
    }

    #[test]
    fn concurrent_min_merge_is_schedule_independent() {
        // Many workers race to upsert the same keys; the winner must be
        // the lexicographic minimum over (bound, tiebreak) regardless of
        // interleaving. For key k, updates are (bound = (j * 13 + k) % 29,
        // tiebreak = j) for j in 0..64; the winner is computable directly.
        let expect: Vec<(u64, (u64, u64))> = (0..32u64)
            .map(|k| {
                let win = (0..64u64)
                    .map(|j| ((j * 13 + k) % 29, j))
                    .min()
                    .unwrap();
                (k, win)
            })
            .collect();
        for jobs in [1, 4] {
            let pool = ThreadPool::new(jobs);
            let map: ShardedMap<u64, (u64, u64)> = ShardedMap::new(8);
            let updates: Vec<(u64, u64)> = (0..32u64)
                .flat_map(|k| (0..64u64).map(move |j| (k, j)))
                .collect();
            pool.scope(|scope| {
                for chunk in updates.chunks(37) {
                    let map = &map;
                    scope.spawn(move || {
                        for &(k, j) in chunk {
                            map.upsert(k, ((j * 13 + k) % 29, j), |new, old| new < old);
                        }
                    });
                }
            });
            assert_eq!(map.into_sorted(), expect, "jobs={jobs}");
        }
    }
}
