//! `sommelier` — command-line interface to the Sommelier query engine.
//!
//! A repository is a directory of `*.model.json` files (the bare-bone
//! filesystem of paper Section 2.1); the indices live next to them in
//! `sommelier.index.json`. Typical session:
//!
//! ```sh
//! sommelier init hub/
//! sommelier seed hub/ --series 4 --seed 7      # populate from the zoo
//! sommelier index hub/                         # build + persist indices
//! sommelier list hub/
//! sommelier query hub/ "SELECT model CORR bitish-r152x4 ON memory <= 40% WITHIN 0.3"
//! sommelier show hub/ efficientnetish-b5
//! sommelier diff hub/ bitish-r152x4 efficientnetish-b5
//! ```

mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
sommelier — DNN model repository query engine (SIGMOD'22 reproduction)

USAGE:
    sommelier <COMMAND> [ARGS]

COMMANDS:
    init   <dir>                        create an empty repository
    seed   <dir> [--series N] [--seed S]
                                        populate with synthetic zoo series
    add    <dir> <model.json> [--key K] publish a model file
    list   <dir>                        list stored model keys
    show   <dir> <key>                  metadata + resource profile
    index  <dir> [--sample N] [--no-segments] [--jobs N] [--cache-cap N]
                                        build and persist the indices
    apply  <dir> [--add FILE]... [--remove KEY]... [--jobs N] [--cache-cap N]
                                        batched mutation of an existing
                                        index: all adds and removes
                                        coalesce into one analysis
                                        fan-out and one snapshot
                                        publication (one epoch bump);
                                        --remove K --add FILE replaces
                                        key K in place
    compact <dir>                       rewrite the index snapshot as
                                        sommelier.index.somb — the binary
                                        format (CRC-checked header, string
                                        table, aligned f32 profile slab):
                                        much faster cold opens; the JSON
                                        original is removed. JSON
                                        repositories keep working unchanged
    query  <dir> <query-text> [--jobs N] [--threads N] [--repeat K]
           [--format text|json]
                                        run a SELECT … CORR … query;
                                        --repeat batches K runs over
                                        --threads lanes, reporting
                                        per-query latency and epoch
    diff   <dir> <reference> <candidate>
                                        full equivalence explanation
    dot    <dir> <key>                  Graphviz export of the model graph
    lint   <dir> [--format text|json] [--deny SPEC]... [--query Q]
                                        execution-free curation checks;
                                        SPEC is a severity (error|warn|
                                        info), a code (SOM081), or a
                                        range (SOM09x); repeatable
    audit  <dir> [--jobs N] [--format text|json] [--deny SPEC]...
           [--baseline FILE] [--query Q]
                                        deep audit: dataflow analysis
                                        per model (SOM08x) plus the
                                        cross-artifact consistency join
                                        (SOM09x), parallel over --jobs
                                        and memoized by fingerprint;
                                        --baseline subtracts accepted
                                        findings from a prior JSON run
    fsck   <dir> [--repair] [--prune]   check store integrity: torn or
                                        mis-named files, orphaned temps,
                                        quarantined artifacts, dangling
                                        or orphaned tensor chunks;
                                        --repair cleans temps, quarantines
                                        corrupt files, deletes orphaned
                                        chunks, and rebuilds the index;
                                        --prune deletes quarantined files
                                        (works on its own: without
                                        --repair it only prunes an
                                        earlier run's quarantines)
    dedup  <dir>                        migrate a flat store to chunked
                                        delta storage in place: models
                                        become manifests over content-
                                        addressed chunks, fine-tunes
                                        (metadata key 'base') become
                                        sparse deltas against their base
    serve  <dir> [--addr A] [--workers N] [--queue-depth D]
           [--tenants FILE] [--jobs N] [--cache-cap N]
                                        long-running TCP query daemon
                                        (line-delimited JSON protocol):
                                        one engine, per-connection
                                        lock-free readers, bounded
                                        admission with typed load-shed,
                                        optional per-tenant token-bucket
                                        quotas; prints `listening on
                                        ADDR` once ready
    client <addr> <op> [args] [--auth KEY]
                                        one-shot protocol client; op is
                                        ping | query <text> |
                                        batch <text>... | fsck |
                                        metrics | reload | shutdown;
                                        prints the JSON reply
    help                                print this message

Queries use the paper's Figure 7 syntax, e.g.:
    SELECT models 3 CORR resnetish-50 ON memory <= 80% WITHIN 0.5 ORDER BY similarity
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command {
        "init" => commands::init(rest),
        "seed" => commands::seed(rest),
        "add" => commands::add(rest),
        "list" => commands::list(rest),
        "show" => commands::show(rest),
        "index" => commands::index(rest),
        "apply" => commands::apply(rest),
        "compact" => commands::compact(rest),
        "query" => commands::query(rest),
        "diff" => commands::diff(rest),
        "dot" => commands::dot(rest),
        "lint" => commands::lint(rest),
        "audit" => commands::audit(rest),
        "fsck" => commands::fsck(rest),
        "dedup" => commands::dedup(rest),
        "serve" => commands::serve(rest),
        "client" => commands::client(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
