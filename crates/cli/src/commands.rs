//! Implementation of the CLI subcommands.

use sommelier_equiv::explain::explain;
use sommelier_equiv::whole::EquivConfig;
use sommelier_fault::storage::{is_quarantine_name, is_temp_name};
use sommelier_fault::{StdStorage, Storage};
use sommelier_graph::{serde_model, TaskKind};
use sommelier_lint::DenySpec;
use sommelier_query::{SnapshotRecovery, Sommelier, SommelierConfig};
use sommelier_repo::{
    chunk_hash, decode_key, dedup_store, is_chunk_name, Manifest, ModelRepository,
    OnDiskRepository, CHUNK_DIR, CHUNK_SUFFIX, MANIFEST_SUFFIX,
};
use std::collections::BTreeSet;
use sommelier_runtime::ResourceProfile;
use sommelier_tensor::{Prng, Tensor};
use sommelier_zoo::series::build_series;
use sommelier_zoo::families::Family;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File name (inside the repository directory) of the persisted indices.
const INDEX_FILE: &str = "sommelier.index.json";

/// Binary-format sibling of [`INDEX_FILE`] (`sommelier compact` output).
const INDEX_FILE_BIN: &str = "sommelier.index.somb";

type CmdResult = Result<(), String>;

fn fail(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// Positional arguments and `(name, value)` flag pairs.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Parse `--flag value` pairs out of an argument list, returning the
/// remaining positional arguments.
fn split_flags(args: &[String]) -> Result<ParsedArgs<'_>, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            if name.is_empty() {
                return Err("empty flag name".into());
            }
            // Boolean flags take no value; known ones are listed here.
            if matches!(name, "no-segments" | "repair" | "prune") {
                flags.push((name, "true"));
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name, value.as_str()));
            i += 2;
        } else {
            positional.push(a);
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn repo_dir(positional: &[&str]) -> Result<PathBuf, String> {
    positional
        .first()
        .map(PathBuf::from)
        .ok_or_else(|| "missing repository directory argument".into())
}

fn open_repo(dir: &Path) -> Result<Arc<OnDiskRepository>, String> {
    if !dir.exists() {
        return Err(format!(
            "repository '{}' does not exist (run `sommelier init` first)",
            dir.display()
        ));
    }
    Ok(Arc::new(OnDiskRepository::open(dir).map_err(fail)?))
}

/// The index snapshot path a repository serves from: the binary
/// snapshot when one exists (a compacted repository), the JSON file
/// otherwise. New repositories index to JSON until compacted.
fn index_path(dir: &Path) -> PathBuf {
    let bin = dir.join(INDEX_FILE_BIN);
    if bin.exists() {
        bin
    } else {
        dir.join(INDEX_FILE)
    }
}

fn engine_config(flags: &[(&str, &str)]) -> Result<SommelierConfig, String> {
    let mut cfg = SommelierConfig::default();
    for (name, value) in flags {
        match *name {
            "sample" => {
                cfg.index.sample_size = value
                    .parse()
                    .map_err(|_| format!("--sample needs an integer, got '{value}'"))?;
            }
            "no-segments" => cfg.index.segments = false,
            "jobs" => {
                cfg.jobs = value
                    .parse()
                    .map_err(|_| format!("--jobs needs an integer, got '{value}'"))?;
            }
            "cache-cap" => {
                cfg.cache_cap = value
                    .parse()
                    .map_err(|_| format!("--cache-cap needs an integer, got '{value}'"))?;
            }
            _ => return Err(format!("unknown flag --{name}")),
        }
    }
    Ok(cfg)
}

/// `sommelier init <dir>`
pub fn init(args: &[String]) -> CmdResult {
    let (positional, _) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    std::fs::create_dir_all(&dir).map_err(fail)?;
    OnDiskRepository::open(&dir).map_err(fail)?;
    println!("initialized empty repository at {}", dir.display());
    Ok(())
}

/// `sommelier seed <dir> [--series N] [--seed S]`
pub fn seed(args: &[String]) -> CmdResult {
    let (positional, flags) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let mut n_series = 3usize;
    let mut seed = 2024u64;
    for (name, value) in &flags {
        match *name {
            "series" => {
                n_series = value
                    .parse()
                    .map_err(|_| format!("--series needs an integer, got '{value}'"))?
            }
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|_| format!("--seed needs an integer, got '{value}'"))?
            }
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    let repo = open_repo(&dir)?;
    let families = [
        Family::Bitish,
        Family::Efficientnetish,
        Family::Resnetish,
        Family::Mobilenetish,
        Family::Vggish,
        Family::Inceptionish,
    ];
    let mut rng = Prng::seed_from_u64(seed);
    let mut published = 0usize;
    for i in 0..n_series {
        let family = families[i % families.len()];
        let series = build_series(
            &format!("{}-v{}", family.slug(), i / families.len() + 1),
            family,
            TaskKind::ImageRecognition,
            "imagenet",
            5,
            seed,
            0.12,
            &mut rng,
        );
        for m in &series.models {
            repo.publish(&m.name, m, true).map_err(fail)?;
            published += 1;
        }
    }
    println!(
        "seeded {} with {published} models across {n_series} series",
        dir.display()
    );
    println!("(run `sommelier index {}` to build the indices)", dir.display());
    Ok(())
}

/// `sommelier add <dir> <model.json> [--key K]`
pub fn add(args: &[String]) -> CmdResult {
    let (positional, flags) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let file = positional
        .get(1)
        .ok_or("missing model file argument")?;
    let model = serde_model::load(Path::new(file)).map_err(fail)?;
    let key = flags
        .iter()
        .find(|(n, _)| *n == "key")
        .map(|(_, v)| v.to_string())
        .unwrap_or_else(|| model.name.clone());
    let repo = open_repo(&dir)?;
    repo.publish(&key, &model, false).map_err(fail)?;
    println!("published '{key}' ({} parameters)", model.param_count());
    Ok(())
}

/// `sommelier list <dir>`
pub fn list(args: &[String]) -> CmdResult {
    let (positional, _) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let repo = open_repo(&dir)?;
    let keys = repo.keys();
    if keys.is_empty() {
        println!("(repository is empty)");
        return Ok(());
    }
    for key in keys {
        println!("{key}");
    }
    Ok(())
}

/// `sommelier show <dir> <key>`
pub fn show(args: &[String]) -> CmdResult {
    let (positional, _) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let key = positional.get(1).ok_or("missing model key argument")?;
    let repo = open_repo(&dir)?;
    let model = repo.load(key).map_err(fail)?;
    let profile = ResourceProfile::of(&model);
    println!("key:        {key}");
    println!("name:       {}", model.name);
    println!("version:    {}", model.version);
    println!("task:       {}", model.task);
    println!("input:      {}", model.input_shape);
    println!("output:     {} dims", model.output_width());
    println!("layers:     {}", model.num_layers());
    println!("parameters: {}", model.param_count());
    println!("memory:     {:.3} MB", profile.memory_mb);
    println!("compute:    {:.6} GFLOPs", profile.gflops);
    println!("latency:    {:.3} ms (cpu, batch 1)", profile.latency_ms);
    if !model.metadata.is_empty() {
        println!("metadata:");
        for (k, v) in &model.metadata {
            println!("  {k} = {v}");
        }
    }
    Ok(())
}

/// `sommelier index <dir> [--sample N] [--no-segments] [--jobs N]
/// [--cache-cap N]`
pub fn index(args: &[String]) -> CmdResult {
    let (positional, flags) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let cfg = engine_config(&flags)?;
    let repo = open_repo(&dir)?;
    let mut engine = Sommelier::connect(repo as Arc<dyn ModelRepository>, cfg);
    let start = std::time::Instant::now();
    let added = engine.index_existing().map_err(fail)?;
    let secs = start.elapsed().as_secs_f64();
    engine.save_indices(&index_path(&dir)).map_err(fail)?;
    println!(
        "indexed {added} models in {secs:.1}s with {} job(s) → {}",
        engine.jobs(),
        index_path(&dir).display()
    );
    let stats = engine.cache_stats();
    println!(
        "pairwise cache: {} hit(s), {} miss(es), {} entrie(s) (cap {})",
        stats.hits, stats.misses, stats.entries, stats.capacity
    );
    Ok(())
}

/// `sommelier apply <dir> [--add FILE]... [--remove KEY]... [--jobs N] [--cache-cap N]`
///
/// Batched mutation against an existing index: every `--add` and
/// `--remove` coalesces into one [`MutationBatch`] applied as a single
/// logical mutation — one analysis fan-out, one snapshot publication,
/// one epoch bump — instead of a full `sommelier index` rebuild. A key
/// named by both `--remove` and an `--add`ed model is replaced in
/// place.
pub fn apply(args: &[String]) -> CmdResult {
    use sommelier_query::MutationBatch;
    let (positional, flags) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let mut batch = MutationBatch::new();
    let mut engine_flags = Vec::new();
    for (name, value) in &flags {
        match *name {
            "add" => {
                let model = serde_model::load(Path::new(value)).map_err(fail)?;
                batch = batch.register(model);
            }
            "remove" => batch = batch.unregister(*value),
            _ => engine_flags.push((*name, *value)),
        }
    }
    if batch.is_empty() {
        println!("nothing to apply (pass --add FILE and/or --remove KEY)");
        return Ok(());
    }
    let cfg = engine_config(&engine_flags)?;
    let mut engine = load_engine(&dir, cfg)?;
    let path = index_path(&dir);
    let start = std::time::Instant::now();
    let applied = engine.apply(batch).map_err(fail)?;
    let secs = start.elapsed().as_secs_f64();
    engine.save_indices(&path).map_err(fail)?;
    println!(
        "applied {applied} mutation(s) in {secs:.2}s (epoch {}) → {}",
        engine.epoch(),
        path.display()
    );
    Ok(())
}

/// `sommelier compact <dir>`
///
/// Rewrite the index snapshot into the `.somb` binary format: smaller,
/// CRC-validated in O(1) on open, and served by linear scans over an
/// aligned profile slab. Reads whichever snapshot the repository has
/// (JSON or an older binary — the format is sniffed, not assumed),
/// writes `sommelier.index.somb` through the atomic-rename protocol,
/// then removes the JSON original. Queries keep working against JSON
/// repositories; compacting is an optimization, not a migration
/// requirement.
pub fn compact(args: &[String]) -> CmdResult {
    let (positional, flags) = split_flags(args)?;
    if let Some((name, _)) = flags.first() {
        return Err(format!("unknown flag --{name}"));
    }
    let dir = repo_dir(&positional)?;
    if !dir.exists() {
        return Err(format!("repository '{}' does not exist", dir.display()));
    }
    let source = index_path(&dir);
    if !source.exists() {
        return Err(format!(
            "no index at {} (run `sommelier index {}` first)",
            source.display(),
            dir.display()
        ));
    }
    let storage = StdStorage;
    let (snapshot, format) =
        sommelier_index::persist::read_snapshot_sniffed_with(&storage, &source).map_err(fail)?;
    let from_bytes = std::fs::metadata(&source).map_err(fail)?.len();
    let target = dir.join(INDEX_FILE_BIN);
    sommelier_index::persist::save_snapshot_as(
        &storage,
        &snapshot,
        sommelier_index::SnapshotFormat::Binary,
        &target,
    )
    .map_err(fail)?;
    let to_bytes = std::fs::metadata(&target).map_err(fail)?.len();
    // The JSON original is now redundant; leaving it would shadow
    // nothing (readers prefer .somb) but waste space and confuse fsck.
    let json = dir.join(INDEX_FILE);
    if format == sommelier_index::SnapshotFormat::Json && json.exists() {
        storage.remove(&json).map_err(fail)?;
    }
    println!(
        "compacted {} snapshot ({from_bytes} bytes) → {} ({to_bytes} bytes)",
        format,
        target.display()
    );
    Ok(())
}

fn load_engine(dir: &Path, cfg: SommelierConfig) -> Result<Sommelier, String> {
    let repo = open_repo(dir)?;
    let path = index_path(dir);
    if !path.exists() {
        return Err(format!(
            "no index at {} (run `sommelier index {}` first)",
            path.display(),
            dir.display()
        ));
    }
    // A *corrupt* snapshot recovers transparently: it is quarantined and
    // the indices are rebuilt from the repository, so a torn write never
    // turns into a failed query. (A *missing* snapshot stays an explicit
    // error above — silently indexing would hide a typoed directory.)
    let (engine, outcome) =
        Sommelier::connect_or_recover(repo as Arc<dyn ModelRepository>, cfg, &path)
            .map_err(fail)?;
    match outcome {
        SnapshotRecovery::Loaded => {}
        SnapshotRecovery::RebuiltQuarantined(quarantined) => eprintln!(
            "warning: index snapshot was unreadable; quarantined it as {} \
             and rebuilt the indices from the repository",
            quarantined.display()
        ),
        SnapshotRecovery::RebuiltMissing => eprintln!(
            "warning: index snapshot was unreadable and could not be \
             quarantined; rebuilt the indices from the repository"
        ),
    }
    Ok(engine)
}

fn print_result_table(results: &[sommelier_query::QueryResult]) {
    println!(
        "{:<28} {:>7} {:>10} {:>12} {:>10}",
        "key", "score", "mem (MB)", "GFLOPs", "lat (ms)"
    );
    for r in results {
        println!(
            "{:<28} {:>7.3} {:>10.3} {:>12.6} {:>10.3}",
            r.key, r.score, r.profile.memory_mb, r.profile.gflops, r.profile.latency_ms
        );
    }
}

/// `sommelier query <dir> <query-text> [--jobs N] [--cache-cap N]
/// [--threads N] [--repeat K] [--format text|json]`
///
/// `--repeat K` runs the query K times through the batched lock-free
/// path (`query_batch`), spread over `--threads N` lanes; every batched
/// answer reports its per-query latency and the index epoch it was
/// served from. Repeats after the first hit the engine's plan/result
/// cache, so the per-query latencies directly expose the cache win.
pub fn query(args: &[String]) -> CmdResult {
    let (positional, flags) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let mut threads = 0usize;
    let mut repeat = 1usize;
    let mut format = "text";
    let mut engine_flags = Vec::new();
    for (name, value) in &flags {
        match *name {
            "threads" => {
                threads = value
                    .parse()
                    .map_err(|_| format!("--threads needs an integer, got '{value}'"))?;
            }
            "repeat" => {
                repeat = value
                    .parse()
                    .ok()
                    .filter(|&k: &usize| k >= 1)
                    .ok_or_else(|| format!("--repeat needs a positive integer, got '{value}'"))?;
            }
            "format" => match *value {
                "text" | "json" => format = value,
                other => return Err(format!("unknown format '{other}' (text|json)")),
            },
            _ => engine_flags.push((*name, *value)),
        }
    }
    let cfg = engine_config(&engine_flags)?;
    let text = positional
        .get(1..)
        .filter(|rest| !rest.is_empty())
        .map(|rest| rest.join(" "))
        .ok_or("missing query text")?;
    let engine = load_engine(&dir, cfg)?;
    // The batched lock-free path: a reader pins one published snapshot
    // and fans the repeats across its thread pool.
    let reader = if threads > 0 {
        engine.reader().with_pool(threads)
    } else {
        engine.reader().clone()
    };
    let texts: Vec<String> = std::iter::repeat_with(|| text.clone()).take(repeat).collect();
    let items = reader.query_batch(&texts);
    if format == "json" {
        use serde::Value;
        let snapshot_format = engine
            .snapshot_format()
            .map(|f| f.as_str())
            .unwrap_or("none");
        let queries = Value::Seq(
            items
                .iter()
                .map(|item| {
                    let mut fields = vec![
                        ("epoch".to_string(), Value::UInt(item.epoch)),
                        ("latency_ms".to_string(), Value::Float(item.latency_ms)),
                    ];
                    match &item.results {
                        Ok(results) => fields.push((
                            "results".to_string(),
                            Value::Seq(
                                results
                                    .iter()
                                    .map(|r| {
                                        Value::Map(vec![
                                            ("key".to_string(), Value::Str(r.key.clone())),
                                            ("score".to_string(), Value::Float(r.score)),
                                            (
                                                "diff_bound".to_string(),
                                                Value::Float(r.diff_bound),
                                            ),
                                            (
                                                "memory_mb".to_string(),
                                                Value::Float(r.profile.memory_mb),
                                            ),
                                            (
                                                "gflops".to_string(),
                                                Value::Float(r.profile.gflops),
                                            ),
                                            (
                                                "latency_ms".to_string(),
                                                Value::Float(r.profile.latency_ms),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        )),
                        Err(e) => fields
                            .push(("error".to_string(), Value::Str(e.to_string()))),
                    }
                    Value::Map(fields)
                })
                .collect(),
        );
        // Aggregate quantiles over the batch: exact nearest-rank
        // p50/p90/p99 of the per-query latencies.
        let mut sorted: Vec<f64> = items.iter().map(|i| i.latency_ms).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = |q: f64| -> f64 {
            let i = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[i - 1]
        };
        let latency = Value::Map(vec![
            ("count".to_string(), Value::UInt(sorted.len() as u64)),
            ("p50_ms".to_string(), Value::Float(rank(0.50))),
            ("p90_ms".to_string(), Value::Float(rank(0.90))),
            ("p99_ms".to_string(), Value::Float(rank(0.99))),
        ]);
        // The served snapshot's provenance rides along with the
        // answers: which on-disk encoding the engine loaded.
        let rendered = Value::Map(vec![
            (
                "snapshot".to_string(),
                Value::Map(vec![(
                    "format".to_string(),
                    Value::Str(snapshot_format.to_string()),
                )]),
            ),
            ("latency".to_string(), latency),
            ("queries".to_string(), queries),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&rendered).map_err(fail)?
        );
        // Surface a failure exit even in JSON mode.
        if let Some(item) = items.iter().find(|i| i.results.is_err()) {
            return Err(item.results.as_ref().unwrap_err().to_string());
        }
        return Ok(());
    }
    let first = items.first().expect("repeat >= 1");
    let results = first.results.as_ref().map_err(|e| e.to_string())?;
    if results.is_empty() {
        println!("(no model satisfies all predicates)");
    } else {
        print_result_table(results);
    }
    if repeat > 1 {
        println!();
        for (i, item) in items.iter().enumerate() {
            let n = item.results.as_ref().map(Vec::len).unwrap_or(0);
            println!(
                "query #{:<3} {} result(s) in {:>8.3} ms  (epoch {})",
                i + 1,
                n,
                item.latency_ms,
                item.epoch
            );
        }
        let stats = reader.plan_cache_stats();
        println!(
            "{} lane(s); plan cache: {} hit(s), {} miss(es)",
            reader.jobs(),
            stats.hits,
            stats.misses
        );
    } else {
        println!("served from epoch {} in {:.3} ms", first.epoch, first.latency_ms);
    }
    Ok(())
}

/// `sommelier diff <dir> <reference> <candidate>`
///
/// Prints the full equivalence explanation (the paper's "explanation
/// database" view): I/O check, empirical/bounded differences, matched
/// segments with their propagation bounds, and the verdict.
pub fn diff(args: &[String]) -> CmdResult {
    let (positional, _) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let reference_key = positional.get(1).ok_or("missing reference key")?;
    let candidate_key = positional.get(2).ok_or("missing candidate key")?;
    let repo = open_repo(&dir)?;
    let reference = repo.load(reference_key).map_err(fail)?;
    let candidate = repo.load(candidate_key).map_err(fail)?;
    let mut rng = Prng::seed_from_u64(0xd1ff);
    let probe = Tensor::gaussian(512, reference.input_width(), 1.0, &mut rng);
    let cfg = EquivConfig {
        epsilon: 0.15,
        ..EquivConfig::default()
    };
    let explanation = explain(&reference, &candidate, &probe, &cfg, 0.15, &mut rng);
    print!("{explanation}");
    Ok(())
}

/// `sommelier dot <dir> <key>` — Graphviz export of a model's graph.
pub fn dot(args: &[String]) -> CmdResult {
    let (positional, _) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let key = positional.get(1).ok_or("missing model key argument")?;
    let repo = open_repo(&dir)?;
    let model = repo.load(key).map_err(fail)?;
    print!("{}", sommelier_graph::dot::to_dot(&model, &[]));
    Ok(())
}

/// `sommelier lint <dir> [--format text|json] [--deny SPEC]...
/// [--query "<text>"]`
///
/// Runs every built-in shallow static analysis over the repository:
/// stored models, the persisted indices, and (with `--query`) a query
/// plan. Nothing is executed. The command fails — for CI gating — when
/// any finding matches a `--deny` spec: a severity class
/// (`error`/`warn`/`info`), an exact code (`SOM081`), or a range
/// (`SOM09x`). Default: `error`. Unknown codes are an error.
pub fn lint(args: &[String]) -> CmdResult {
    let (positional, flags) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let mut format = "text";
    let mut deny_specs: Vec<&str> = Vec::new();
    let mut ctx = sommelier_lint::LintContext::from_repo_dir(&dir)?;
    for (name, value) in &flags {
        match *name {
            "format" => match *value {
                "text" | "json" => format = value,
                other => return Err(format!("unknown format '{other}' (text|json)")),
            },
            "deny" => deny_specs.push(value),
            "query" => {
                let query = sommelier_query::parse(value).map_err(fail)?;
                ctx.queries.push(query);
            }
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    let deny = DenySpec::parse(&deny_specs)?;
    let runner = sommelier_lint::LintRunner::with_default_passes();
    let report = runner.run(&ctx);
    match format {
        "json" => println!("{}", report.to_json()),
        _ => print!("{}", report.render_text()),
    }
    fail_on_denied(&report, &deny, "lint")
}

/// Shared exit-status policy of `lint` and `audit`.
fn fail_on_denied(
    report: &sommelier_lint::LintReport,
    deny: &DenySpec,
    what: &str,
) -> CmdResult {
    let denied = deny.count_denied(&report.diagnostics);
    if denied > 0 {
        Err(format!(
            "{what} found {denied} finding(s) denied by --deny ({})",
            deny.describe()
        ))
    } else {
        Ok(())
    }
}

/// `sommelier audit <dir> [--jobs N] [--format text|json]
/// [--deny SPEC]... [--baseline FILE] [--query "<text>"]`
///
/// The deep audit: every shallow lint pass plus the
/// abstract-interpretation dataflow family (`SOM08x`) and the
/// repository ↔ index ↔ snapshot consistency join (`SOM09x`). Per-model
/// analyses fan out over `--jobs` workers and are memoized by
/// fingerprint; output ordering is deterministic regardless of the job
/// count. `--baseline` subtracts previously accepted findings (CI
/// ratcheting): generate one with `--format json > baseline.json`.
pub fn audit(args: &[String]) -> CmdResult {
    let (positional, flags) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let mut format = "text";
    let mut jobs = 0usize;
    let mut deny_specs: Vec<&str> = Vec::new();
    let mut baseline: Option<PathBuf> = None;
    let mut ctx = sommelier_lint::LintContext::from_repo_dir(&dir)?;
    for (name, value) in &flags {
        match *name {
            "format" => match *value {
                "text" | "json" => format = value,
                other => return Err(format!("unknown format '{other}' (text|json)")),
            },
            "jobs" => {
                jobs = value
                    .parse()
                    .map_err(|_| format!("--jobs needs an integer, got '{value}'"))?;
            }
            "deny" => deny_specs.push(value),
            "baseline" => baseline = Some(PathBuf::from(value)),
            "query" => {
                let query = sommelier_query::parse(value).map_err(fail)?;
                ctx.queries.push(query);
            }
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    let deny = DenySpec::parse(&deny_specs)?;
    let auditor = sommelier_lint::Auditor::new(jobs);
    let mut outcome = auditor.audit(&ctx);
    if let Some(path) = baseline {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("baseline '{}' is unreadable: {e}", path.display()))?;
        let known: Vec<sommelier_lint::Diagnostic> = serde_json::from_str(&text)
            .map_err(|e| format!("baseline '{}' does not parse: {e}", path.display()))?;
        outcome.report.subtract(&known);
    }
    match format {
        "json" => println!("{}", outcome.report.to_json()),
        _ => {
            print!("{}", outcome.report.render_text());
            println!(
                "audited {} model(s): {} analyzed, {} answered from the fingerprint memo",
                ctx.models.len(),
                outcome.models_analyzed,
                outcome.memo_hits
            );
        }
    }
    fail_on_denied(&outcome.report, &deny, "audit")
}

/// `sommelier fsck <dir> [--repair] [--prune]`
///
/// Walks the store directory and checks every artifact the durability
/// layer manages: model and manifest files must carry canonical key
/// encodings and parse; manifests must reference only chunks that
/// exist; chunks must hash-verify and be referenced by some manifest;
/// the index snapshot must parse; quarantined (`*.corrupt-*`) and
/// orphaned temp (`*.tmp-*`) files are reported. Without flags the
/// command only reports, failing (for scripting) if anything is found.
/// `--repair` deletes orphaned temps and orphaned chunks, quarantines
/// unparseable or dangling-reference artifacts, and rebuilds +
/// re-persists the index from the repository. `--prune` deletes
/// quarantined files; it works on its own — without `--repair` it
/// prunes quarantines left by earlier runs but fixes nothing else.
pub fn fsck(args: &[String]) -> CmdResult {
    let (positional, flags) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let mut repair = false;
    let mut prune = false;
    for (name, _) in &flags {
        match *name {
            "repair" => repair = true,
            "prune" => prune = true,
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    if !dir.exists() {
        return Err(format!("repository '{}' does not exist", dir.display()));
    }
    let storage = StdStorage;
    let names = storage.list(&dir).map_err(fail)?;
    let mut findings = 0usize;
    let mut fixed = 0usize;
    let mut index_broken = false;
    let mut manifests: Vec<(String, Manifest)> = Vec::new();
    for name in &names {
        let path = dir.join(name);
        if is_quarantine_name(name) {
            findings += 1;
            if prune {
                storage.remove(&path).map_err(fail)?;
                fixed += 1;
                println!("pruned quarantined file {name}");
            } else {
                println!("quarantined file: {name} (remove with --prune)");
            }
        } else if is_temp_name(name) {
            findings += 1;
            if repair {
                storage.remove(&path).map_err(fail)?;
                fixed += 1;
                println!("removed orphaned temp {name}");
            } else {
                println!("orphaned temp file: {name} (remove with --repair)");
            }
        } else if let Some(stem) = name.strip_suffix(MANIFEST_SUFFIX) {
            if decode_key(stem).is_none() {
                findings += 1;
                println!("non-canonical manifest file name: {name} (republish via the API)");
                continue;
            }
            let parsed = storage
                .read(&path)
                .map_err(fail)
                .and_then(|bytes| String::from_utf8(bytes).map_err(fail))
                .and_then(|text| Manifest::from_json(&text));
            match parsed {
                Ok(manifest) => manifests.push((name.clone(), manifest)),
                Err(e) => {
                    findings += 1;
                    if repair {
                        let q = sommelier_fault::quarantine(&storage, &path).map_err(fail)?;
                        fixed += 1;
                        println!(
                            "quarantined unreadable manifest {name} → {}",
                            q.file_name().and_then(|n| n.to_str()).unwrap_or("?")
                        );
                        if prune {
                            storage.remove(&q).map_err(fail)?;
                            println!(
                                "pruned quarantined file {}",
                                q.file_name().and_then(|n| n.to_str()).unwrap_or("?")
                            );
                        }
                    } else {
                        println!("unreadable manifest file: {name}: {e}");
                    }
                }
            }
        } else if let Some(stem) = name.strip_suffix(".model.json") {
            if decode_key(stem).is_none() {
                findings += 1;
                println!("non-canonical model file name: {name} (republish via the API)");
                continue;
            }
            if let Err(e) = serde_model::load(&path) {
                findings += 1;
                if repair {
                    let q = sommelier_fault::quarantine(&storage, &path).map_err(fail)?;
                    fixed += 1;
                    println!(
                        "quarantined unreadable model {name} → {}",
                        q.file_name().and_then(|n| n.to_str()).unwrap_or("?")
                    );
                    // The fresh quarantine postdates the listing; honor
                    // --prune in the same invocation.
                    if prune {
                        storage.remove(&q).map_err(fail)?;
                        println!(
                            "pruned quarantined file {}",
                            q.file_name().and_then(|n| n.to_str()).unwrap_or("?")
                        );
                    }
                } else {
                    println!("unreadable model file: {name}: {e}");
                }
            }
        } else if name == INDEX_FILE || name == INDEX_FILE_BIN {
            // Either encoding: the reader sniffs JSON vs binary.
            if let Err(e) = sommelier_index::persist::read_snapshot(&path) {
                findings += 1;
                index_broken = true;
                if !repair {
                    println!("unreadable index snapshot: {name}: {e}");
                }
            }
        }
    }
    // Chunk hygiene: every chunk must hash-verify and be referenced by
    // some manifest; every manifest reference must resolve to a chunk.
    let chunk_dir = dir.join(CHUNK_DIR);
    let chunk_names = storage.list(&chunk_dir).unwrap_or_default();
    let mut present: BTreeSet<String> = BTreeSet::new();
    for cname in &chunk_names {
        let path = chunk_dir.join(cname);
        if is_quarantine_name(cname) {
            findings += 1;
            if prune {
                storage.remove(&path).map_err(fail)?;
                fixed += 1;
                println!("pruned quarantined chunk {cname}");
            } else {
                println!("quarantined chunk: {cname} (remove with --prune)");
            }
        } else if is_temp_name(cname) {
            findings += 1;
            if repair {
                storage.remove(&path).map_err(fail)?;
                fixed += 1;
                println!("removed orphaned temp chunk {cname}");
            } else {
                println!("orphaned temp chunk: {cname} (remove with --repair)");
            }
        } else if !is_chunk_name(cname) {
            findings += 1;
            if repair {
                storage.remove(&path).map_err(fail)?;
                fixed += 1;
                println!("removed stray file in chunk dir: {cname}");
            } else {
                println!("stray file in chunk dir: {cname} (remove with --repair)");
            }
        } else {
            let stem = cname.strip_suffix(CHUNK_SUFFIX).unwrap_or(cname);
            let bytes = storage.read(&path).map_err(fail)?;
            if chunk_hash(&bytes) == stem {
                present.insert(stem.to_string());
            } else {
                // Corrupt chunks never count as present: manifests that
                // reference one are unreconstructable and show up as
                // dangling below.
                findings += 1;
                if repair {
                    let q = sommelier_fault::quarantine(&storage, &path).map_err(fail)?;
                    fixed += 1;
                    println!(
                        "quarantined corrupt chunk {cname} → {}",
                        q.file_name().and_then(|n| n.to_str()).unwrap_or("?")
                    );
                    if prune {
                        storage.remove(&q).map_err(fail)?;
                        println!(
                            "pruned quarantined file {}",
                            q.file_name().and_then(|n| n.to_str()).unwrap_or("?")
                        );
                    }
                } else {
                    println!("corrupt chunk: {cname} (content does not match its hash)");
                }
            }
        }
    }
    let referenced: BTreeSet<&str> = manifests
        .iter()
        .flat_map(|(_, m)| m.chunk_refs())
        .collect();
    for hash in &present {
        if !referenced.contains(hash.as_str()) {
            findings += 1;
            let cname = format!("{hash}{CHUNK_SUFFIX}");
            if repair {
                storage.remove(&chunk_dir.join(&cname)).map_err(fail)?;
                fixed += 1;
                println!("removed orphaned chunk {cname}");
            } else {
                println!("orphaned chunk: {cname} (referenced by no manifest; remove with --repair)");
            }
        }
    }
    for (name, manifest) in &manifests {
        let missing: Vec<&str> = manifest
            .chunk_refs()
            .into_iter()
            .filter(|h| !present.contains(*h))
            .collect();
        if missing.is_empty() {
            continue;
        }
        findings += 1;
        if repair {
            let q = sommelier_fault::quarantine(&storage, &dir.join(name)).map_err(fail)?;
            fixed += 1;
            println!(
                "quarantined manifest {name} with {} dangling chunk ref(s) → {}",
                missing.len(),
                q.file_name().and_then(|n| n.to_str()).unwrap_or("?")
            );
            if prune {
                storage.remove(&q).map_err(fail)?;
                println!(
                    "pruned quarantined file {}",
                    q.file_name().and_then(|n| n.to_str()).unwrap_or("?")
                );
            }
        } else {
            println!(
                "dangling chunk reference(s) in manifest {name}: {} missing (first: {})",
                missing.len(),
                missing[0]
            );
        }
    }
    // Repairing an unreadable snapshot = the engine's own recovery path:
    // quarantine the torn file, rebuild from the repository, re-persist.
    if repair && index_broken {
        let repo = open_repo(&dir)?;
        let (_, outcome) = Sommelier::connect_or_recover(
            repo as Arc<dyn ModelRepository>,
            SommelierConfig::default(),
            &index_path(&dir),
        )
        .map_err(fail)?;
        fixed += 1;
        match outcome {
            SnapshotRecovery::RebuiltQuarantined(q) => {
                println!(
                    "quarantined unreadable index snapshot → {}; rebuilt and re-saved",
                    q.file_name().and_then(|n| n.to_str()).unwrap_or("?")
                );
                // The quarantine file postdates our directory listing, so
                // the prune loop above never saw it.
                if prune {
                    storage.remove(&q).map_err(fail)?;
                    println!(
                        "pruned quarantined file {}",
                        q.file_name().and_then(|n| n.to_str()).unwrap_or("?")
                    );
                }
            }
            _ => println!("rebuilt and re-saved the index snapshot"),
        }
    }
    if findings == 0 {
        println!("{}: clean ({} file(s) checked)", dir.display(), names.len());
        return Ok(());
    }
    println!("{}: {findings} finding(s), {fixed} fixed", dir.display());
    if fixed < findings {
        return Err(format!(
            "fsck found {} unresolved issue(s)",
            findings - fixed
        ));
    }
    Ok(())
}

/// `sommelier dedup <dir>`
///
/// Migrates a flat store to chunked delta storage in place. Every model
/// becomes a manifest over content-addressed tensor chunks; models that
/// carry a `base` metadata hint naming another stored model become
/// sparse deltas against that base (dangling or cyclic hints degrade to
/// full manifests). Each key cuts over atomically — the flat file is
/// removed only after its manifest and chunks are durable, and a crash
/// mid-migration leaves every model loadable from one format or the
/// other. Running it again is a no-op for already-chunked keys.
pub fn dedup(args: &[String]) -> CmdResult {
    let (positional, flags) = split_flags(args)?;
    if let Some((name, _)) = flags.first() {
        return Err(format!("unknown flag --{name}"));
    }
    let dir = repo_dir(&positional)?;
    let repo = open_repo(&dir)?;
    let stats = dedup_store(&repo).map_err(fail)?;
    println!(
        "{}: {} model(s) — {} full manifest(s), {} delta(s), {} already chunked",
        dir.display(),
        stats.models,
        stats.full,
        stats.delta,
        stats.skipped
    );
    println!(
        "model storage {} → {} bytes ({:.2}x size cut)",
        stats.bytes_before,
        stats.bytes_after,
        stats.size_cut()
    );
    Ok(())
}

/// `sommelier serve <dir> [--addr A] [--workers N] [--queue-depth D]
/// [--tenants FILE] [--jobs N] [--cache-cap N] [--sample N]
/// [--no-segments]`
///
/// Opens the repository's engine once and serves it over TCP until a
/// `shutdown` request arrives. Prints `listening on ADDR` when ready
/// (ADDR resolves `--addr`'s port 0 to the actual ephemeral port, so
/// scripts can parse it).
pub fn serve(args: &[String]) -> CmdResult {
    let (positional, flags) = split_flags(args)?;
    let dir = repo_dir(&positional)?;
    let mut daemon_cfg = sommelier_serving::DaemonConfig {
        addr: "127.0.0.1:7634".to_string(),
        ..sommelier_serving::DaemonConfig::default()
    };
    let mut engine_flags = Vec::new();
    for (name, value) in &flags {
        match *name {
            "addr" => daemon_cfg.addr = value.to_string(),
            "workers" => {
                daemon_cfg.workers = value
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| format!("--workers needs a positive integer, got '{value}'"))?;
            }
            "queue-depth" => {
                daemon_cfg.queue_depth = value
                    .parse()
                    .map_err(|_| format!("--queue-depth needs an integer, got '{value}'"))?;
            }
            "tenants" => daemon_cfg.tenants = Some(PathBuf::from(value)),
            _ => engine_flags.push((*name, *value)),
        }
    }
    let cfg = engine_config(&engine_flags)?;
    let engine = load_engine(&dir, cfg)?;
    println!(
        "serving {} model(s) from {} (epoch {})",
        engine.len(),
        dir.display(),
        engine.epoch()
    );
    let handle = sommelier_serving::Daemon::serve(engine, daemon_cfg)?;
    println!("listening on {}", handle.addr());
    // Flush eagerly: daemon smoke scripts poll stdout for the line.
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    handle.wait();
    println!("daemon stopped");
    Ok(())
}

/// `sommelier client <addr> <op> [args] [--auth KEY]`
///
/// One-shot protocol client: connects, issues a single request, prints
/// the JSON response, and exits non-zero on error replies.
pub fn client(args: &[String]) -> CmdResult {
    use sommelier_serving::daemon::client::Client;
    let (positional, flags) = split_flags(args)?;
    let addr = positional
        .first()
        .ok_or("missing daemon address (host:port)")?;
    let op = positional.get(1).copied().ok_or(
        "missing op: ping | query <text> | batch <text>... | fsck | metrics | reload | shutdown",
    )?;
    let mut auth = None;
    for (name, value) in &flags {
        match *name {
            "auth" => auth = Some(value.to_string()),
            _ => return Err(format!("unknown flag --{name}")),
        }
    }
    let mut client = Client::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    if let Some(key) = auth {
        client = client.with_auth(key);
    }
    let reply = match op {
        "ping" => client.ping(),
        "query" => {
            let text = positional
                .get(2..)
                .filter(|rest| !rest.is_empty())
                .map(|rest| rest.join(" "))
                .ok_or("op 'query' needs query text")?;
            client.query(&text)
        }
        "batch" => {
            let texts: Vec<String> = positional[2..].iter().map(|s| s.to_string()).collect();
            if texts.is_empty() {
                return Err("op 'batch' needs at least one query text".into());
            }
            client.query_batch(&texts)
        }
        "fsck" => client.fsck(),
        "metrics" => client.metrics(),
        "reload" => client.reload(),
        "shutdown" => client.shutdown(),
        other => return Err(format!("unknown op '{other}'")),
    }
    .map_err(|e| format!("request failed: {e}"))?;
    println!(
        "{}",
        serde_json::to_string_pretty(&reply.body).map_err(fail)?
    );
    if !reply.ok {
        return Err(format!(
            "daemon replied with error '{}'",
            reply.error_code().unwrap_or("unknown")
        ));
    }
    Ok(())
}
