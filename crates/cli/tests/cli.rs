//! End-to-end tests driving the `sommelier` binary as a subprocess.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sommelier")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_repo(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sommelier-cli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn help_prints_usage() {
    let out = run(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn no_command_fails_with_usage() {
    let out = run(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn unknown_command_is_an_error() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn query_without_index_explains_what_to_do() {
    let dir = temp_repo("noindex");
    assert!(run(&["init", dir.to_str().unwrap()]).status.success());
    let out = run(&["query", dir.to_str().unwrap(), "SELECT model CORR x"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("sommelier index"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_session_init_seed_index_query_show_diff() {
    let dir = temp_repo("session");
    let d = dir.to_str().unwrap();

    assert!(run(&["init", d]).status.success());

    let out = run(&["seed", d, "--series", "2", "--seed", "7"]);
    assert!(out.status.success(), "seed failed: {}", stderr(&out));
    assert!(stdout(&out).contains("seeded"));

    let out = run(&["list", d]);
    assert!(out.status.success());
    let listing = stdout(&out);
    let keys: Vec<&str> = listing.lines().collect();
    assert_eq!(keys.len(), 10, "2 series x 5 models: {listing}");

    let out = run(&["index", d, "--sample", "16", "--no-segments"]);
    assert!(out.status.success(), "index failed: {}", stderr(&out));

    // Query for a small equivalent of the largest first-series model.
    let reference = keys
        .iter()
        .find(|k| k.contains("r152x4"))
        .expect("bitish series is seeded first");
    let out = run(&[
        "query",
        d,
        &format!("SELECT models 3 CORR {reference} ON memory <= 60% WITHIN 0.0 ORDER BY memory"),
    ]);
    assert!(out.status.success(), "query failed: {}", stderr(&out));
    let table = stdout(&out);
    assert!(table.contains("score"), "no result table: {table}");
    assert!(table.lines().count() >= 2, "no results: {table}");

    let out = run(&["show", d, keys[0]]);
    assert!(out.status.success());
    let shown = stdout(&out);
    assert!(shown.contains("parameters:"));
    assert!(shown.contains("memory:"));

    let out = run(&["diff", d, keys[0], keys[1]]);
    assert!(out.status.success(), "diff failed: {}", stderr(&out));
    let explanation = stdout(&out);
    assert!(explanation.contains("diff bound"));
    assert!(explanation.contains("i/o check"));
    assert!(explanation.contains("verdict"));

    let out = run(&["dot", d, keys[0]]);
    assert!(out.status.success(), "dot failed: {}", stderr(&out));
    let dot = stdout(&out);
    assert!(dot.starts_with("digraph"));
    assert!(dot.contains("->"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsck_reports_clean_on_a_healthy_repository() {
    let dir = temp_repo("fsck-clean");
    let d = dir.to_str().unwrap();
    assert!(run(&["init", d]).status.success());
    assert!(run(&["seed", d, "--series", "1"]).status.success());
    assert!(run(&["index", d, "--sample", "16", "--no-segments"]).status.success());
    let out = run(&["fsck", d]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("clean"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_index_recovers_transparently_and_fsck_repairs() {
    let dir = temp_repo("fsck-corrupt");
    let d = dir.to_str().unwrap();
    assert!(run(&["init", d]).status.success());
    assert!(run(&["seed", d, "--series", "1", "--seed", "3"]).status.success());
    assert!(run(&["index", d, "--sample", "16", "--no-segments"]).status.success());
    let listing = stdout(&run(&["list", d]));
    let reference = listing.lines().next().expect("seeded").to_string();

    // Tear the snapshot mid-file, the way a crashed write would.
    let index = dir.join("sommelier.index.json");
    let whole = std::fs::read_to_string(&index).unwrap();
    std::fs::write(&index, &whole[..whole.len() / 2]).unwrap();

    // Plain fsck reports and fails; nothing is modified.
    let out = run(&["fsck", d]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("unreadable index snapshot"));

    // Querying still works: the engine quarantines and rebuilds.
    let out = run(&[
        "query",
        d,
        &format!("SELECT models 3 CORR {reference} WITHIN 0.2"),
    ]);
    assert!(out.status.success(), "query failed: {}", stderr(&out));
    assert!(stderr(&out).contains("quarantined"), "{}", stderr(&out));

    // The quarantined evidence file remains until pruned.
    let out = run(&["fsck", d]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("quarantined file"));
    let out = run(&["fsck", d, "--prune"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = run(&["fsck", d]);
    assert!(out.status.success(), "{}", stderr(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsck_repair_cleans_temps_and_rebuilds_a_torn_index() {
    let dir = temp_repo("fsck-repair");
    let d = dir.to_str().unwrap();
    assert!(run(&["init", d]).status.success());
    assert!(run(&["seed", d, "--series", "1"]).status.success());
    assert!(run(&["index", d, "--sample", "16", "--no-segments"]).status.success());

    let index = dir.join("sommelier.index.json");
    std::fs::write(&index, "{ definitely not an index").unwrap();
    std::fs::write(dir.join("stray.model.json.tmp-999-0"), "partial").unwrap();

    let out = run(&["fsck", d, "--repair", "--prune"]);
    assert!(out.status.success(), "{}\n{}", stdout(&out), stderr(&out));
    let report = stdout(&out);
    assert!(report.contains("removed orphaned temp"), "{report}");
    assert!(report.contains("rebuilt"), "{report}");

    let out = run(&["fsck", d]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("clean"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compact_rewrites_the_index_to_binary_and_queries_report_it() {
    let dir = temp_repo("compact");
    let d = dir.to_str().unwrap();
    assert!(run(&["init", d]).status.success());
    assert!(run(&["seed", d, "--series", "1", "--seed", "5"]).status.success());
    assert!(run(&["index", d, "--sample", "16", "--no-segments"]).status.success());
    let listing = stdout(&run(&["list", d]));
    let reference = listing.lines().next().expect("seeded").to_string();
    let q = format!("SELECT models 3 CORR {reference} WITHIN 0.2");

    // Queries against the JSON snapshot report the json format.
    let out = run(&["query", d, &q, "--format", "json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("\"format\": \"json\""),
        "{}",
        stdout(&out)
    );

    let out = run(&["compact", d]);
    assert!(out.status.success(), "compact failed: {}", stderr(&out));
    assert!(stdout(&out).contains("compacted json snapshot"), "{}", stdout(&out));
    assert!(dir.join("sommelier.index.somb").exists());
    assert!(!dir.join("sommelier.index.json").exists(), "JSON original removed");

    // Same answers, served from the binary snapshot.
    let out = run(&["query", d, &q, "--format", "json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = stdout(&out);
    assert!(json.contains("\"format\": \"binary\""), "{json}");
    assert!(json.contains("\"results\""), "{json}");

    // fsck validates the binary snapshot; compacting twice is idempotent.
    let out = run(&["fsck", d]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("clean"));
    assert!(run(&["compact", d]).status.success());

    // A torn binary snapshot recovers exactly like torn JSON: the
    // engine quarantines the evidence and rebuilds.
    let index = dir.join("sommelier.index.somb");
    let whole = std::fs::read(&index).unwrap();
    std::fs::write(&index, &whole[..whole.len() / 2]).unwrap();
    let out = run(&["query", d, &q]);
    assert!(out.status.success(), "query failed: {}", stderr(&out));
    assert!(stderr(&out).contains("quarantined"), "{}", stderr(&out));
    let out = run(&["fsck", d, "--prune"]);
    assert!(out.status.success(), "{}", stderr(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn apply_coalesces_mutations_into_one_epoch_bump() {
    let dir = temp_repo("apply");
    let d = dir.to_str().unwrap();
    assert!(run(&["init", d]).status.success());
    assert!(run(&["seed", d, "--series", "1", "--seed", "9"]).status.success());
    assert!(run(&["index", d, "--sample", "16", "--no-segments"]).status.success());
    let listing = stdout(&run(&["list", d]));
    let keys: Vec<String> = listing.lines().map(str::to_string).collect();
    assert_eq!(keys.len(), 5);

    // An empty batch is a no-op, not an error.
    let out = run(&["apply", d]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("nothing to apply"), "{}", stdout(&out));

    // Replace one key in place and drop another: one batch, one epoch.
    let export = dir.join("replacement.json");
    let stored = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| {
            e.file_name()
                .to_string_lossy()
                .starts_with(&format!("{}.", keys[0]))
        })
        .expect("stored model file for first key");
    std::fs::copy(stored.path(), &export).unwrap();
    let out = run(&[
        "apply",
        d,
        "--remove",
        &keys[0],
        "--add",
        export.to_str().unwrap(),
        "--remove",
        &keys[4],
        "--sample",
        "16",
        "--no-segments",
    ]);
    assert!(out.status.success(), "apply failed: {}", stderr(&out));
    let report = stdout(&out);
    assert!(report.contains("applied 3 mutation(s)"), "{report}");
    assert!(report.contains("epoch 2"), "one publish, one bump: {report}");

    // The dropped key is gone from query results; the replaced one serves.
    let q = format!("SELECT models 10 CORR {} WITHIN 0.9", keys[0]);
    let out = run(&["query", d, &q, "--sample", "16", "--no-segments"]);
    assert!(out.status.success(), "query failed: {}", stderr(&out));
    let table = stdout(&out);
    assert!(!table.contains(&keys[4]), "removed key still served: {table}");
    assert!(table.contains("epoch 2"), "{table}");

    // Removing an unknown key mutates nothing and keeps the epoch.
    let out = run(&["apply", d, "--remove", "no-such-model"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("applied 0 mutation(s)"), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn add_rejects_missing_file_and_duplicate_keys() {
    let dir = temp_repo("add");
    let d = dir.to_str().unwrap();
    assert!(run(&["init", d]).status.success());
    let out = run(&["add", d, "/nonexistent/model.json"]);
    assert!(!out.status.success());

    // Round-trip a real model file through `add`.
    let out = run(&["seed", d, "--series", "1"]);
    assert!(out.status.success());
    let listing = stdout(&run(&["list", d]));
    let first = listing.lines().next().expect("seeded").to_string();
    // Export by copying the stored file, then re-add under a new key.
    let src = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().ends_with(".model.json"))
        .expect("stored model file");
    let copy = dir.join("export.json");
    std::fs::copy(src.path(), &copy).unwrap();
    let out = run(&["add", d, copy.to_str().unwrap(), "--key", "reimported"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = run(&["add", d, copy.to_str().unwrap(), "--key", "reimported"]);
    assert!(!out.status.success(), "duplicate key must fail");
    let _ = first;
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dedup_migrates_in_place_and_fsck_checks_chunks() {
    let dir = temp_repo("dedup");
    let d = dir.to_str().unwrap();
    assert!(run(&["init", d]).status.success());
    assert!(run(&["seed", d, "--series", "1", "--seed", "7"]).status.success());
    let listing = stdout(&run(&["list", d]));
    let keys: Vec<String> = listing.lines().map(String::from).collect();
    assert!(!keys.is_empty());
    let shown_before = stdout(&run(&["show", d, &keys[0]]));

    // Migrate to chunked storage: flat files disappear, chunks appear,
    // and the store still fscks clean and serves the same models.
    let out = run(&["dedup", d]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("size cut"), "{}", stdout(&out));
    assert!(dir.join("chunks").is_dir());
    let flat_left = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().ends_with(".model.json"))
        .count();
    assert_eq!(flat_left, 0, "all models should be chunked");
    let out = run(&["fsck", d]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(shown_before, stdout(&run(&["show", d, &keys[0]])));

    // A second pass is a no-op.
    let out = run(&["dedup", d]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("already chunked"), "{}", stdout(&out));

    // Chunk damage: delete one chunk (dangling manifest ref), plant a
    // stray file. Plain fsck reports both and fails.
    let chunk_dir = dir.join("chunks");
    let victim = std::fs::read_dir(&chunk_dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().ends_with(".chunk"))
        .expect("chunks exist");
    std::fs::remove_file(victim.path()).unwrap();
    std::fs::write(chunk_dir.join("stray.txt"), b"junk").unwrap();
    let out = run(&["fsck", d]);
    assert!(!out.status.success());
    let report = stdout(&out);
    assert!(report.contains("dangling chunk reference"), "{report}");
    assert!(report.contains("stray file in chunk dir"), "{report}");

    // --repair --prune quarantines the broken manifest, removes the
    // stray, and (after the follow-up orphan sweep) leaves the store
    // clean again.
    let out = run(&["fsck", d, "--repair", "--prune"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = run(&["fsck", d, "--repair", "--prune"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let out = run(&["fsck", d]);
    assert!(out.status.success(), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_and_client_round_trip_over_tcp() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let dir = temp_repo("serve");
    let d = dir.to_str().unwrap();
    assert!(run(&["init", d]).status.success());
    assert!(run(&["seed", d, "--series", "1", "--seed", "11"]).status.success());
    assert!(run(&["index", d, "--sample", "16", "--no-segments"]).status.success());
    let listing = stdout(&run(&["list", d]));
    let reference = listing.lines().next().expect("seeded").to_string();

    // Port 0: the daemon prints the resolved ephemeral port.
    let mut daemon = Command::new(bin())
        .args([
            "serve", d, "--addr", "127.0.0.1:0", "--workers", "2", "--queue-depth", "8",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let mut daemon_out = BufReader::new(daemon.stdout.take().expect("piped stdout"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            daemon_out.read_line(&mut line).expect("daemon stdout") > 0,
            "daemon exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };

    let q = format!("SELECT models 3 CORR {reference} WITHIN 0.2");
    let out = run(&["client", &addr, "query", &q]);
    assert!(out.status.success(), "client query failed: {}", stderr(&out));
    let reply = stdout(&out);
    assert!(reply.contains("\"results\""), "{reply}");
    assert!(reply.contains("\"epoch\""), "{reply}");

    let out = run(&["client", &addr, "metrics"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let metrics = stdout(&out);
    for key in ["serve.accepted", "serve.shed", "serve.active_connections"] {
        assert!(metrics.contains(key), "metrics missing {key}: {metrics}");
    }

    let out = run(&["client", &addr, "reload"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("\"reindexed\""), "{}", stdout(&out));

    let out = run(&["client", &addr, "shutdown"]);
    assert!(out.status.success(), "{}", stderr(&out));

    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon must exit cleanly after shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_json_reports_aggregate_latency_quantiles() {
    let dir = temp_repo("latency-json");
    let d = dir.to_str().unwrap();
    assert!(run(&["init", d]).status.success());
    assert!(run(&["seed", d, "--series", "1", "--seed", "13"]).status.success());
    assert!(run(&["index", d, "--sample", "16", "--no-segments"]).status.success());
    let listing = stdout(&run(&["list", d]));
    let reference = listing.lines().next().expect("seeded").to_string();
    let q = format!("SELECT models 3 CORR {reference} WITHIN 0.2");
    let out = run(&["query", d, &q, "--repeat", "5", "--format", "json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let json = stdout(&out);
    for key in ["\"latency\"", "\"p50_ms\"", "\"p90_ms\"", "\"p99_ms\""] {
        assert!(json.contains(key), "json missing {key}: {json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
