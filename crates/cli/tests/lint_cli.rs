//! End-to-end tests of `sommelier lint` through the real binary.
//!
//! Two scenarios anchor the curation story: a freshly seeded and indexed
//! repository must lint green even under `--deny warn` (the CI gate), and
//! a deliberately corrupted index snapshot must fail the same gate with
//! structured findings on stdout.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sommelier")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary spawns")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A unique scratch directory under the target-adjacent temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sommelier-lint-cli-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seeded_repo(tag: &str) -> PathBuf {
    let dir = scratch(tag);
    let d = dir.to_str().unwrap();
    assert_ok(&run(&["init", d]), "init");
    assert_ok(&run(&["seed", d, "--series", "1", "--seed", "7"]), "seed");
    assert_ok(&run(&["index", d]), "index");
    dir
}

fn write_corrupt_snapshot(dir: &Path) {
    // `ghost` is indexed but never stored, and `m-a`'s candidate list is
    // out of descending-score order — both `SOM02x` errors.
    let semantic = r#"{
        "config": {"sample_size": 5, "segments": true, "max_candidates": 64},
        "entries": {
            "1": {"key": "m-a", "candidates": [
                {"key": "ghost", "diff_bound": 0.5, "score": 0.5, "kind": "Whole"},
                {"key": "m-b", "diff_bound": 0.1, "score": 0.9, "kind": "Whole"}
            ]},
            "2": {"key": "ghost", "candidates": []}
        },
        "by_key": {"m-a": 1, "ghost": 2},
        "order": ["m-a", "ghost"],
        "seed_state": 0
    }"#;
    let resource = r#"{
        "entries": [],
        "removed": [],
        "lsh": {
            "dim": 3,
            "config": {"bits": 2, "tables": 1},
            "planes": [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]],
            "buckets": [{}],
            "len": 0
        },
        "exhaustive": false
    }"#;
    let snapshot = format!("{{\"version\":2,\"semantic\":{semantic},\"resource\":{resource}}}");
    std::fs::write(dir.join("sommelier.index.json"), snapshot).expect("snapshot writes");
}

#[test]
fn freshly_indexed_repository_lints_green_under_deny_warn() {
    let dir = seeded_repo("clean");
    let d = dir.to_str().unwrap();
    let out = run(&["lint", d, "--deny", "warn"]);
    assert_ok(&out, "lint --deny warn on a clean repository");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");

    // The machine-readable report of a clean repository is an empty
    // diagnostics array that parses back into the lint vocabulary.
    let out = run(&["lint", d, "--format", "json"]);
    assert_ok(&out, "lint --format json");
    let diags: Vec<sommelier_lint::Diagnostic> =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim())
            .expect("JSON report parses into Vec<Diagnostic>");
    assert!(diags.is_empty(), "{diags:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_snapshot_fails_the_deny_warn_gate() {
    let dir = scratch("corrupt");
    let d = dir.to_str().unwrap();
    assert_ok(&run(&["init", d]), "init");
    write_corrupt_snapshot(&dir);

    let out = run(&["lint", d, "--deny", "warn"]);
    assert!(!out.status.success(), "corrupted snapshot must fail the gate");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SOM020"), "dangling key finding expected:\n{text}");
    assert!(text.contains("SOM021"), "unsorted candidates finding expected:\n{text}");

    // The JSON report carries the same findings and stays parseable.
    let out = run(&["lint", d, "--format", "json"]);
    assert!(!out.status.success(), "json format still sets the exit code");
    let diags: Vec<sommelier_lint::Diagnostic> =
        serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim())
            .expect("JSON report parses into Vec<Diagnostic>");
    assert!(diags.iter().any(|d| d.code == "SOM020"), "{diags:?}");
    assert!(diags.iter().any(|d| d.code == "SOM021"), "{diags:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unreadable_snapshot_is_a_lint_error_not_a_crash() {
    let dir = scratch("garbage");
    let d = dir.to_str().unwrap();
    assert_ok(&run(&["init", d]), "init");
    std::fs::write(dir.join("sommelier.index.json"), "{not json").expect("write");
    let out = run(&["lint", d]);
    assert!(!out.status.success(), "unreadable snapshot is an error");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SOM027"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn statically_broken_query_is_reported_against_a_clean_repository() {
    let dir = seeded_repo("query");
    let d = dir.to_str().unwrap();
    let out = run(&[
        "lint",
        d,
        "--query",
        "SELECT model CORR no-such-model WITHIN 0.5",
    ]);
    assert!(!out.status.success(), "empty reference is an error");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SOM043"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}
