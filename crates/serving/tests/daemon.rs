//! End-to-end tests of the query daemon over real TCP connections:
//! protocol round trips, epoch pinning under republish, tenant
//! auth/quota, typed load-shed, and graceful shutdown.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use serde::Value;
use sommelier_graph::TaskKind;
use sommelier_query::{MutationBatch, Sommelier, SommelierConfig};
use sommelier_repo::{InMemoryRepository, ModelRepository};
use sommelier_serving::daemon::client::Client;
use sommelier_serving::{Daemon, DaemonConfig};
use sommelier_tensor::Prng;
use sommelier_zoo::families::Family;
use sommelier_zoo::series::build_series;

/// A small indexed engine plus the names of a valid reference model
/// and a "victim" sibling the republish storm can churn.
fn fixture() -> (Sommelier, String, String) {
    let repo = Arc::new(InMemoryRepository::new());
    let mut cfg = SommelierConfig {
        validation_rows: 64,
        ..SommelierConfig::default()
    };
    cfg.index.sample_size = 8;
    let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);
    let mut rng = Prng::seed_from_u64(33);
    let series = build_series(
        "daemonnet",
        Family::Resnetish,
        TaskKind::ImageRecognition,
        "imagenet",
        4,
        51,
        0.08,
        &mut rng,
    );
    for m in &series.models {
        engine.register(m).expect("fresh model");
    }
    let reference = series.models[0].name.clone();
    let victim = series.models[1].name.clone();
    (engine, reference, victim)
}

fn start(config: DaemonConfig) -> (sommelier_serving::DaemonHandle, String, String, String) {
    let (engine, reference, victim) = fixture();
    let handle = Daemon::serve(engine, config).expect("daemon starts");
    let addr = handle.addr().to_string();
    (handle, addr, reference, victim)
}

fn query_text(reference: &str) -> String {
    format!("SELECT models 3 CORR {reference} WITHIN 0.9 ORDER BY similarity")
}

#[test]
fn protocol_round_trip_and_graceful_shutdown() {
    let (handle, addr, reference, _victim) = start(DaemonConfig::default());
    let mut client = Client::connect(&addr).expect("connect");

    let pong = client.ping().unwrap();
    assert!(pong.ok);
    assert_eq!(pong.body.get_field("pong"), Some(&Value::Bool(true)));

    let reply = client.query(&query_text(&reference)).unwrap();
    assert!(reply.ok, "query failed: {:?}", reply.body);
    let Some(Value::Seq(results)) = reply.body.get_field("results") else {
        panic!("missing results: {:?}", reply.body);
    };
    assert!(!results.is_empty(), "reference must find equivalents");
    assert!(matches!(
        reply.body.get_field("epoch"),
        Some(Value::UInt(_))
    ));

    let fsck = client.fsck().unwrap();
    assert!(fsck.ok);
    assert_eq!(fsck.body.get_field("consistent"), Some(&Value::Bool(true)));

    let metrics = client.metrics().unwrap();
    assert!(metrics.ok);
    let counters = metrics.body.get_field("counters").expect("counters map");
    for key in ["serve.accepted", "serve.shed", "serve.active_connections"] {
        assert!(
            counters.get_field(key).is_some(),
            "metrics missing counter {key}: {counters:?}"
        );
    }

    let before = match fsck.body.get_field("epoch") {
        Some(Value::UInt(e)) => *e,
        other => panic!("bad epoch {other:?}"),
    };
    // Nothing is missing from the index, so reload is a no-op that
    // reports 0 reindexed models and leaves the epoch alone.
    let reload = client.reload().unwrap();
    assert!(reload.ok, "reload failed: {:?}", reload.body);
    assert_eq!(reload.body.get_field("reindexed"), Some(&Value::UInt(0)));
    match reload.body.get_field("epoch") {
        Some(Value::UInt(e)) => assert_eq!(*e, before),
        other => panic!("bad epoch {other:?}"),
    }

    let bye = client.shutdown().unwrap();
    assert!(bye.ok);
    handle.wait();
    assert!(
        Client::connect(&addr).is_err(),
        "listener must be closed after shutdown"
    );
}

#[test]
fn bad_frames_get_typed_bad_request_not_disconnect() {
    let (handle, addr, reference, _victim) = start(DaemonConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    // An unknown op is an error *response*, not a dropped connection.
    let reply = client.call("no_such_op", Vec::new()).unwrap();
    assert!(!reply.ok);
    assert_eq!(reply.error_code(), Some("bad_request"));
    // The connection still works afterwards.
    let reply = client.query(&query_text(&reference)).unwrap();
    assert!(reply.ok);
    handle.shutdown();
    handle.wait();
}

#[test]
fn batch_pins_one_epoch_under_republish_storm() {
    let (handle, addr, reference, victim) = start(DaemonConfig {
        workers: 4,
        queue_depth: 16,
        ..DaemonConfig::default()
    });
    let stop = Arc::new(AtomicBool::new(false));
    let handle = Arc::new(handle);
    let mutator = {
        let handle = Arc::clone(&handle);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Republish as fast as possible: unregistering the victim
            // bumps the epoch, and re-indexing it back from the
            // repository bumps it again — each cycle swaps the
            // snapshot twice under live readers.
            let mut republishes = 0u64;
            while !stop.load(Ordering::SeqCst) {
                handle.with_engine(|engine| {
                    let batch = MutationBatch::new().unregister(victim.clone());
                    engine.apply(batch).expect("unregister applies");
                    engine.index_existing().expect("reindex applies")
                });
                republishes += 2;
            }
            republishes
        })
    };

    let mut client = Client::connect(&addr).unwrap();
    let texts: Vec<String> = (0..8).map(|_| query_text(&reference)).collect();
    let mut epochs_seen = std::collections::BTreeSet::new();
    let mut mixed = 0u64;
    // At least 30 batches, then keep going (bounded) until the batches
    // have straddled at least one republish — on a loaded machine a
    // fixed count can finish before the mutator thread is scheduled.
    let mut rounds = 0u32;
    while rounds < 30 || (epochs_seen.len() < 2 && rounds < 600) {
        rounds += 1;
        let reply = client.query_batch(&texts).expect("no protocol error");
        assert!(reply.ok, "batch failed: {:?}", reply.body);
        let Some(Value::Seq(items)) = reply.body.get_field("items") else {
            panic!("missing items");
        };
        let mut item_epochs = std::collections::BTreeSet::new();
        for item in items {
            match item.get_field("epoch") {
                Some(Value::UInt(e)) => {
                    item_epochs.insert(*e);
                }
                other => panic!("item missing epoch: {other:?}"),
            }
            assert!(
                item.get_field("results").is_some(),
                "item dropped its results: {item:?}"
            );
        }
        if item_epochs.len() > 1 {
            mixed += 1;
        }
        epochs_seen.extend(item_epochs);
    }
    stop.store(true, Ordering::SeqCst);
    let republishes = mutator.join().unwrap();
    assert_eq!(mixed, 0, "a batch must pin exactly one snapshot epoch");
    assert!(republishes > 0, "the storm must actually republish");
    assert!(
        epochs_seen.len() > 1,
        "the batches must observe the churn ({republishes} republishes, \
         epochs seen: {epochs_seen:?})"
    );
    handle.shutdown();
    match Arc::try_unwrap(handle) {
        Ok(h) => h.wait(),
        Err(_) => panic!("all clones dropped"),
    }
}

#[test]
fn tenants_gate_auth_and_quota() {
    let dir = std::env::temp_dir().join(format!("sommelier-daemon-tenants-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tenants = dir.join("tenants.json");
    // Tiny refill rate: the bucket cannot recover during the test.
    std::fs::write(
        &tenants,
        r#"[{"name": "team-a", "key": "ka", "rate_per_sec": 0.001, "burst": 3.0}]"#,
    )
    .unwrap();
    let (handle, addr, reference, _victim) = start(DaemonConfig {
        tenants: Some(tenants),
        ..DaemonConfig::default()
    });

    // No key: unauthorized, even for ping.
    let mut anon = Client::connect(&addr).unwrap();
    let reply = anon.ping().unwrap();
    assert_eq!(reply.error_code(), Some("unauthorized"));

    // Wrong key: unauthorized.
    let mut wrong = Client::connect(&addr).unwrap().with_auth("nope");
    let reply = wrong.query(&query_text(&reference)).unwrap();
    assert_eq!(reply.error_code(), Some("unauthorized"));

    // Right key: 3 tokens of burst, then typed exhaustion with a hint.
    let mut tenant = Client::connect(&addr).unwrap().with_auth("ka");
    for _ in 0..3 {
        let reply = tenant.query(&query_text(&reference)).unwrap();
        assert!(reply.ok, "within burst: {:?}", reply.body);
    }
    let reply = tenant.query(&query_text(&reference)).unwrap();
    assert_eq!(reply.error_code(), Some("quota_exhausted"));
    assert!(
        reply.retry_after_ms().unwrap_or(0) > 0,
        "exhaustion must carry a retry hint: {:?}",
        reply.body
    );
    // Control ops stay free for an authenticated tenant.
    let reply = tenant.metrics().unwrap();
    assert!(reply.ok);

    handle.shutdown();
    handle.wait();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn over_admission_sheds_with_typed_retry_after() {
    // One permit, zero queue: anything that arrives while a batch is
    // executing is shed immediately with `overloaded`.
    let (handle, addr, reference, _victim) = start(DaemonConfig {
        workers: 1,
        queue_depth: 0,
        ..DaemonConfig::default()
    });
    let big_batch: Vec<String> = (0..600).map(|_| query_text(&reference)).collect();
    let blocker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            c.query_batch(&big_batch).unwrap()
        })
    };
    // Poke until we land inside the blocker's execution window.
    let mut shed = None;
    let mut probe = Client::connect(&addr).unwrap();
    for _ in 0..2000 {
        let reply = probe.query(&query_text(&reference)).unwrap();
        if reply.error_code() == Some("overloaded") {
            shed = Some(reply);
            break;
        }
        assert!(reply.ok, "probe must succeed or shed: {:?}", reply.body);
    }
    let reply = shed.expect("a probe must be shed while the batch executes");
    assert!(
        reply.retry_after_ms().unwrap_or(0) > 0,
        "shed must carry retry_after_ms: {:?}",
        reply.body
    );
    let blocked = blocker.join().unwrap();
    assert!(blocked.ok, "the admitted batch still completes");
    // The shed shows up in the metrics scrape.
    let metrics = probe.metrics().unwrap();
    let counters = metrics.body.get_field("counters").unwrap();
    match counters.get_field("serve.shed") {
        Some(Value::UInt(n)) => assert!(*n >= 1),
        other => panic!("serve.shed missing: {other:?}"),
    }
    handle.shutdown();
    handle.wait();
}
