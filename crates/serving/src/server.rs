//! The event-driven queueing simulation.
//!
//! FIFO arrivals are dispatched to the earliest-free server of a
//! (1- or 2-server) cluster. For each request, the active [`Policy`]
//! observes the current backlog — how long the request will wait before
//! service starts — and picks the model variant to serve it with. Request
//! latency is waiting time plus the chosen variant's service time, the
//! quantity whose 90th percentile Figure 9(c) reports.

use crate::policies::{ModelChoice, Policy};
use crate::stats::LatencyStats;
use serde::{Deserialize, Serialize};

/// Cluster configuration for one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of identical servers draining the shared queue. 1 for the
    /// baseline, 2 for the ideal scale-out of the paper's comparison.
    pub servers: usize,
    /// Model-selection policy.
    pub policy: Policy,
}

/// Outcome of a simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimResult {
    /// Per-request end-to-end latency (waiting + service), in seconds,
    /// in arrival order.
    pub latencies: Vec<f64>,
    /// Per-request index of the variant chosen.
    pub choices: Vec<usize>,
    /// Mean accuracy of the served variants (weighted per request).
    pub mean_accuracy: f64,
}

impl SimResult {
    /// Latency statistics over the run.
    pub fn stats(&self) -> LatencyStats {
        LatencyStats::from(&self.latencies)
    }

    /// Fraction of requests served by each variant.
    pub fn choice_fractions(&self, variants: usize) -> Vec<f64> {
        let mut counts = vec![0usize; variants];
        for &c in &self.choices {
            counts[c] += 1;
        }
        let n = self.choices.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }
}

/// Run the queueing simulation for the given arrivals and variants.
///
/// `variants` must be non-empty; `arrivals` must be sorted ascending.
pub fn simulate(config: &ClusterConfig, arrivals: &[f64], variants: &[ModelChoice]) -> SimResult {
    simulate_with(config.servers, arrivals, variants, |backlog| {
        config.policy.choose(backlog, variants)
    })
}

/// Run the queueing simulation with an arbitrary chooser.
///
/// The closure receives each request's observed backlog (seconds of
/// queueing delay before service starts) and returns the index of the
/// variant to serve it with — the hook through which the live Sommelier
/// engine drives model selection ([`crate::EngineSwitcher`]). The static
/// [`Policy`](crate::Policy) variants route through here via [`simulate`].
pub fn simulate_with<F: FnMut(f64) -> usize>(
    servers: usize,
    arrivals: &[f64],
    variants: &[ModelChoice],
    mut choose: F,
) -> SimResult {
    assert!(servers >= 1, "cluster needs at least one server");
    assert!(!variants.is_empty(), "no model variants");
    debug_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));

    let mut free_at = vec![0.0f64; servers];
    let mut latencies = Vec::with_capacity(arrivals.len());
    let mut choices = Vec::with_capacity(arrivals.len());
    let mut accuracy_sum = 0.0;
    for &t in arrivals {
        // Earliest-free server takes the request (FIFO).
        let (server, &free) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("at least one server");
        let start = free.max(t);
        let backlog = start - t;
        let choice = choose(backlog).min(variants.len() - 1);
        let service = variants[choice].service_time_s;
        free_at[server] = start + service;
        latencies.push(backlog + service);
        choices.push(choice);
        accuracy_sum += variants[choice].accuracy;
    }
    SimResult {
        mean_accuracy: accuracy_sum / arrivals.len().max(1) as f64,
        latencies,
        choices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use sommelier_tensor::Prng;

    fn variants() -> Vec<ModelChoice> {
        vec![
            ModelChoice {
                name: "tiny".into(),
                service_time_s: 0.01,
                accuracy: 0.70,
            },
            ModelChoice {
                name: "big".into(),
                service_time_s: 0.10,
                accuracy: 0.90,
            },
        ]
    }

    fn bursty_arrivals(seed: u64) -> Vec<f64> {
        let mut rng = Prng::seed_from_u64(seed);
        Workload::bursty(60.0, 2.0, 30.0).arrivals(&mut rng)
    }

    #[test]
    fn idle_system_latency_is_service_time() {
        let cfg = ClusterConfig {
            servers: 1,
            policy: Policy::Fixed { index: 1 },
        };
        let r = simulate(&cfg, &[0.0, 10.0, 20.0], &variants());
        for &l in &r.latencies {
            assert!((l - 0.10).abs() < 1e-12);
        }
        assert!((r.mean_accuracy - 0.90).abs() < 1e-12);
    }

    #[test]
    fn saturation_builds_queueing_delay() {
        // Arrival spacing below the service time ⇒ waits accumulate.
        let cfg = ClusterConfig {
            servers: 1,
            policy: Policy::Fixed { index: 1 },
        };
        let arrivals: Vec<f64> = (0..100).map(|i| i as f64 * 0.05).collect();
        let r = simulate(&cfg, &arrivals, &variants());
        assert!(r.latencies.last().unwrap() > &1.0);
    }

    #[test]
    fn two_servers_beat_one_under_load() {
        let arrivals = bursty_arrivals(1);
        let one = simulate(
            &ClusterConfig {
                servers: 1,
                policy: Policy::Fixed { index: 1 },
            },
            &arrivals,
            &variants(),
        );
        let two = simulate(
            &ClusterConfig {
                servers: 2,
                policy: Policy::Fixed { index: 1 },
            },
            &arrivals,
            &variants(),
        );
        assert!(two.stats().p90 < one.stats().p90);
    }

    #[test]
    fn switching_cuts_tail_latency_over_fixed() {
        let arrivals = bursty_arrivals(2);
        let fixed = simulate(
            &ClusterConfig {
                servers: 1,
                policy: Policy::Fixed { index: 1 },
            },
            &arrivals,
            &variants(),
        );
        let switching = simulate(
            &ClusterConfig {
                servers: 1,
                policy: Policy::Switching { sla_s: 0.3 },
            },
            &arrivals,
            &variants(),
        );
        assert!(
            switching.stats().p90 < fixed.stats().p90 / 2.0,
            "switching p90 {} vs fixed p90 {}",
            switching.stats().p90,
            fixed.stats().p90
        );
        // Accuracy cost stays modest: the big model still serves the
        // light-load phases.
        assert!(switching.mean_accuracy > 0.75);
    }

    #[test]
    fn choice_fractions_sum_to_one() {
        let arrivals = bursty_arrivals(3);
        let r = simulate(
            &ClusterConfig {
                servers: 1,
                policy: Policy::Switching { sla_s: 0.3 },
            },
            &arrivals,
            &variants(),
        );
        let f = r.choice_fractions(2);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(f[0] > 0.0 && f[1] > 0.0, "both variants should serve: {f:?}");
    }

    #[test]
    fn simulate_with_matches_the_policy_path() {
        let arrivals = bursty_arrivals(4);
        let vs = variants();
        let policy = Policy::Switching { sla_s: 0.3 };
        let via_policy = simulate(
            &ClusterConfig {
                servers: 1,
                policy: policy.clone(),
            },
            &arrivals,
            &vs,
        );
        let via_closure = simulate_with(1, &arrivals, &vs, |b| policy.choose(b, &vs));
        assert_eq!(via_policy.choices, via_closure.choices);
        assert_eq!(via_policy.latencies, via_closure.latencies);
    }

    #[test]
    fn out_of_range_choices_are_clamped() {
        let r = simulate_with(1, &[0.0, 1.0], &variants(), |_| 99);
        assert_eq!(r.choices, vec![1, 1]);
    }

    #[test]
    fn empty_arrivals_yield_empty_result() {
        let r = simulate(
            &ClusterConfig {
                servers: 1,
                policy: Policy::Fixed { index: 0 },
            },
            &[],
            &variants(),
        );
        assert!(r.latencies.is_empty());
        assert_eq!(r.mean_accuracy, 0.0);
    }
}
