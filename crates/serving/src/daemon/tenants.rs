//! Per-tenant API keys and token-bucket quota accounting.
//!
//! The daemon optionally loads a tenant file (`--tenants FILE`): a JSON
//! array of tenant specs:
//!
//! ```json
//! [
//!   {"name": "team-a", "key": "ka-123", "rate_per_sec": 50.0, "burst": 100.0},
//!   {"name": "team-b", "key": "kb-456", "rate_per_sec": 5.0}
//! ]
//! ```
//!
//! With a tenant file loaded, every request must carry a known `auth`
//! key or it is rejected `unauthorized`. Query ops additionally spend
//! one token per query (a batch of N spends N) from the tenant's token
//! bucket — `burst` tokens capacity (default: one second of rate),
//! refilled continuously at `rate_per_sec`. An empty bucket yields
//! `quota_exhausted` with a `retry_after_ms` hint computed from the
//! refill rate, so well-behaved clients back off exactly as long as
//! needed. Without a tenant file the daemon is open: every request
//! passes with no accounting.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use serde::Value;

/// One tenant's static configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    pub name: String,
    /// The API key clients present in the `auth` field.
    pub key: String,
    /// Steady-state refill rate, tokens (= queries) per second.
    pub rate_per_sec: f64,
    /// Bucket capacity: the largest burst the tenant can spend at once.
    pub burst: f64,
}

struct Bucket {
    name: String,
    rate: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

/// Outcome of a tenant check.
#[derive(Debug, Clone, PartialEq)]
pub enum TenantDecision {
    /// Admit; carries the tenant name (None when the book is open).
    Ok(Option<String>),
    /// No tenant file match for the presented (or missing) key.
    Unauthorized,
    /// Bucket empty — retry once enough tokens have refilled.
    Exhausted { retry_after_ms: u64 },
}

/// The daemon's view of its tenants. `None` buckets = open access.
pub struct TenantBook {
    buckets: Option<Mutex<HashMap<String, Bucket>>>,
}

impl TenantBook {
    /// An open book: no auth, no accounting.
    pub fn unrestricted() -> Self {
        TenantBook { buckets: None }
    }

    pub fn from_specs(specs: Vec<TenantSpec>) -> Self {
        let now = Instant::now();
        let map = specs
            .into_iter()
            .map(|s| {
                let burst = if s.burst > 0.0 { s.burst } else { s.rate_per_sec };
                (
                    s.key,
                    Bucket {
                        name: s.name,
                        rate: s.rate_per_sec.max(1e-6),
                        burst: burst.max(1.0),
                        tokens: burst.max(1.0),
                        last: now,
                    },
                )
            })
            .collect();
        TenantBook {
            buckets: Some(Mutex::new(map)),
        }
    }

    /// Load a tenant file. Errors are strings so the CLI can surface
    /// them directly.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read tenants file {}: {e}", path.display()))?;
        let value: Value = serde_json::from_str(&text)
            .map_err(|e| format!("tenants file {}: {e}", path.display()))?;
        let Value::Seq(items) = value else {
            return Err(format!(
                "tenants file {} must be a JSON array of tenant objects",
                path.display()
            ));
        };
        let mut specs = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let field_str = |k: &str| match item.get_field(k) {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            };
            let field_f64 = |k: &str| match item.get_field(k) {
                Some(Value::Float(f)) => Some(*f),
                Some(Value::Int(n)) => Some(*n as f64),
                Some(Value::UInt(n)) => Some(*n as f64),
                _ => None,
            };
            let name = field_str("name").ok_or(format!("tenant #{i}: missing 'name'"))?;
            let key = field_str("key").ok_or(format!("tenant #{i}: missing 'key'"))?;
            let rate_per_sec = field_f64("rate_per_sec")
                .filter(|r| *r > 0.0)
                .ok_or(format!("tenant #{i}: 'rate_per_sec' must be > 0"))?;
            let burst = field_f64("burst").unwrap_or(rate_per_sec);
            specs.push(TenantSpec {
                name,
                key,
                rate_per_sec,
                burst,
            });
        }
        if specs.is_empty() {
            return Err(format!("tenants file {} lists no tenants", path.display()));
        }
        Ok(Self::from_specs(specs))
    }

    /// Whether requests need an API key at all.
    pub fn requires_auth(&self) -> bool {
        self.buckets.is_some()
    }

    /// Authenticate `auth` and spend `cost` tokens.
    pub fn check(&self, auth: Option<&str>, cost: f64) -> TenantDecision {
        let Some(buckets) = &self.buckets else {
            return TenantDecision::Ok(None);
        };
        let Some(key) = auth else {
            return TenantDecision::Unauthorized;
        };
        let mut map = buckets.lock().unwrap_or_else(|e| e.into_inner());
        let Some(bucket) = map.get_mut(key) else {
            return TenantDecision::Unauthorized;
        };
        let now = Instant::now();
        // `saturating_duration_since` guards against a clock that reads
        // earlier than `last` (Instant is monotonic per the docs, but
        // platform bugs and suspend/resume have violated that in
        // practice) — a backwards step refills nothing instead of
        // panicking or draining the bucket.
        let dt = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.last = now;
        bucket.tokens = refill(bucket.tokens, bucket.rate, bucket.burst, dt);
        if bucket.tokens >= cost {
            bucket.tokens -= cost;
            return TenantDecision::Ok(Some(bucket.name.clone()));
        }
        let deficit = cost - bucket.tokens;
        let retry_after_ms = ((deficit / bucket.rate) * 1e3).ceil().max(1.0) as u64;
        TenantDecision::Exhausted { retry_after_ms }
    }
}

/// Pure refill step: add `rate * dt` tokens, saturating at `burst`.
/// Defensive about degenerate elapsed times: zero or negative `dt`
/// refills nothing, and an overflowing accumulation (huge `dt`, e.g. a
/// bucket untouched for months on a suspend-happy laptop) clamps to a
/// full bucket instead of propagating a non-finite token count that
/// would poison every later comparison.
fn refill(tokens: f64, rate: f64, burst: f64, dt: f64) -> f64 {
    if dt.is_nan() || dt <= 0.0 {
        return tokens.min(burst);
    }
    let refilled = tokens + rate * dt;
    if refilled.is_finite() {
        refilled.min(burst)
    } else {
        burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, key: &str, rate: f64, burst: f64) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            key: key.into(),
            rate_per_sec: rate,
            burst,
        }
    }

    #[test]
    fn open_book_admits_everyone() {
        let book = TenantBook::unrestricted();
        assert!(!book.requires_auth());
        assert_eq!(book.check(None, 100.0), TenantDecision::Ok(None));
    }

    #[test]
    fn unknown_or_missing_key_is_unauthorized() {
        let book = TenantBook::from_specs(vec![spec("a", "ka", 10.0, 10.0)]);
        assert!(book.requires_auth());
        assert_eq!(book.check(None, 1.0), TenantDecision::Unauthorized);
        assert_eq!(book.check(Some("nope"), 1.0), TenantDecision::Unauthorized);
    }

    #[test]
    fn burst_spends_then_exhausts_with_retry_hint() {
        // Tiny refill rate so the bucket cannot recover mid-test.
        let book = TenantBook::from_specs(vec![spec("a", "ka", 0.001, 5.0)]);
        for _ in 0..5 {
            assert_eq!(
                book.check(Some("ka"), 1.0),
                TenantDecision::Ok(Some("a".into()))
            );
        }
        match book.check(Some("ka"), 1.0) {
            TenantDecision::Exhausted { retry_after_ms } => {
                // ~1 token / 0.001 per sec ≈ 1000 s of refill needed.
                assert!(retry_after_ms >= 1000, "hint {retry_after_ms} too small");
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn batch_cost_spends_bucket_at_once() {
        let book = TenantBook::from_specs(vec![spec("a", "ka", 0.001, 10.0)]);
        assert!(matches!(
            book.check(Some("ka"), 8.0),
            TenantDecision::Ok(_)
        ));
        assert!(matches!(
            book.check(Some("ka"), 8.0),
            TenantDecision::Exhausted { .. }
        ));
    }

    #[test]
    fn control_ops_cost_zero_but_still_authenticate() {
        let book = TenantBook::from_specs(vec![spec("a", "ka", 0.001, 1.0)]);
        assert_eq!(book.check(Some("ka"), 1.0), TenantDecision::Ok(Some("a".into())));
        // Bucket is now empty, but zero-cost checks still pass.
        assert_eq!(book.check(Some("ka"), 0.0), TenantDecision::Ok(Some("a".into())));
        assert_eq!(book.check(Some("xx"), 0.0), TenantDecision::Unauthorized);
    }

    #[test]
    fn refill_is_monotonic_clock_safe() {
        // Zero elapsed time adds nothing.
        assert_eq!(refill(3.0, 10.0, 5.0, 0.0), 3.0);
        // A backwards/negative step (clock anomaly) adds nothing either.
        assert_eq!(refill(3.0, 10.0, 5.0, -4.0), 3.0);
        // NaN elapsed time is treated as "no time passed".
        assert_eq!(refill(3.0, 10.0, 5.0, f64::NAN), 3.0);
        // Normal refill accumulates at `rate`.
        assert_eq!(refill(1.0, 2.0, 100.0, 3.0), 7.0);
        // Accumulation saturates at `burst` ...
        assert_eq!(refill(1.0, 10.0, 5.0, 60.0), 5.0);
        // ... even when the product overflows to infinity.
        assert_eq!(refill(1.0, f64::MAX, 5.0, f64::MAX), 5.0);
        // Tokens above burst (e.g. after a config reload that shrank
        // the bucket) clamp back down rather than persisting.
        assert_eq!(refill(9.0, 1.0, 5.0, 0.0), 5.0);
    }

    #[test]
    fn loads_tenant_file() {
        let dir = std::env::temp_dir().join(format!(
            "sommelier-tenants-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tenants.json");
        std::fs::write(
            &path,
            r#"[{"name": "t1", "key": "k1", "rate_per_sec": 5.0, "burst": 7.0},
               {"name": "t2", "key": "k2", "rate_per_sec": 2.0}]"#,
        )
        .unwrap();
        let book = TenantBook::load(&path).unwrap();
        assert!(book.requires_auth());
        assert_eq!(book.check(Some("k1"), 7.0), TenantDecision::Ok(Some("t1".into())));
        assert_eq!(book.check(Some("k2"), 2.0), TenantDecision::Ok(Some("t2".into())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_malformed_tenant_file() {
        let dir = std::env::temp_dir().join(format!(
            "sommelier-tenants-bad-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tenants.json");
        std::fs::write(&path, r#"[{"name": "t1", "key": "k1", "rate_per_sec": 0}]"#).unwrap();
        let err = TenantBook::load(&path).err().expect("zero rate must fail");
        assert!(err.contains("rate_per_sec"));
        std::fs::write(&path, r#"{"not": "an array"}"#).unwrap();
        let err = TenantBook::load(&path).err().expect("non-array must fail");
        assert!(err.contains("array"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
