//! Wire protocol of the query daemon: line-delimited JSON frames.
//!
//! One request per line, one response line per request, in order. A
//! request is a JSON map:
//!
//! ```json
//! {"id": 7, "op": "query", "auth": "key-123", "text": "SELECT ..."}
//! ```
//!
//! `id` is an opaque client-chosen correlation number echoed back in
//! the response; `auth` is the tenant API key (required only when the
//! daemon was started with `--tenants`). Ops and their payload fields:
//!
//! | op            | fields              |
//! |---------------|---------------------|
//! | `ping`        | —                   |
//! | `query`       | `text`              |
//! | `query_batch` | `texts` (array)     |
//! | `fsck`        | —                   |
//! | `metrics`     | —                   |
//! | `reload`      | —                   |
//! | `shutdown`    | —                   |
//!
//! A response is `{"id": 7, "ok": true, ...}` on success or
//!
//! ```json
//! {"id": 7, "ok": false,
//!  "error": {"code": "overloaded", "message": "...", "retry_after_ms": 12}}
//! ```
//!
//! on failure. `retry_after_ms` appears only on the retryable codes
//! (`overloaded`, `quota_exhausted`); all other codes are terminal for
//! the request. The error taxonomy is [`ErrorCode`].

use serde::Value;

/// Machine-readable failure classes of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON, not a map, or missing fields.
    BadRequest,
    /// The query text parsed but the engine rejected it.
    QueryFailed,
    /// Tenant auth required and the key is missing or unknown.
    Unauthorized,
    /// The tenant's token bucket is empty; retry after the hint.
    QuotaExhausted,
    /// The admission queue is full; retry after the hint.
    Overloaded,
    /// The daemon is draining; the connection will close.
    ShuttingDown,
    /// A server-side invariant failed.
    Internal,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::QueryFailed => "query_failed",
            ErrorCode::Unauthorized => "unauthorized",
            ErrorCode::QuotaExhausted => "quota_exhausted",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed back verbatim.
    pub id: u64,
    /// Tenant API key, if the client sent one.
    pub auth: Option<String>,
    pub op: Op,
}

/// The operation a request frame asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    Ping,
    Query { text: String },
    QueryBatch { texts: Vec<String> },
    Fsck,
    Metrics,
    Reload,
    Shutdown,
}

impl Op {
    /// Quota cost in token-bucket tokens: one per query executed.
    /// Control-plane ops are free (still authenticated).
    pub fn quota_cost(&self) -> f64 {
        match self {
            Op::Query { .. } => 1.0,
            Op::QueryBatch { texts } => texts.len() as f64,
            _ => 0.0,
        }
    }

    /// Whether the op runs queries and therefore passes admission.
    pub fn needs_admission(&self) -> bool {
        matches!(self, Op::Query { .. } | Op::QueryBatch { .. })
    }
}

fn field_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn field_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Parse one request line. `Err` carries the `bad_request` message and
/// the request id when one could be salvaged from the frame (so the
/// error response still correlates).
pub fn parse_request(line: &str) -> Result<Request, (Option<u64>, String)> {
    let value: Value = serde_json::from_str(line)
        .map_err(|e| (None, format!("invalid JSON frame: {e}")))?;
    let id = value.get_field("id").and_then(field_u64);
    let fail = |msg: String| (id, msg);
    if !matches!(value, Value::Map(_)) {
        return Err(fail("request frame must be a JSON object".into()));
    }
    let id = id.ok_or_else(|| (None, "missing or non-integer 'id'".to_string()))?;
    let op_name = value
        .get_field("op")
        .and_then(field_str)
        .ok_or_else(|| fail("missing 'op'".into()))?;
    let auth = value
        .get_field("auth")
        .and_then(field_str)
        .map(str::to_string);
    let op = match op_name {
        "ping" => Op::Ping,
        "query" => {
            let text = value
                .get_field("text")
                .and_then(field_str)
                .ok_or_else(|| fail("op 'query' needs a string 'text'".into()))?;
            Op::Query {
                text: text.to_string(),
            }
        }
        "query_batch" => {
            let texts = match value.get_field("texts") {
                Some(Value::Seq(items)) => items
                    .iter()
                    .map(|v| field_str(v).map(str::to_string))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| fail("'texts' must be an array of strings".into()))?,
                _ => return Err(fail("op 'query_batch' needs an array 'texts'".into())),
            };
            if texts.is_empty() {
                return Err(fail("'texts' must not be empty".into()));
            }
            Op::QueryBatch { texts }
        }
        "fsck" => Op::Fsck,
        "metrics" => Op::Metrics,
        "reload" => Op::Reload,
        "shutdown" => Op::Shutdown,
        other => return Err(fail(format!("unknown op '{other}'"))),
    };
    Ok(Request { id, auth, op })
}

/// Render a success frame: `{"id":.., "ok":true, <fields>...}`.
pub fn ok_frame(id: u64, fields: Vec<(String, Value)>) -> String {
    let mut map = vec![
        ("id".to_string(), Value::UInt(id)),
        ("ok".to_string(), Value::Bool(true)),
    ];
    map.extend(fields);
    serde_json::to_string(&Value::Map(map)).expect("value trees always serialize")
}

/// Render an error frame. `id` 0 is used when the frame was too broken
/// to carry one.
pub fn error_frame(
    id: Option<u64>,
    code: ErrorCode,
    message: &str,
    retry_after_ms: Option<u64>,
) -> String {
    let mut error = vec![
        ("code".to_string(), Value::Str(code.as_str().to_string())),
        ("message".to_string(), Value::Str(message.to_string())),
    ];
    if let Some(ms) = retry_after_ms {
        error.push(("retry_after_ms".to_string(), Value::UInt(ms)));
    }
    let map = vec![
        ("id".to_string(), Value::UInt(id.unwrap_or(0))),
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Map(error)),
    ];
    serde_json::to_string(&Value::Map(map)).expect("value trees always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_with_auth() {
        let r = parse_request(r#"{"id": 3, "op": "query", "auth": "k1", "text": "SELECT x"}"#)
            .unwrap();
        assert_eq!(r.id, 3);
        assert_eq!(r.auth.as_deref(), Some("k1"));
        assert_eq!(
            r.op,
            Op::Query {
                text: "SELECT x".into()
            }
        );
        assert_eq!(r.op.quota_cost(), 1.0);
        assert!(r.op.needs_admission());
    }

    #[test]
    fn parses_batch_and_costs_per_query() {
        let r = parse_request(r#"{"id": 1, "op": "query_batch", "texts": ["a", "b", "c"]}"#)
            .unwrap();
        assert_eq!(r.op.quota_cost(), 3.0);
    }

    #[test]
    fn control_ops_are_free() {
        for op in ["ping", "fsck", "metrics", "reload", "shutdown"] {
            let r = parse_request(&format!(r#"{{"id": 1, "op": "{op}"}}"#)).unwrap();
            assert_eq!(r.op.quota_cost(), 0.0);
            assert!(!r.op.needs_admission());
        }
    }

    #[test]
    fn salvages_id_from_malformed_request() {
        let (id, _) = parse_request(r#"{"id": 9, "op": "query"}"#).unwrap_err();
        assert_eq!(id, Some(9));
        let (id, _) = parse_request("not json").unwrap_err();
        assert_eq!(id, None);
    }

    #[test]
    fn error_frame_carries_retry_hint() {
        let f = error_frame(Some(4), ErrorCode::Overloaded, "queue full", Some(12));
        assert!(f.contains(r#""code": "overloaded""#) || f.contains(r#""code":"overloaded""#));
        assert!(f.contains("retry_after_ms"));
        assert!(f.contains(r#""ok": false"#) || f.contains(r#""ok":false"#));
    }

    #[test]
    fn frames_round_trip_as_json() {
        let f = ok_frame(
            8,
            vec![("epoch".to_string(), Value::UInt(5))],
        );
        let v: Value = serde_json::from_str(&f).unwrap();
        assert_eq!(v.get_field("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get_field("epoch"), Some(&Value::UInt(5)));
    }
}
