//! Blocking client for the daemon's wire protocol.
//!
//! One TCP connection, synchronous request/response: [`Client::call`]
//! writes one frame and reads one response line. The CLI's `client`
//! subcommand and the saturation bench are both built on this.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use serde::Value;

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Echoed correlation id.
    pub id: u64,
    /// `true` for success frames.
    pub ok: bool,
    /// The whole response tree (success fields or the `error` map).
    pub body: Value,
}

impl Reply {
    /// The error code string of a failure reply, if any.
    pub fn error_code(&self) -> Option<&str> {
        match self.body.get_field("error")?.get_field("code")? {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The retry hint of a shed/quota failure, if present. Accepts any
    /// non-negative numeric: the daemon emits an integer, but a JSON
    /// number that merely *looks* fractional (or was re-encoded by an
    /// intermediary as `10.0`) parses as a float, and dropping the hint
    /// on the floor made clients retry immediately — exactly what the
    /// hint exists to prevent. Fractional values round up.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self.body.get_field("error")?.get_field("retry_after_ms")? {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            Value::Float(f) if f.is_finite() && *f >= 0.0 => Some(f.ceil() as u64),
            _ => None,
        }
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    auth: Option<String>,
    next_id: u64,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            auth: None,
            next_id: 1,
        })
    }

    /// Attach a tenant API key sent with every subsequent request.
    pub fn with_auth(mut self, key: impl Into<String>) -> Self {
        self.auth = Some(key.into());
        self
    }

    /// Send one op with extra payload fields; block for the response.
    pub fn call(&mut self, op: &str, fields: Vec<(String, Value)>) -> io::Result<Reply> {
        let id = self.next_id;
        self.next_id += 1;
        let mut map = vec![
            ("id".to_string(), Value::UInt(id)),
            ("op".to_string(), Value::Str(op.to_string())),
        ];
        if let Some(key) = &self.auth {
            map.push(("auth".to_string(), Value::Str(key.clone())));
        }
        map.extend(fields);
        let frame = serde_json::to_string(&Value::Map(map))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.writer.write_all(frame.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        let body: Value = serde_json::from_str(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let ok = matches!(body.get_field("ok"), Some(Value::Bool(true)));
        let reply_id = match body.get_field("id") {
            Some(Value::UInt(n)) => *n,
            Some(Value::Int(n)) if *n >= 0 => *n as u64,
            _ => 0,
        };
        Ok(Reply {
            id: reply_id,
            ok,
            body,
        })
    }

    pub fn ping(&mut self) -> io::Result<Reply> {
        self.call("ping", Vec::new())
    }

    pub fn query(&mut self, text: &str) -> io::Result<Reply> {
        self.call(
            "query",
            vec![("text".to_string(), Value::Str(text.to_string()))],
        )
    }

    pub fn query_batch(&mut self, texts: &[String]) -> io::Result<Reply> {
        self.call(
            "query_batch",
            vec![(
                "texts".to_string(),
                Value::Seq(texts.iter().map(|t| Value::Str(t.clone())).collect()),
            )],
        )
    }

    pub fn fsck(&mut self) -> io::Result<Reply> {
        self.call("fsck", Vec::new())
    }

    pub fn metrics(&mut self) -> io::Result<Reply> {
        self.call("metrics", Vec::new())
    }

    pub fn reload(&mut self) -> io::Result<Reply> {
        self.call("reload", Vec::new())
    }

    pub fn shutdown(&mut self) -> io::Result<Reply> {
        self.call("shutdown", Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::protocol::{error_frame, ErrorCode};

    /// Decode one response line exactly the way [`Client::call`] does.
    fn decode(line: &str) -> Reply {
        let body: Value = serde_json::from_str(line.trim_end()).expect("frame parses");
        let ok = matches!(body.get_field("ok"), Some(Value::Bool(true)));
        let id = match body.get_field("id") {
            Some(Value::UInt(n)) => *n,
            Some(Value::Int(n)) if *n >= 0 => *n as u64,
            _ => 0,
        };
        Reply { id, ok, body }
    }

    #[test]
    fn error_frame_round_trips_through_client_decode() {
        // The daemon-rendered error frame parses back to the same id,
        // code, and retry hint the server put in.
        let frame = error_frame(Some(7), ErrorCode::Overloaded, "queue full", Some(12));
        let reply = decode(&frame);
        assert!(!reply.ok);
        assert_eq!(reply.id, 7);
        assert_eq!(reply.error_code(), Some("overloaded"));
        assert_eq!(reply.retry_after_ms(), Some(12));
        // A frame without the hint yields None, not 0.
        let bare = decode(&error_frame(Some(8), ErrorCode::BadRequest, "nope", None));
        assert_eq!(bare.error_code(), Some("bad_request"));
        assert_eq!(bare.retry_after_ms(), None);
    }

    #[test]
    fn retry_hint_accepts_any_non_negative_numeric() {
        // JSON has one number type; an intermediary that re-encodes the
        // frame may legally turn 10 into 10.0. All spellings must parse.
        for (raw, want) in [
            ("10", Some(10)),
            ("0", Some(0)),
            ("10.0", Some(10)),
            ("9.25", Some(10)), // fractional hints round up
            ("-3", None),
            ("-0.5", None),
            (r#""10""#, None), // strings are not numbers
        ] {
            let frame = format!(
                r#"{{"id": 1, "ok": false, "error": {{"code": "overloaded", "message": "m", "retry_after_ms": {raw}}}}}"#
            );
            let reply = decode(&frame);
            assert_eq!(reply.retry_after_ms(), want, "raw hint {raw}");
        }
    }
}
