//! Blocking client for the daemon's wire protocol.
//!
//! One TCP connection, synchronous request/response: [`Client::call`]
//! writes one frame and reads one response line. The CLI's `client`
//! subcommand and the saturation bench are both built on this.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use serde::Value;

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Echoed correlation id.
    pub id: u64,
    /// `true` for success frames.
    pub ok: bool,
    /// The whole response tree (success fields or the `error` map).
    pub body: Value,
}

impl Reply {
    /// The error code string of a failure reply, if any.
    pub fn error_code(&self) -> Option<&str> {
        match self.body.get_field("error")?.get_field("code")? {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The retry hint of a shed/quota failure, if present.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self.body.get_field("error")?.get_field("retry_after_ms")? {
            Value::UInt(n) => Some(*n),
            Value::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    auth: Option<String>,
    next_id: u64,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            auth: None,
            next_id: 1,
        })
    }

    /// Attach a tenant API key sent with every subsequent request.
    pub fn with_auth(mut self, key: impl Into<String>) -> Self {
        self.auth = Some(key.into());
        self
    }

    /// Send one op with extra payload fields; block for the response.
    pub fn call(&mut self, op: &str, fields: Vec<(String, Value)>) -> io::Result<Reply> {
        let id = self.next_id;
        self.next_id += 1;
        let mut map = vec![
            ("id".to_string(), Value::UInt(id)),
            ("op".to_string(), Value::Str(op.to_string())),
        ];
        if let Some(key) = &self.auth {
            map.push(("auth".to_string(), Value::Str(key.clone())));
        }
        map.extend(fields);
        let frame = serde_json::to_string(&Value::Map(map))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.writer.write_all(frame.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        let body: Value = serde_json::from_str(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let ok = matches!(body.get_field("ok"), Some(Value::Bool(true)));
        let reply_id = match body.get_field("id") {
            Some(Value::UInt(n)) => *n,
            Some(Value::Int(n)) if *n >= 0 => *n as u64,
            _ => 0,
        };
        Ok(Reply {
            id: reply_id,
            ok,
            body,
        })
    }

    pub fn ping(&mut self) -> io::Result<Reply> {
        self.call("ping", Vec::new())
    }

    pub fn query(&mut self, text: &str) -> io::Result<Reply> {
        self.call(
            "query",
            vec![("text".to_string(), Value::Str(text.to_string()))],
        )
    }

    pub fn query_batch(&mut self, texts: &[String]) -> io::Result<Reply> {
        self.call(
            "query_batch",
            vec![(
                "texts".to_string(),
                Value::Seq(texts.iter().map(|t| Value::Str(t.clone())).collect()),
            )],
        )
    }

    pub fn fsck(&mut self) -> io::Result<Reply> {
        self.call("fsck", Vec::new())
    }

    pub fn metrics(&mut self) -> io::Result<Reply> {
        self.call("metrics", Vec::new())
    }

    pub fn reload(&mut self) -> io::Result<Reply> {
        self.call("reload", Vec::new())
    }

    pub fn shutdown(&mut self) -> io::Result<Reply> {
        self.call("shutdown", Vec::new())
    }
}
