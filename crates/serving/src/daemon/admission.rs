//! Bounded admission control for the query daemon.
//!
//! The daemon is thread-per-connection, but query *execution* is gated
//! by a fixed number of permits (`workers`) plus a bounded wait queue
//! (`queue_depth`). A request that finds all permits busy waits in the
//! queue; a request that finds the queue full too is **shed
//! immediately** with a typed `overloaded` error carrying a
//! `retry_after_ms` hint — the daemon never buffers unbounded work and
//! never blocks a client indefinitely.
//!
//! The retry hint comes from an EWMA of recent service times: a shed
//! client is told to come back roughly when the current backlog will
//! have drained through the permit pool.

use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// EWMA smoothing factor for the service-time estimate.
const EWMA_ALPHA: f64 = 0.2;
/// Retry hint when nothing has completed yet (no EWMA signal).
const DEFAULT_RETRY_MS: u64 = 10;
/// Floor for a computed retry hint. A shed reply with `retry_after_ms:
/// 0` reads as "retry immediately" and turns a cold-start burst into a
/// busy-loop against the gate; every hint we hand out is at least this.
const MIN_RETRY_MS: u64 = 1;

#[derive(Debug)]
struct GateState {
    /// Requests currently holding an execution permit.
    executing: usize,
    /// Requests parked in the bounded wait queue.
    waiting: usize,
    /// Smoothed service time of completed requests, milliseconds.
    ewma_ms: f64,
    /// Total requests admitted (including after a queue wait).
    accepted: u64,
    /// Total requests shed with `overloaded`.
    shed: u64,
    /// High-water mark of `executing + waiting`.
    max_inflight: usize,
    /// Set when the daemon drains; waiters bail out.
    closed: bool,
}

/// Counters a metrics scrape reads off the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    pub accepted: u64,
    pub shed: u64,
    /// High-water mark of concurrently admitted-or-queued requests.
    /// Bounded by `workers + queue_depth` — the bench asserts this to
    /// prove the queue never grew past its depth.
    pub max_inflight: usize,
}

/// Outcome of [`AdmissionGate::admit`].
pub enum Decision<'a> {
    /// Run now; drop the permit (or call [`Permit::complete`]) when done.
    Admitted(Permit<'a>),
    /// Queue full — tell the client to retry after the hint.
    Shed { retry_after_ms: u64 },
    /// The daemon is shutting down.
    Closed,
}

/// Bounded permit gate. All state sits behind one mutex; the hot path
/// takes it twice per request (admit + release), which is fine — the
/// expensive part, query execution, runs outside the lock.
pub struct AdmissionGate {
    workers: usize,
    queue_depth: usize,
    state: Mutex<GateState>,
    released: Condvar,
}

impl AdmissionGate {
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        AdmissionGate {
            workers: workers.max(1),
            queue_depth,
            state: Mutex::new(GateState {
                executing: 0,
                waiting: 0,
                ewma_ms: 0.0,
                accepted: 0,
                shed: 0,
                max_inflight: 0,
                closed: false,
            }),
            released: Condvar::new(),
        }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Try to take an execution permit, waiting in the bounded queue if
    /// the pool is busy. Returns [`Decision::Shed`] without blocking
    /// when the queue is already full.
    pub fn admit(&self) -> Decision<'_> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.closed {
            return Decision::Closed;
        }
        if s.executing < self.workers {
            s.executing += 1;
            s.accepted += 1;
            s.max_inflight = s.max_inflight.max(s.executing + s.waiting);
            return Decision::Admitted(self.permit());
        }
        if s.waiting >= self.queue_depth {
            s.shed += 1;
            // Expected wait: the whole backlog ahead of a hypothetical
            // new arrival, drained through `workers` permits.
            let backlog = (s.waiting + 1) as f64 / self.workers as f64;
            let est = s.ewma_ms * backlog;
            // Cold start: before any request has completed the EWMA is
            // still 0.0 and `est` carries no signal — fall back to the
            // default hint rather than telling the client "0ms". Any
            // computed hint is likewise clamped to a nonzero floor.
            let retry_after_ms = if est.is_finite() && est > 0.0 {
                (est.ceil() as u64).max(MIN_RETRY_MS)
            } else {
                DEFAULT_RETRY_MS
            };
            return Decision::Shed { retry_after_ms };
        }
        s.waiting += 1;
        s.max_inflight = s.max_inflight.max(s.executing + s.waiting);
        while s.executing >= self.workers && !s.closed {
            s = self
                .released
                .wait(s)
                .unwrap_or_else(|e| e.into_inner());
        }
        s.waiting -= 1;
        if s.closed {
            return Decision::Closed;
        }
        s.executing += 1;
        s.accepted += 1;
        Decision::Admitted(self.permit())
    }

    fn permit(&self) -> Permit<'_> {
        Permit {
            gate: self,
            start: Instant::now(),
            done: false,
        }
    }

    /// Release waiters and refuse all future admissions.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.closed = true;
        drop(s);
        self.released.notify_all();
    }

    pub fn stats(&self) -> AdmissionStats {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        AdmissionStats {
            accepted: s.accepted,
            shed: s.shed,
            max_inflight: s.max_inflight,
        }
    }

    fn release(&self, service_ms: f64) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.executing -= 1;
        if service_ms.is_finite() && service_ms >= 0.0 {
            s.ewma_ms = if s.ewma_ms == 0.0 {
                service_ms
            } else {
                s.ewma_ms * (1.0 - EWMA_ALPHA) + service_ms * EWMA_ALPHA
            };
        }
        drop(s);
        self.released.notify_one();
    }
}

/// An execution permit. Releasing (drop or [`Permit::complete`]) frees
/// the slot and feeds the observed service time into the EWMA.
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
    start: Instant,
    done: bool,
}

impl Permit<'_> {
    /// Explicit release; equivalent to dropping.
    pub fn complete(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if !self.done {
            self.done = true;
            self.gate
                .release(self.start.elapsed().as_secs_f64() * 1e3);
        }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};

    #[test]
    fn admits_up_to_workers_without_queueing() {
        let gate = AdmissionGate::new(2, 4);
        let a = gate.admit();
        let b = gate.admit();
        assert!(matches!(a, Decision::Admitted(_)));
        assert!(matches!(b, Decision::Admitted(_)));
        let stats = gate.stats();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn sheds_with_retry_hint_when_queue_full() {
        let gate = Arc::new(AdmissionGate::new(1, 0));
        let permit = match gate.admit() {
            Decision::Admitted(p) => p,
            _ => panic!("first admit must succeed"),
        };
        // queue_depth 0: a second request sheds immediately.
        match gate.admit() {
            Decision::Shed { retry_after_ms } => assert!(retry_after_ms > 0),
            _ => panic!("expected shed"),
        }
        permit.complete();
        assert!(matches!(gate.admit(), Decision::Admitted(_)));
        let stats = gate.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.accepted, 2);
        assert!(stats.max_inflight <= 1);
    }

    #[test]
    fn cold_start_shed_hint_is_never_zero() {
        // No request has ever completed, so the EWMA is still 0.0 and
        // the backlog estimate carries no signal. The shed hint must
        // still be a nonzero backoff, not "retry immediately".
        let gate = AdmissionGate::new(1, 0);
        let permit = match gate.admit() {
            Decision::Admitted(p) => p,
            _ => panic!("first admit must succeed"),
        };
        for _ in 0..3 {
            match gate.admit() {
                Decision::Shed { retry_after_ms } => {
                    assert!(retry_after_ms >= MIN_RETRY_MS);
                    assert_eq!(retry_after_ms, DEFAULT_RETRY_MS);
                }
                _ => panic!("expected cold-start shed"),
            }
        }
        drop(permit);
    }

    #[test]
    fn queued_request_runs_after_release() {
        let gate = Arc::new(AdmissionGate::new(1, 1));
        let first = match gate.admit() {
            Decision::Admitted(p) => p,
            _ => panic!(),
        };
        let entered = Arc::new(Barrier::new(2));
        let ran = Arc::new(AtomicUsize::new(0));
        let waiter = {
            let gate = Arc::clone(&gate);
            let entered = Arc::clone(&entered);
            let ran = Arc::clone(&ran);
            std::thread::spawn(move || {
                entered.wait();
                match gate.admit() {
                    Decision::Admitted(p) => {
                        ran.fetch_add(1, Ordering::SeqCst);
                        p.complete();
                    }
                    _ => panic!("queued request must eventually run"),
                }
            })
        };
        entered.wait();
        // Give the waiter time to park in the queue, then release.
        std::thread::sleep(std::time::Duration::from_millis(20));
        first.complete();
        waiter.join().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        let stats = gate.stats();
        assert_eq!(stats.accepted, 2);
        assert!(stats.max_inflight <= 1 + 1, "inflight bounded by workers+depth");
    }

    #[test]
    fn inflight_never_exceeds_capacity_under_burst() {
        let gate = Arc::new(AdmissionGate::new(2, 3));
        let start = Arc::new(Barrier::new(16));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    for _ in 0..50 {
                        match gate.admit() {
                            Decision::Admitted(p) => {
                                std::thread::sleep(std::time::Duration::from_micros(200));
                                p.complete();
                            }
                            Decision::Shed { retry_after_ms } => {
                                assert!(retry_after_ms > 0);
                                std::thread::yield_now();
                            }
                            Decision::Closed => panic!("gate not closed"),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = gate.stats();
        assert!(
            stats.max_inflight <= 2 + 3,
            "max_inflight {} exceeded workers+queue_depth",
            stats.max_inflight
        );
        assert!(stats.accepted > 0);
    }

    #[test]
    fn close_releases_waiters_and_refuses_admission() {
        let gate = Arc::new(AdmissionGate::new(1, 4));
        let held = match gate.admit() {
            Decision::Admitted(p) => p,
            _ => panic!(),
        };
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || matches!(gate.admit(), Decision::Closed))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        gate.close();
        assert!(waiter.join().unwrap(), "waiter must see Closed");
        drop(held);
        assert!(matches!(gate.admit(), Decision::Closed));
    }
}
