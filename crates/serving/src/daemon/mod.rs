//! The `sommelier serve` daemon: a long-lived multi-tenant query
//! server over the RCU snapshot path.
//!
//! One process owns ONE engine. The mutator side
//! ([`sommelier_query::Sommelier`]) sits behind a mutex and is touched
//! only by `reload`; every connection gets its own cheap
//! [`SommelierReader`] clone, which reads the current published
//! snapshot wait-free — queries keep flowing while a reload holds the
//! engine lock, and a `query_batch` pins one snapshot epoch end to end
//! even when the index republishes mid-batch.
//!
//! Threading is deliberately boring: one accept thread, one thread per
//! connection, and a bounded [`admission::AdmissionGate`] in front of
//! query execution so concurrency is governed by `--workers` +
//! `--queue-depth` rather than by however many sockets are open.
//! Overload is a *typed response* (`overloaded` + `retry_after_ms`),
//! never a hang and never an unbounded buffer.
//!
//! Per-connection latency is recorded into a thread-private
//! [`latency::LocalRecorder`] and merged into the global
//! `serve.request_ms` histogram every [`FLUSH_EVERY`] requests — the
//! hot path never takes a metrics lock.
//!
//! Shutdown (the `shutdown` op or [`DaemonHandle::shutdown`]) is
//! graceful by construction: the listener is woken and closed, each
//! connection's *read* side is shut down so in-flight responses finish
//! writing before the handler sees EOF, and queued admissions drain
//! with a `shutting_down` error. No response is ever torn mid-frame.

pub mod admission;
pub mod client;
pub mod protocol;
pub mod tenants;

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use serde::Value;
use sommelier_index::CandidateKind;
use sommelier_query::{QueryResult, Sommelier, SommelierReader};
use sommelier_runtime::metrics::{counters, latency};

use admission::{AdmissionGate, Decision};
use protocol::{error_frame, ok_frame, ErrorCode, Op, Request};
use tenants::{TenantBook, TenantDecision};

/// Requests between local-histogram merges on a connection.
const FLUSH_EVERY: u64 = 64;

/// The merged request-latency histogram's registry name.
pub const REQUEST_HISTOGRAM: &str = "serve.request_ms";

/// Startup knobs of [`Daemon::serve`]; mirrors the CLI flags.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address; port 0 picks an ephemeral port (tests/bench).
    pub addr: String,
    /// Concurrent query-execution permits.
    pub workers: usize,
    /// Bounded admission queue depth; arrivals past it are shed.
    pub queue_depth: usize,
    /// Optional tenant file (see [`tenants`]); `None` = open access.
    pub tenants: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 32,
            tenants: None,
        }
    }
}

struct Shared {
    engine: Mutex<Sommelier>,
    reader: SommelierReader,
    gate: AdmissionGate,
    tenants: TenantBook,
    stopping: AtomicBool,
    addr: SocketAddr,
    /// Stream clones of live connections, for read-side shutdown.
    conns: Mutex<Vec<TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    active: AtomicU64,
    hist: Arc<latency::Histogram>,
}

impl Shared {
    fn begin_shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Release queued admissions so parked requests answer
        // `shutting_down` instead of waiting forever.
        self.gate.close();
        // Wake the accept loop: it re-checks `stopping` per accept.
        let _ = TcpStream::connect(self.addr);
        // Close only the READ side of every live connection: a handler
        // mid-write finishes its response, then its next read sees EOF
        // and the connection closes cleanly — no torn frames.
        let conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        for c in conns.iter() {
            let _ = c.shutdown(std::net::Shutdown::Read);
        }
    }
}

/// Handle to a running daemon.
pub struct DaemonHandle {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Ask the daemon to stop; returns immediately. Pair with
    /// [`DaemonHandle::wait`].
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Run `f` with the engine lock held — the mutator-side entry
    /// point for embedders (the saturation bench storms `apply`
    /// through this while connections keep reading the old snapshot).
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut Sommelier) -> R) -> R {
        let mut engine = self
            .shared
            .engine
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        f(&mut engine)
    }

    /// Block until the accept loop and every connection thread exit.
    pub fn wait(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        loop {
            let handles: Vec<_> = {
                let mut v = self
                    .shared
                    .conn_threads
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *v)
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

/// The daemon entry point.
pub struct Daemon;

impl Daemon {
    /// Bind, spawn the accept loop, and return. The engine is consumed:
    /// the daemon is its sole mutator from here on.
    pub fn serve(engine: Sommelier, config: DaemonConfig) -> Result<DaemonHandle, String> {
        let tenants = match &config.tenants {
            Some(path) => TenantBook::load(path)?,
            None => TenantBook::unrestricted(),
        };
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve listen address: {e}"))?;
        let reader = engine.reader().clone();
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            reader,
            gate: AdmissionGate::new(config.workers, config.queue_depth),
            tenants,
            stopping: AtomicBool::new(false),
            addr,
            conns: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
            active: AtomicU64::new(0),
            hist: latency::histogram(REQUEST_HISTOGRAM),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(DaemonHandle {
            shared,
            accept_thread: Some(accept_thread),
        })
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || handle_connection(conn_shared, stream));
        shared
            .conn_threads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }
}

fn handle_connection(shared: Arc<Shared>, stream: TcpStream) {
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Register for read-side shutdown; remember the peer to unregister.
    let peer = stream.peer_addr().ok();
    if let Ok(clone) = stream.try_clone() {
        shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(clone);
    }
    let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
    counters::set("serve.active_connections", active);
    counters::add("serve.connections", 1);

    let reader = shared.reader.clone();
    let mut local = latency::LocalRecorder::new();
    let mut writer = stream;
    let mut lines = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match lines.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let started = std::time::Instant::now();
        let (response, stop_after) = serve_line(&shared, &reader, trimmed);
        local.record(started.elapsed().as_secs_f64() * 1e3);
        counters::add("serve.requests", 1);
        if local.len() >= FLUSH_EVERY {
            local.flush_into(&shared.hist);
        }
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
        {
            break;
        }
        if stop_after {
            shared.begin_shutdown();
        }
    }
    local.flush_into(&shared.hist);
    {
        let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        conns.retain(|c| c.peer_addr().ok() != peer || peer.is_none());
    }
    let active = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
    counters::set("serve.active_connections", active);
}

/// Dispatch one request line to one response frame. The bool asks the
/// caller to begin shutdown *after* writing the response.
fn serve_line(shared: &Shared, reader: &SommelierReader, line: &str) -> (String, bool) {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err((id, message)) => {
            return (
                error_frame(id, ErrorCode::BadRequest, &message, None),
                false,
            )
        }
    };
    if shared.stopping.load(Ordering::SeqCst) {
        return (
            error_frame(
                Some(request.id),
                ErrorCode::ShuttingDown,
                "daemon is draining",
                None,
            ),
            false,
        );
    }
    // Tenant gate first: auth applies to every op, quota to queries.
    match shared
        .tenants
        .check(request.auth.as_deref(), request.op.quota_cost())
    {
        TenantDecision::Ok(_) => {}
        TenantDecision::Unauthorized => {
            counters::add("serve.unauthorized", 1);
            return (
                error_frame(
                    Some(request.id),
                    ErrorCode::Unauthorized,
                    "missing or unknown tenant key",
                    None,
                ),
                false,
            );
        }
        TenantDecision::Exhausted { retry_after_ms } => {
            counters::add("serve.quota_exhausted", 1);
            return (
                error_frame(
                    Some(request.id),
                    ErrorCode::QuotaExhausted,
                    "tenant quota exhausted",
                    Some(retry_after_ms),
                ),
                false,
            );
        }
    }
    if request.op.needs_admission() {
        match shared.gate.admit() {
            Decision::Admitted(permit) => {
                let response = run_query_op(&request, reader);
                permit.complete();
                (response, false)
            }
            Decision::Shed { retry_after_ms } => (
                error_frame(
                    Some(request.id),
                    ErrorCode::Overloaded,
                    "admission queue full",
                    Some(retry_after_ms),
                ),
                false,
            ),
            Decision::Closed => (
                error_frame(
                    Some(request.id),
                    ErrorCode::ShuttingDown,
                    "daemon is draining",
                    None,
                ),
                false,
            ),
        }
    } else {
        run_control_op(shared, &request, reader)
    }
}

fn kind_value(kind: &CandidateKind) -> Value {
    match kind {
        CandidateKind::Whole => Value::Str("whole".to_string()),
        CandidateKind::Transitive { via } => Value::Map(vec![
            ("transitive".to_string(), Value::Bool(true)),
            ("via".to_string(), Value::Str(via.clone())),
        ]),
        CandidateKind::Synthesized { donor } => Value::Map(vec![
            ("synthesized".to_string(), Value::Bool(true)),
            ("donor".to_string(), Value::Str(donor.clone())),
        ]),
    }
}

fn result_value(r: &QueryResult) -> Value {
    Value::Map(vec![
        ("key".to_string(), Value::Str(r.key.clone())),
        ("score".to_string(), Value::Float(r.score)),
        ("diff_bound".to_string(), Value::Float(r.diff_bound)),
        ("memory_mb".to_string(), Value::Float(r.profile.memory_mb)),
        ("gflops".to_string(), Value::Float(r.profile.gflops)),
        ("latency_ms".to_string(), Value::Float(r.profile.latency_ms)),
        ("kind".to_string(), kind_value(&r.kind)),
    ])
}

fn item_value(item: &sommelier_query::BatchQueryItem) -> Value {
    let mut fields = vec![
        ("epoch".to_string(), Value::UInt(item.epoch)),
        ("latency_ms".to_string(), Value::Float(item.latency_ms)),
    ];
    match &item.results {
        Ok(results) => fields.push((
            "results".to_string(),
            Value::Seq(results.iter().map(result_value).collect()),
        )),
        Err(e) => fields.push(("error".to_string(), Value::Str(e.to_string()))),
    }
    Value::Map(fields)
}

fn run_query_op(request: &Request, reader: &SommelierReader) -> String {
    match &request.op {
        Op::Query { text } => {
            // Through the batch path so the answer carries its pinned
            // epoch and measured latency like every other query.
            let items = reader.query_batch(std::slice::from_ref(text));
            let item = &items[0];
            match &item.results {
                Ok(results) => ok_frame(
                    request.id,
                    vec![
                        ("epoch".to_string(), Value::UInt(item.epoch)),
                        ("latency_ms".to_string(), Value::Float(item.latency_ms)),
                        (
                            "results".to_string(),
                            Value::Seq(results.iter().map(result_value).collect()),
                        ),
                    ],
                ),
                Err(e) => error_frame(
                    Some(request.id),
                    ErrorCode::QueryFailed,
                    &e.to_string(),
                    None,
                ),
            }
        }
        Op::QueryBatch { texts } => {
            let items = reader.query_batch(texts);
            // One snapshot is pinned for the whole batch, so every
            // item reports the same epoch; the top-level `epoch`
            // restates it for clients that only look there.
            let epoch = items.first().map(|i| i.epoch).unwrap_or(0);
            ok_frame(
                request.id,
                vec![
                    ("epoch".to_string(), Value::UInt(epoch)),
                    (
                        "items".to_string(),
                        Value::Seq(items.iter().map(item_value).collect()),
                    ),
                ],
            )
        }
        _ => error_frame(
            Some(request.id),
            ErrorCode::Internal,
            "non-query op routed through admission",
            None,
        ),
    }
}

fn run_control_op(shared: &Shared, request: &Request, reader: &SommelierReader) -> (String, bool) {
    match &request.op {
        Op::Ping => (
            ok_frame(
                request.id,
                vec![
                    ("pong".to_string(), Value::Bool(true)),
                    ("epoch".to_string(), Value::UInt(reader.epoch())),
                ],
            ),
            false,
        ),
        Op::Fsck => (fsck_frame(request.id, reader), false),
        Op::Metrics => (metrics_frame(shared, request.id, reader), false),
        Op::Reload => {
            // The engine lock serializes mutators; readers keep
            // serving the previous snapshot until the republish.
            let mut engine = shared.engine.lock().unwrap_or_else(|e| e.into_inner());
            match engine.index_existing() {
                Ok(count) => (
                    ok_frame(
                        request.id,
                        vec![
                            ("reindexed".to_string(), Value::UInt(count as u64)),
                            ("epoch".to_string(), Value::UInt(engine.epoch())),
                        ],
                    ),
                    false,
                ),
                Err(e) => (
                    error_frame(
                        Some(request.id),
                        ErrorCode::Internal,
                        &e.to_string(),
                        None,
                    ),
                    false,
                ),
            }
        }
        Op::Shutdown => (
            ok_frame(
                request.id,
                vec![("stopping".to_string(), Value::Bool(true))],
            ),
            true,
        ),
        _ => (
            error_frame(
                Some(request.id),
                ErrorCode::Internal,
                "query op routed around admission",
                None,
            ),
            false,
        ),
    }
}

/// Engine-level consistency check over the pinned snapshot: the
/// semantic and resource indices must agree on the key set, and every
/// default reference must resolve.
fn fsck_frame(id: u64, reader: &SommelierReader) -> String {
    let snapshot = reader.snapshot();
    let mut issues = Vec::new();
    for key in snapshot.semantic.keys() {
        if snapshot.resource.profile_of(key).is_none() {
            issues.push(format!("key '{key}' indexed semantically but has no profile"));
        }
    }
    if snapshot.semantic.len() != snapshot.resource.len() {
        issues.push(format!(
            "index cardinality mismatch: {} semantic vs {} resource entries",
            snapshot.semantic.len(),
            snapshot.resource.len()
        ));
    }
    for (task, key) in &snapshot.default_refs {
        if !snapshot.semantic.contains(key) {
            issues.push(format!(
                "default reference '{key}' for task {task:?} is not indexed"
            ));
        }
    }
    ok_frame(
        id,
        vec![
            ("epoch".to_string(), Value::UInt(snapshot.epoch)),
            (
                "models".to_string(),
                Value::UInt(snapshot.semantic.len() as u64),
            ),
            ("consistent".to_string(), Value::Bool(issues.is_empty())),
            (
                "issues".to_string(),
                Value::Seq(issues.into_iter().map(Value::Str).collect()),
            ),
        ],
    )
}

fn metrics_frame(shared: &Shared, id: u64, reader: &SommelierReader) -> String {
    // Publish the gate's stats as counters so one scrape sees both the
    // request counters and admission outcomes under one namespace.
    let stats = shared.gate.stats();
    counters::set("serve.accepted", stats.accepted);
    counters::set("serve.shed", stats.shed);
    counters::set("serve.max_inflight", stats.max_inflight as u64);
    counters::set(
        "serve.active_connections",
        shared.active.load(Ordering::SeqCst),
    );
    let counter_map = Value::Map(
        counters::snapshot()
            .into_iter()
            .map(|(k, v)| (k, Value::UInt(v)))
            .collect(),
    );
    let quantiles_value = |q: latency::LatencyQuantiles| {
        Value::Map(vec![
            ("count".to_string(), Value::UInt(q.count as u64)),
            ("p50_ms".to_string(), Value::Float(q.p50)),
            ("p90_ms".to_string(), Value::Float(q.p90)),
            ("p99_ms".to_string(), Value::Float(q.p99)),
        ])
    };
    let latency_map = Value::Map(
        latency::histogram_snapshot()
            .into_iter()
            .map(|(name, q)| (name, quantiles_value(q)))
            .collect(),
    );
    ok_frame(
        id,
        vec![
            ("epoch".to_string(), Value::UInt(reader.epoch())),
            ("counters".to_string(), counter_map),
            ("latency".to_string(), latency_map),
        ],
    )
}
