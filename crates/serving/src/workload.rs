//! Arrival-process generation.
//!
//! The serving experiment stresses the system with fluctuating load
//! ("the runtime execution environment … fluctuate\[s\]", paper Section 2.1).
//! A [`Workload`] is a sequence of phases, each a Poisson arrival process
//! at a phase-specific rate; the canonical shape is light → burst → light,
//! which produces the queueing tail that model switching then cuts.

use serde::{Deserialize, Serialize};
use sommelier_tensor::Prng;

/// One constant-rate phase of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPhase {
    /// Phase duration in seconds.
    pub duration_s: f64,
    /// Mean arrival rate in requests/second.
    pub rate_per_s: f64,
}

/// A multi-phase Poisson workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Phases executed back to back.
    pub phases: Vec<WorkloadPhase>,
}

impl Workload {
    /// A steady workload: one phase.
    pub fn steady(duration_s: f64, rate_per_s: f64) -> Workload {
        Workload {
            phases: vec![WorkloadPhase {
                duration_s,
                rate_per_s,
            }],
        }
    }

    /// The canonical bursty shape: `base` rate, a burst at `burst` rate in
    /// the middle third, then back to `base`.
    pub fn bursty(total_s: f64, base_rate: f64, burst_rate: f64) -> Workload {
        let third = total_s / 3.0;
        Workload {
            phases: vec![
                WorkloadPhase {
                    duration_s: third,
                    rate_per_s: base_rate,
                },
                WorkloadPhase {
                    duration_s: third,
                    rate_per_s: burst_rate,
                },
                WorkloadPhase {
                    duration_s: third,
                    rate_per_s: base_rate,
                },
            ],
        }
    }

    /// Total duration.
    pub fn duration_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// Generate sorted arrival timestamps for the whole workload.
    pub fn arrivals(&self, rng: &mut Prng) -> Vec<f64> {
        let mut out = Vec::new();
        let mut offset = 0.0;
        for phase in &self.phases {
            if phase.rate_per_s > 0.0 {
                let mut t = offset + rng.exponential(phase.rate_per_s);
                while t < offset + phase.duration_s {
                    out.push(t);
                    t += rng.exponential(phase.rate_per_s);
                }
            }
            offset += phase.duration_s;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_rate_produces_expected_count() {
        let w = Workload::steady(100.0, 10.0);
        let mut rng = Prng::seed_from_u64(1);
        let arrivals = w.arrivals(&mut rng);
        let n = arrivals.len() as f64;
        assert!((n - 1000.0).abs() < 150.0, "n = {n}");
    }

    #[test]
    fn arrivals_are_sorted_and_within_duration() {
        let w = Workload::bursty(90.0, 5.0, 50.0);
        let mut rng = Prng::seed_from_u64(2);
        let arrivals = w.arrivals(&mut rng);
        assert!(arrivals.windows(2).all(|p| p[0] <= p[1]));
        assert!(arrivals.iter().all(|&t| (0.0..90.0).contains(&t)));
    }

    #[test]
    fn burst_phase_is_denser() {
        let w = Workload::bursty(90.0, 5.0, 50.0);
        let mut rng = Prng::seed_from_u64(3);
        let arrivals = w.arrivals(&mut rng);
        let in_burst = arrivals
            .iter()
            .filter(|&&t| (30.0..60.0).contains(&t))
            .count();
        let in_base = arrivals.iter().filter(|&&t| t < 30.0).count();
        assert!(in_burst > 4 * in_base, "burst={in_burst} base={in_base}");
    }

    #[test]
    fn zero_rate_phase_is_silent() {
        let w = Workload::steady(10.0, 0.0);
        let mut rng = Prng::seed_from_u64(4);
        assert!(w.arrivals(&mut rng).is_empty());
    }

    #[test]
    fn duration_sums_phases() {
        assert!((Workload::bursty(90.0, 1.0, 2.0).duration_s() - 90.0).abs() < 1e-9);
    }
}
