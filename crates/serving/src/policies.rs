//! Model-selection policies.
//!
//! The baseline developer "manually specifies a fixed model throughout the
//! inference run"; with Sommelier the server formulates a query combining
//! run-time conditions and the currently served model, and switches to an
//! equivalent model that better matches resource availability (paper
//! Section 7.1). The policy abstraction captures exactly that decision:
//! given the current queue pressure, pick one of the functionally
//! equivalent variants Sommelier returned.

use serde::{Deserialize, Serialize};

/// A deployable model variant as the serving layer sees it: the outcome of
/// a Sommelier query (name, speed, quality), detached from graph internals.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelChoice {
    /// Model key in the repository.
    pub name: String,
    /// Service time per request in seconds on the serving hardware.
    pub service_time_s: f64,
    /// Measured QoR (e.g. top-1 accuracy) of the variant.
    pub accuracy: f64,
}

/// A model-selection policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Always serve the variant at `index` (manual, fixed selection).
    Fixed { index: usize },
    /// Sommelier-driven automatic switching: serve the most accurate
    /// variant whose expected completion (backlog + service time) stays
    /// within `sla_s`; fall back to the fastest variant under overload.
    Switching { sla_s: f64 },
    /// Switching with a quality floor: like [`Policy::Switching`], but
    /// variants below `min_accuracy` are only used when *no* variant at
    /// or above the floor exists — the "desirable accuracy" side of the
    /// paper's run-time query (Figure 6 asks for a model equivalent 95%
    /// of the time *and* cheaper).
    SwitchingFloor { sla_s: f64, min_accuracy: f64 },
}

impl Policy {
    /// Choose a variant index given the current backlog (estimated queue
    /// delay in seconds). `variants` must be non-empty.
    pub fn choose(&self, backlog_s: f64, variants: &[ModelChoice]) -> usize {
        assert!(!variants.is_empty(), "no variants to choose from");
        match self {
            Policy::Fixed { index } => (*index).min(variants.len() - 1),
            Policy::SwitchingFloor {
                sla_s,
                min_accuracy,
            } => {
                let eligible: Vec<usize> = (0..variants.len())
                    .filter(|&i| variants[i].accuracy >= *min_accuracy)
                    .collect();
                if eligible.is_empty() {
                    return Policy::Switching { sla_s: *sla_s }.choose(backlog_s, variants);
                }
                let budget = sla_s - backlog_s;
                let mut best: Option<usize> = None;
                for &i in &eligible {
                    if variants[i].service_time_s <= budget {
                        let better = match best {
                            None => true,
                            Some(b) => variants[i].accuracy > variants[b].accuracy,
                        };
                        if better {
                            best = Some(i);
                        }
                    }
                }
                best.unwrap_or_else(|| {
                    // Overloaded: fastest variant that still meets the
                    // floor.
                    eligible
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            variants[a]
                                .service_time_s
                                .partial_cmp(&variants[b].service_time_s)
                                .expect("finite")
                        })
                        .expect("eligible is non-empty")
                })
            }
            Policy::Switching { sla_s } => {
                let budget = sla_s - backlog_s;
                // Most accurate variant that fits the remaining budget.
                let mut best: Option<usize> = None;
                for (i, v) in variants.iter().enumerate() {
                    if v.service_time_s <= budget {
                        let better = match best {
                            None => true,
                            Some(b) => v.accuracy > variants[b].accuracy,
                        };
                        if better {
                            best = Some(i);
                        }
                    }
                }
                best.unwrap_or_else(|| {
                    // Overloaded: serve the fastest variant to drain.
                    variants
                        .iter()
                        .enumerate()
                        .min_by(|a, b| {
                            a.1.service_time_s
                                .partial_cmp(&b.1.service_time_s)
                                .expect("finite")
                        })
                        .map(|(i, _)| i)
                        .expect("non-empty")
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn variants() -> Vec<ModelChoice> {
        vec![
            ModelChoice {
                name: "tiny".into(),
                service_time_s: 0.01,
                accuracy: 0.70,
            },
            ModelChoice {
                name: "mid".into(),
                service_time_s: 0.05,
                accuracy: 0.82,
            },
            ModelChoice {
                name: "big".into(),
                service_time_s: 0.20,
                accuracy: 0.90,
            },
        ]
    }

    #[test]
    fn fixed_policy_ignores_backlog() {
        let p = Policy::Fixed { index: 2 };
        assert_eq!(p.choose(0.0, &variants()), 2);
        assert_eq!(p.choose(100.0, &variants()), 2);
    }

    #[test]
    fn fixed_index_is_clamped() {
        let p = Policy::Fixed { index: 9 };
        assert_eq!(p.choose(0.0, &variants()), 2);
    }

    #[test]
    fn switching_serves_big_when_idle() {
        let p = Policy::Switching { sla_s: 0.5 };
        assert_eq!(p.choose(0.0, &variants()), 2);
    }

    #[test]
    fn switching_downshifts_under_backlog() {
        let p = Policy::Switching { sla_s: 0.5 };
        // backlog 0.42 leaves 0.08 → mid fits, big doesn't.
        assert_eq!(p.choose(0.42, &variants()), 1);
        // backlog 0.48 leaves 0.02 → only tiny fits.
        assert_eq!(p.choose(0.48, &variants()), 0);
    }

    #[test]
    fn switching_falls_back_to_fastest_under_overload() {
        let p = Policy::Switching { sla_s: 0.5 };
        assert_eq!(p.choose(10.0, &variants()), 0);
    }

    #[test]
    fn floor_policy_excludes_low_quality_variants() {
        let p = Policy::SwitchingFloor {
            sla_s: 0.5,
            min_accuracy: 0.80,
        };
        // Even under total overload, the 0.70-accuracy tiny variant is
        // skipped; the fastest floor-satisfying variant (mid) serves.
        assert_eq!(p.choose(10.0, &variants()), 1);
        // When idle, the big model serves as usual.
        assert_eq!(p.choose(0.0, &variants()), 2);
    }

    #[test]
    fn floor_policy_degrades_gracefully_when_floor_unreachable() {
        let p = Policy::SwitchingFloor {
            sla_s: 0.5,
            min_accuracy: 0.99,
        };
        // Nothing meets the floor → behaves like plain switching.
        assert_eq!(p.choose(0.0, &variants()), 2);
        assert_eq!(p.choose(10.0, &variants()), 0);
    }

    #[test]
    #[should_panic(expected = "no variants")]
    fn empty_variants_panics() {
        Policy::Fixed { index: 0 }.choose(0.0, &[]);
    }
}
