//! Discrete-event inference-serving simulator (paper Section 7.1).
//!
//! Reproduces the end-to-end serving experiment of Figure 9(c): an
//! inference server under bursty load, compared across four policies —
//! a fixed model (baseline), ideal scale-out with a standby twin server,
//! automated model switching via Sommelier, and the combination. The
//! simulator is a classic event-driven queueing model: requests arrive by
//! a workload process, wait in FIFO order, and occupy a server for the
//! latency of whichever model the policy selects.
//!
//! Modules:
//! * [`workload`] — arrival processes (Poisson and bursty phases);
//! * [`server`] — the event loop and queueing simulation;
//! * [`policies`] — model-selection policies, including the
//!   Sommelier-driven switcher that consults resource-indexed equivalent
//!   models as queue pressure rises;
//! * [`engine_policy`] — the closed-loop variant: a switcher holding a
//!   live [`sommelier_query::SommelierReader`] that re-queries the
//!   engine per request, so selection tracks the published index epoch;
//! * [`stats`] — latency distributions and percentile extraction;
//! * [`daemon`] — the real thing, not a simulation: the
//!   `sommelier serve` TCP daemon (line-delimited JSON protocol,
//!   bounded admission, tenant quotas) serving concurrent readers off
//!   the RCU snapshot path.

pub mod daemon;
pub mod engine_policy;
pub mod policies;
pub mod server;
pub mod stats;
pub mod workload;

pub use daemon::{Daemon, DaemonConfig, DaemonHandle};
pub use engine_policy::EngineSwitcher;
pub use policies::{ModelChoice, Policy};
pub use server::{simulate, simulate_with, ClusterConfig, SimResult};
pub use stats::LatencyStats;
pub use workload::{Workload, WorkloadPhase};
