//! Latency statistics.
//!
//! Figure 9(c) reports inference latency *distributions*; the headline
//! number is the 90th-percentile (tail) latency, which model switching
//! cuts by ~6×. This module extracts percentiles and CDF series from raw
//! latency samples.

use serde::{Deserialize, Serialize};

/// Summary statistics of a latency sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Sample size.
    pub count: usize,
    /// Mean latency.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile — the paper's headline tail metric.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencyStats {
    /// Compute statistics from raw samples (empty input → all zeros).
    pub fn from(samples: &[f64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        LatencyStats {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
            p99: percentile_sorted(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Percentile of an ascending-sorted slice via the nearest-rank method.
/// `p` in `[0, 1]`. Panics on an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let p = p.clamp(0.0, 1.0);
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Evenly spaced CDF points `(latency, fraction ≤ latency)` for plotting;
/// returns up to `points` entries.
pub fn cdf_points(samples: &[f64], points: usize) -> Vec<(f64, f64)> {
    if samples.is_empty() || points == 0 {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len();
    (1..=points)
        .map(|i| {
            let frac = i as f64 / points as f64;
            let idx = ((frac * n as f64).ceil() as usize).clamp(1, n) - 1;
            (sorted[idx], frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_sample() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from(&v);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn single_sample_percentiles() {
        let s = LatencyStats::from(&[7.0]);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p90, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn empty_sample_is_zeros() {
        let s = LatencyStats::from(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p90, 0.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = LatencyStats::from(&[3.0, 1.0, 2.0]);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_max() {
        let v: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let cdf = cdf_points(&v, 10);
        assert_eq!(cdf.len(), 10);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(cdf.last().unwrap().0, 50.0);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_of_empty_panics() {
        percentile_sorted(&[], 0.5);
    }
}
