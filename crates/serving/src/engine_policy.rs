//! Live-engine model switching (paper Section 7.1, closed loop).
//!
//! The static [`Policy`](crate::Policy) variants choose among a
//! *precomputed* variant table. [`EngineSwitcher`] closes the loop the
//! paper describes: at every request the server formulates a Sommelier
//! query for models functionally equivalent to the served reference, and
//! picks — among the models the **live engine** returned — the most
//! accurate one whose service time fits the SLA budget left after the
//! observed backlog.
//!
//! The switcher holds a [`SommelierReader`], the lock-free query handle:
//! every `choose` pins the currently published snapshot, so serving
//! never blocks on a concurrent reindex and each decision is made
//! against exactly one index epoch. The query text is fixed per
//! switcher, so on a quiescent snapshot every per-request query after
//! the first is answered by the engine's plan/result cache — the
//! decision cost is one cache probe, not a plan + two index filters.
//!
//! The reference model is always eligible (it is trivially equivalent to
//! itself); candidates the engine no longer vouches for — e.g. models
//! unregistered since the variant table was built — are never served,
//! even if they fit the budget. If the query fails outright (say the
//! reference itself was unregistered), the switcher degrades to plain
//! budget-based switching over the full table: serving keeps draining.

use crate::policies::ModelChoice;
use sommelier_query::SommelierReader;

/// A model-selection policy that consults the live engine per request.
#[derive(Clone)]
pub struct EngineSwitcher {
    reader: SommelierReader,
    reference: String,
    query_text: String,
    sla_s: f64,
}

impl EngineSwitcher {
    /// A switcher serving `reference`, willing to substitute any model
    /// the engine scores at least `within`-equivalent, under an SLA of
    /// `sla_s` seconds end-to-end.
    pub fn new(
        reader: SommelierReader,
        reference: impl Into<String>,
        sla_s: f64,
        within: f64,
    ) -> Self {
        let reference = reference.into();
        let query_text = format!(
            "SELECT models 16 CORR {reference} WITHIN {within} ORDER BY latency"
        );
        EngineSwitcher {
            reader,
            reference,
            query_text,
            sla_s,
        }
    }

    /// The query issued (and re-issued) against the engine.
    pub fn query_text(&self) -> &str {
        &self.query_text
    }

    /// The SLA budget in seconds.
    pub fn sla_s(&self) -> f64 {
        self.sla_s
    }

    /// The index epoch the switcher's engine currently serves.
    pub fn served_epoch(&self) -> u64 {
        self.reader.epoch()
    }

    /// Choose a variant for a request that will wait `backlog_s` before
    /// service starts. `variants` must be non-empty.
    pub fn choose(&self, backlog_s: f64, variants: &[ModelChoice]) -> usize {
        assert!(!variants.is_empty(), "no variants to choose from");
        // Ask the live engine which models are currently equivalent to
        // the reference; keep the variants it vouches for (plus the
        // reference itself).
        let mut eligible: Vec<usize> = variants
            .iter()
            .enumerate()
            .filter(|(_, v)| v.name == self.reference)
            .map(|(i, _)| i)
            .collect();
        if let Ok(results) = self.reader.query(&self.query_text) {
            for r in &results {
                if let Some(i) = variants.iter().position(|v| v.name == r.key) {
                    if !eligible.contains(&i) {
                        eligible.push(i);
                    }
                }
            }
        }
        if eligible.is_empty() {
            // Degraded mode: the engine vouches for nothing we can
            // deploy — keep serving on budget alone.
            eligible = (0..variants.len()).collect();
        }
        let budget = self.sla_s - backlog_s;
        // Most accurate eligible variant that fits the remaining budget.
        let mut best: Option<usize> = None;
        for &i in &eligible {
            if variants[i].service_time_s <= budget {
                let better = match best {
                    None => true,
                    Some(b) => variants[i].accuracy > variants[b].accuracy,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best.unwrap_or_else(|| {
            // Overloaded: fastest eligible variant to drain the queue.
            eligible
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    variants[a]
                        .service_time_s
                        .partial_cmp(&variants[b].service_time_s)
                        .expect("finite")
                })
                .expect("eligible is non-empty")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sommelier_query::{Sommelier, SommelierConfig};
    use sommelier_repo::{InMemoryRepository, ModelRepository};
    use sommelier_zoo::families::Family;
    use sommelier_zoo::series::build_series;
    use sommelier_graph::TaskKind;
    use sommelier_tensor::Prng;
    use std::sync::Arc;

    /// A small registered series plus a variant table over it. The
    /// variant at the returned index is the reference (most accurate,
    /// slowest); an extra "imposter" variant the engine has never seen
    /// is appended last.
    fn fixture() -> (Sommelier, Vec<ModelChoice>, usize) {
        let repo = Arc::new(InMemoryRepository::new());
        let mut cfg = SommelierConfig {
            validation_rows: 64,
            ..SommelierConfig::default()
        };
        cfg.index.sample_size = 8;
        let mut engine = Sommelier::connect(Arc::clone(&repo) as Arc<dyn ModelRepository>, cfg);
        let mut rng = Prng::seed_from_u64(21);
        let series = build_series(
            "servenet",
            Family::Resnetish,
            TaskKind::ImageRecognition,
            "imagenet",
            4,
            77,
            0.08,
            &mut rng,
        );
        for m in &series.models {
            engine.register(m).expect("fresh");
        }
        let mut variants: Vec<ModelChoice> = series
            .models
            .iter()
            .enumerate()
            .map(|(i, m)| ModelChoice {
                name: m.name.clone(),
                service_time_s: 0.01 + 0.02 * i as f64,
                accuracy: 0.70 + 0.05 * i as f64,
            })
            .collect();
        let reference = variants.len() - 1;
        variants.push(ModelChoice {
            name: "imposter".into(),
            service_time_s: 0.001,
            accuracy: 0.99,
        });
        (engine, variants, reference)
    }

    #[test]
    fn idle_server_gets_the_reference_model() {
        let (engine, variants, reference) = fixture();
        let sw = EngineSwitcher::new(
            engine.reader().clone(),
            &variants[reference].name,
            1.0,
            0.3,
        );
        assert_eq!(sw.choose(0.0, &variants), reference);
    }

    #[test]
    fn backlog_downshifts_to_a_faster_equivalent() {
        let (engine, variants, reference) = fixture();
        let slowest = variants[reference].service_time_s;
        let sw = EngineSwitcher::new(
            engine.reader().clone(),
            &variants[reference].name,
            1.2 * slowest,
            0.3,
        );
        let heavy = sw.choose(1.15 * slowest, &variants);
        assert_ne!(heavy, reference, "backlog should force a downshift");
        assert!(
            variants[heavy].service_time_s < slowest,
            "downshift must be faster than the reference"
        );
    }

    #[test]
    fn unvouched_variants_are_never_served() {
        let (engine, variants, reference) = fixture();
        let imposter = variants.len() - 1;
        let sw = EngineSwitcher::new(
            engine.reader().clone(),
            &variants[reference].name,
            1.0,
            0.3,
        );
        // The imposter is the fastest and most accurate variant, but the
        // engine has never registered it — under any backlog it must not
        // be chosen.
        for backlog in [0.0, 0.5, 10.0] {
            assert_ne!(sw.choose(backlog, &variants), imposter);
        }
    }

    #[test]
    fn choices_track_the_live_epoch() {
        let (mut engine, variants, reference) = fixture();
        let sw = EngineSwitcher::new(
            engine.reader().clone(),
            &variants[reference].name,
            1.0,
            0.3,
        );
        let before = sw.served_epoch();
        // Unregister the second-best variant; the switcher must stop
        // serving it without any reconfiguration.
        let victim = reference - 1;
        assert!(engine.unregister(&variants[victim].name));
        assert!(sw.served_epoch() > before, "epoch advances on unregister");
        for backlog in [0.0, 0.5, 10.0] {
            assert_ne!(sw.choose(backlog, &variants), victim);
        }
    }

    #[test]
    fn engine_failure_degrades_to_budget_switching() {
        let (engine, variants, _) = fixture();
        // Reference never registered → every query errors → full table
        // serves on budget alone.
        let sw = EngineSwitcher::new(engine.reader().clone(), "nonexistent", 1.0, 0.3);
        let idle = sw.choose(0.0, &variants);
        assert_eq!(idle, variants.len() - 1, "most accurate fits when idle");
        let overloaded = sw.choose(100.0, &variants);
        assert_eq!(
            variants[overloaded].service_time_s,
            variants
                .iter()
                .map(|v| v.service_time_s)
                .fold(f64::INFINITY, f64::min),
            "overload serves the fastest variant"
        );
    }
}
