//! Logical tensor shapes.
//!
//! A [`Shape`] records the dimensionality of a tensor as published by a
//! model (for instance `[224, 224, 3]` for an image input). Sommelier's
//! input/output layer check (paper Section 4.1) compares these shapes to
//! filter out incomparable models before any expensive analysis runs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The logical shape of a tensor: an ordered list of dimension extents.
///
/// A scalar has rank 0 and one element. Zero-sized dimensions are allowed
/// (the tensor is then empty), matching conventional dataflow semantics.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// A scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// A rank-1 shape with `n` elements.
    pub fn vector(n: usize) -> Self {
        Shape(vec![n])
    }

    /// A rank-2 shape.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements (product of all extents; 1 for a scalar).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// The flattened 1-D length used when this logical shape is executed as
    /// a feature vector, e.g. `[224, 224, 3]` flattens to `150528`.
    pub fn flattened(&self) -> usize {
        self.num_elements()
    }

    /// Whether two shapes are identical dimension-for-dimension.
    ///
    /// This is the strict comparison Sommelier's I/O check invokes "in the
    /// absence of preprocessing" (Section 4.1).
    pub fn strictly_matches(&self, other: &Shape) -> bool {
        self == other
    }

    /// Whether two shapes carry the same number of elements, i.e. one could
    /// be a reshape/preprocessing of the other.
    pub fn matches_up_to_reshape(&self, other: &Shape) -> bool {
        self.num_elements() == other.num_elements()
    }

    /// Iterate over dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_rank_zero_and_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
    }

    #[test]
    fn vector_and_matrix_constructors() {
        assert_eq!(Shape::vector(7).dims(), &[7]);
        assert_eq!(Shape::matrix(2, 3).dims(), &[2, 3]);
        assert_eq!(Shape::matrix(2, 3).num_elements(), 6);
    }

    #[test]
    fn flattened_is_product_of_dims() {
        let s = Shape::from(vec![224, 224, 3]);
        assert_eq!(s.flattened(), 150_528);
    }

    #[test]
    fn strict_match_requires_identical_dims() {
        let a = Shape::from(vec![2, 6]);
        let b = Shape::from(vec![3, 4]);
        assert!(!a.strictly_matches(&b));
        assert!(a.matches_up_to_reshape(&b));
        assert!(a.strictly_matches(&a.clone()));
    }

    #[test]
    fn zero_dim_means_empty() {
        let s = Shape::from(vec![4, 0, 2]);
        assert_eq!(s.num_elements(), 0);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::from(vec![2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
