//! Dense tensor substrate for the Sommelier DNN query engine.
//!
//! Sommelier (SIGMOD 2022) analyzes DNN models structurally (weight
//! matrices, singular values) and behaviourally (executing them over
//! validation data). Both require a small, dependable numeric kernel. This
//! crate provides exactly that: a dense `f32` [`Tensor`], the linear-algebra
//! helpers the equivalence analysis needs ([`linalg`]), and seeded random
//! sampling ([`rng`]) so every experiment in the reproduction is
//! deterministic.
//!
//! Design notes:
//! * Runtime execution in this reproduction flows 2-D `[batch, features]`
//!   tensors through the graph; higher-rank logical shapes (e.g. image
//!   `[224, 224, 3]`) are recorded as metadata and flattened for execution.
//!   The paper's analysis treats convolutions as reshaped 2-D matrices
//!   anyway (Section 4.2), so nothing is lost for equivalence assessment.
//! * Everything is deterministic given a seed. No global RNG state.

pub mod linalg;
pub mod ops;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use rng::{mix64, stable_hash64, Prng};
pub use shape::Shape;
pub use tensor::Tensor;
