//! Numeric kernels used by the graph interpreter.
//!
//! These are the concrete computations behind the operator taxonomy of the
//! paper's Section 4.2: *linear* operators (matrix multiplication and local
//! convolution), *non-linear* operators (activations, pooling,
//! normalization), and *multi-source combinations* (add, multiply, concat).

use crate::tensor::Tensor;

/// Minimum number of multiply-adds before a kernel fans out to the
/// process-wide thread pool. Below this, task-submission overhead beats
/// any parallel win; above it, rows are split across workers. Results
/// are bit-identical either way (each output row is computed by exactly
/// one worker with an unchanged inner-loop order).
const PAR_FLOP_THRESHOLD: usize = 1 << 16;

/// Batched row parallelism: run `per_row(i, row)` for every row of
/// `out`, splitting rows across the global pool when the kernel is big
/// enough, inline otherwise. `per_row` must depend only on `i` and the
/// row contents (bit-identical results regardless of schedule).
fn for_each_row_parallel(
    out: &mut Tensor,
    flops: usize,
    per_row: impl Fn(usize, &mut [f32]) + Sync,
) {
    let n = out.cols().max(1);
    let m = out.rows();
    let pool = sommelier_parallel::global();
    if pool.jobs() <= 1 || flops < PAR_FLOP_THRESHOLD || m <= 1 {
        for i in 0..m {
            per_row(i, out.row_mut(i));
        }
        return;
    }
    let rows_per_chunk = m.div_ceil(pool.jobs() * 4).max(1);
    pool.par_chunks_mut(out.as_mut_slice(), rows_per_chunk * n, |chunk_idx, chunk| {
        for (local, row) in chunk.chunks_mut(n).enumerate() {
            per_row(chunk_idx * rows_per_chunk + local, row);
        }
    });
}

/// `a @ b` for `a: [m, k]`, `b: [k, n]`. Panics on an inner-dimension
/// mismatch.
///
/// Large products (`2·m·k·n` above an internal threshold) are split
/// row-wise across the process-wide [`sommelier_parallel::global`] pool;
/// each output row keeps the sequential inner-loop order, so the result
/// is bit-identical at any job count.
///
/// ```
/// use sommelier_tensor::{ops, Tensor};
/// let a = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
/// let b = Tensor::from_vec(2, 1, vec![3.0, 4.0]);
/// assert_eq!(ops::matmul(&a, &b).as_slice(), &[11.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul inner dimensions differ: {}x{} @ {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Tensor::zeros(m, n);
    // i-k-j loop order keeps the inner loop sequential over both `b` and
    // `out` rows (cache-friendly; see the perf-book guidance on access
    // patterns). Rows are independent, so they parallelize without
    // changing any per-row arithmetic order.
    for_each_row_parallel(&mut out, 2 * m * k * n, |i, out_row| {
        let a_row = a.row(i);
        for (kk, &a_ik) in a_row.iter().enumerate().take(k) {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = b.row(kk);
            for j in 0..n {
                out_row[j] += a_ik * b_row[j];
            }
        }
    });
    out
}

/// Add a bias row vector `[1, n]` to every row of `x: [m, n]`.
pub fn add_bias(x: &Tensor, bias: &Tensor) -> Tensor {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), x.cols(), "bias width must match features");
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        for (v, &b) in row.iter_mut().zip(bias.row(0)) {
            *v += b;
        }
    }
    out
}

/// 1-D local convolution over the feature axis.
///
/// `kernel` is `[out_channels, kernel_size]`; each output channel `o` slides
/// its kernel across the input features with the given `stride`:
/// `out[b, o * w + j] = Σ_c kernel[o, c] · x[b, j·stride + c]`, where `w` is
/// the number of valid window positions. This models the locally-connected,
/// weight-shared structure of a convolution while staying 1-D; the paper's
/// analysis reshapes convolution kernels to 2-D matrices anyway (§4.2).
pub fn conv1d(x: &Tensor, kernel: &Tensor, stride: usize) -> Tensor {
    assert!(stride > 0, "stride must be positive");
    let ksize = kernel.cols();
    assert!(
        ksize <= x.cols(),
        "kernel size {} exceeds input width {}",
        ksize,
        x.cols()
    );
    let windows = (x.cols() - ksize) / stride + 1;
    let out_ch = kernel.rows();
    let mut out = Tensor::zeros(x.rows(), out_ch * windows);
    // Batch rows are independent; parallelize across them (same
    // bit-identical-per-row argument as `matmul`).
    let flops = 2 * x.rows() * out_ch * windows * ksize;
    for_each_row_parallel(&mut out, flops, |b, out_row| {
        let xin = x.row(b);
        for o in 0..out_ch {
            let krow = kernel.row(o);
            for j in 0..windows {
                let start = j * stride;
                let mut acc = 0.0f32;
                for (c, &kv) in krow.iter().enumerate() {
                    acc += kv * xin[start + c];
                }
                out_row[o * windows + j] = acc;
            }
        }
    });
    out
}

/// Number of output features `conv1d` produces for the given geometry.
pub fn conv1d_output_width(input: usize, kernel_size: usize, stride: usize, out_channels: usize) -> usize {
    assert!(stride > 0 && kernel_size <= input);
    let windows = (input - kernel_size) / stride + 1;
    out_channels * windows
}

/// Rectified linear unit.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Leaky ReLU with the given negative-side slope.
pub fn leaky_relu(x: &Tensor, slope: f32) -> Tensor {
    x.map(move |v| if v >= 0.0 { v } else { slope * v })
}

/// Hyperbolic tangent.
pub fn tanh(x: &Tensor) -> Tensor {
    x.map(f32::tanh)
}

/// Logistic sigmoid.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Row-wise softmax (numerically stabilized by subtracting the row max).
pub fn softmax(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

/// Max pooling over non-overlapping windows of `window` features.
/// A trailing partial window is pooled as-is.
pub fn max_pool(x: &Tensor, window: usize) -> Tensor {
    pool(x, window, |chunk| {
        chunk.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    })
}

/// Mean pooling over non-overlapping windows of `window` features.
pub fn mean_pool(x: &Tensor, window: usize) -> Tensor {
    pool(x, window, |chunk| {
        chunk.iter().sum::<f32>() / chunk.len() as f32
    })
}

fn pool(x: &Tensor, window: usize, f: impl Fn(&[f32]) -> f32) -> Tensor {
    assert!(window > 0, "pool window must be positive");
    let out_cols = x.cols().div_ceil(window);
    let mut out = Tensor::zeros(x.rows(), out_cols);
    for r in 0..x.rows() {
        for (j, chunk) in x.row(r).chunks(window).enumerate() {
            out.set(r, j, f(chunk));
        }
    }
    out
}

/// Number of output features pooling produces.
pub fn pool_output_width(input: usize, window: usize) -> usize {
    assert!(window > 0);
    input.div_ceil(window)
}

/// Row-wise l2 normalization: each row is scaled to unit norm (rows with
/// zero norm are left untouched). This is the "normalization" operator of
/// the error-propagation taxonomy.
pub fn l2_normalize(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let norm = row.iter().map(|&v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
    }
    out
}

/// Element-wise sum of several same-shaped tensors (multi-source `add`).
pub fn add_n(inputs: &[&Tensor]) -> Tensor {
    assert!(!inputs.is_empty(), "add_n needs at least one input");
    let mut out = inputs[0].clone();
    for t in &inputs[1..] {
        out = out.zip_with(t, |a, b| a + b);
    }
    out
}

/// Element-wise product of several same-shaped tensors (multi-source
/// `multiply`).
pub fn multiply_n(inputs: &[&Tensor]) -> Tensor {
    assert!(!inputs.is_empty(), "multiply_n needs at least one input");
    let mut out = inputs[0].clone();
    for t in &inputs[1..] {
        out = out.zip_with(t, |a, b| a * b);
    }
    out
}

/// Feature-axis concatenation of several tensors with equal batch size.
pub fn concat(inputs: &[&Tensor]) -> Tensor {
    assert!(!inputs.is_empty(), "concat needs at least one input");
    let rows = inputs[0].rows();
    let total_cols: usize = inputs.iter().map(|t| t.cols()).sum();
    let mut out = Tensor::zeros(rows, total_cols);
    for r in 0..rows {
        let mut offset = 0;
        for t in inputs {
            assert_eq!(t.rows(), rows, "concat inputs must share batch size");
            out.row_mut(r)[offset..offset + t.cols()].copy_from_slice(t.row(r));
            offset += t.cols();
        }
    }
    out
}

/// Mean l2 distance between corresponding rows of two same-shaped tensors.
/// This is the default QoR difference for regression-style outputs
/// (paper Section 4.1).
pub fn mean_row_l2_distance(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.rows(), b.rows(), "row counts must match");
    assert_eq!(a.cols(), b.cols(), "widths must match");
    if a.rows() == 0 {
        return 0.0;
    }
    let mut total = 0.0f64;
    for r in 0..a.rows() {
        let d: f64 = a
            .row(r)
            .iter()
            .zip(b.row(r))
            .map(|(&x, &y)| {
                let d = (x - y) as f64;
                d * d
            })
            .sum();
        total += d.sqrt();
    }
    total / a.rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(rows, cols, v)
    }

    #[test]
    fn matmul_small_case() {
        let a = t(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn kernels_bit_identical_across_job_counts() {
        use crate::rng::Prng;
        let mut rng = Prng::seed_from_u64(99);
        // Big enough to cross PAR_FLOP_THRESHOLD.
        let a = Tensor::gaussian(64, 48, 1.0, &mut rng);
        let b = Tensor::gaussian(48, 40, 1.0, &mut rng);
        let x = Tensor::gaussian(64, 128, 1.0, &mut rng);
        let k = Tensor::gaussian(4, 5, 1.0, &mut rng);
        sommelier_parallel::set_global_jobs(1);
        let mm_seq = matmul(&a, &b);
        let cv_seq = conv1d(&x, &k, 2);
        sommelier_parallel::set_global_jobs(4);
        let mm_par = matmul(&a, &b);
        let cv_par = conv1d(&x, &k, 2);
        sommelier_parallel::set_global_jobs(1);
        assert_eq!(mm_seq.as_slice(), mm_par.as_slice());
        assert_eq!(cv_seq.as_slice(), cv_par.as_slice());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(matmul(&a, &Tensor::identity(2)), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dim_mismatch_panics() {
        let _ = matmul(&Tensor::zeros(2, 3), &Tensor::zeros(4, 2));
    }

    #[test]
    fn add_bias_broadcasts_rows() {
        let x = t(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::row_vector(vec![10., 20.]);
        assert_eq!(add_bias(&x, &b).as_slice(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn conv1d_single_channel() {
        // kernel [1,1] over width 4, stride 1 → moving dot product
        let x = t(1, 4, vec![1., 2., 3., 4.]);
        let k = t(1, 2, vec![1., -1.]);
        let y = conv1d(&x, &k, 1);
        assert_eq!(y.as_slice(), &[-1., -1., -1.]);
        assert_eq!(y.cols(), conv1d_output_width(4, 2, 1, 1));
    }

    #[test]
    fn conv1d_stride_and_channels() {
        let x = t(1, 5, vec![1., 0., 2., 0., 3.]);
        let k = t(2, 1, vec![2., -1.]); // two 1-wide kernels
        let y = conv1d(&x, &k, 2);
        // windows at 0,2,4 → channel0: 2,4,6; channel1: -1,-2,-3
        assert_eq!(y.as_slice(), &[2., 4., 6., -1., -2., -3.]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = t(1, 3, vec![-1., 0., 2.]);
        assert_eq!(relu(&x).as_slice(), &[0., 0., 2.]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let x = t(1, 2, vec![-2., 3.]);
        assert_eq!(leaky_relu(&x, 0.1).as_slice(), &[-0.2, 3.]);
    }

    #[test]
    fn sigmoid_and_tanh_ranges() {
        let x = t(1, 3, vec![-10., 0., 10.]);
        let s = sigmoid(&x);
        assert!(s.get(0, 0) < 0.001 && (s.get(0, 1) - 0.5).abs() < 1e-6 && s.get(0, 2) > 0.999);
        let th = tanh(&x);
        assert!(th.get(0, 0) < -0.999 && th.get(0, 2) > 0.999);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t(2, 3, vec![1., 2., 3., 1000., 1000., 1000.]);
        let s = softmax(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // stability: huge equal logits → uniform
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn pooling_reduces_width() {
        let x = t(1, 5, vec![1., 5., 2., 2., 9.]);
        assert_eq!(max_pool(&x, 2).as_slice(), &[5., 2., 9.]);
        assert_eq!(mean_pool(&x, 2).as_slice(), &[3., 2., 9.]);
        assert_eq!(pool_output_width(5, 2), 3);
    }

    #[test]
    fn l2_normalize_unit_rows() {
        let x = t(2, 2, vec![3., 4., 0., 0.]);
        let n = l2_normalize(&x);
        assert!((n.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((n.get(0, 1) - 0.8).abs() < 1e-6);
        // zero row untouched
        assert_eq!(n.row(1), &[0., 0.]);
    }

    #[test]
    fn multi_source_combinators() {
        let a = t(1, 2, vec![1., 2.]);
        let b = t(1, 2, vec![3., 4.]);
        assert_eq!(add_n(&[&a, &b]).as_slice(), &[4., 6.]);
        assert_eq!(multiply_n(&[&a, &b]).as_slice(), &[3., 8.]);
        let c = concat(&[&a, &b]);
        assert_eq!(c.cols(), 4);
        assert_eq!(c.as_slice(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn mean_row_l2_distance_basic() {
        let a = t(2, 2, vec![0., 0., 1., 1.]);
        let b = t(2, 2, vec![3., 4., 1., 1.]);
        // row0 distance 5, row1 distance 0 → mean 2.5
        assert!((mean_row_l2_distance(&a, &b) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = t(3, 4, (0..12).map(|i| i as f32).collect());
        assert_eq!(mean_row_l2_distance(&a, &a), 0.0);
    }
}
