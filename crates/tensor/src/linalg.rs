//! Linear-algebra helpers for the equivalence analysis.
//!
//! The per-layer error-propagation bound of the paper (Section 4.2) scales
//! error vectors by the largest singular value `λ_max(W)` of each linear
//! layer's weight matrix. We compute `λ_max` with power iteration on
//! `WᵀW` — accurate to a relative tolerance, cheap, and dependency-free.

use crate::rng::Prng;
use crate::tensor::Tensor;

/// Matrix–vector product `m · v` for `m: [r, c]`, `v: [c]`.
pub fn matvec(m: &Tensor, v: &[f32]) -> Vec<f32> {
    assert_eq!(m.cols(), v.len(), "matvec dimension mismatch");
    (0..m.rows())
        .map(|r| m.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
        .collect()
}

/// Matrix-transpose–vector product `mᵀ · v` for `m: [r, c]`, `v: [r]`.
pub fn matvec_t(m: &Tensor, v: &[f32]) -> Vec<f32> {
    assert_eq!(m.rows(), v.len(), "matvec_t dimension mismatch");
    let mut out = vec![0.0f32; m.cols()];
    for (r, &vr) in v.iter().enumerate() {
        if vr == 0.0 {
            continue;
        }
        for (o, &a) in out.iter_mut().zip(m.row(r)) {
            *o += a * vr;
        }
    }
    out
}

/// Euclidean norm of a vector.
pub fn l2_norm(v: &[f32]) -> f64 {
    v.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
}

/// Scale a vector to unit norm in place; returns the pre-scaling norm.
fn normalize(v: &mut [f32]) -> f64 {
    let n = l2_norm(v);
    if n > 0.0 {
        let inv = (1.0 / n) as f32;
        for x in v {
            *x *= inv;
        }
    }
    n
}

/// Largest singular value of `m`, estimated by power iteration on `mᵀm`.
///
/// Converges to relative tolerance `tol` or after `max_iters` iterations,
/// whichever comes first. Deterministic for a fixed `seed`. Returns 0 for a
/// zero or empty matrix.
pub fn spectral_norm(m: &Tensor, tol: f64, max_iters: usize, seed: u64) -> f64 {
    if m.rows() == 0 || m.cols() == 0 {
        return 0.0;
    }
    let mut rng = Prng::seed_from_u64(seed);
    let mut v: Vec<f32> = (0..m.cols()).map(|_| rng.gaussian() as f32).collect();
    if normalize(&mut v) == 0.0 {
        v[0] = 1.0;
    }
    let mut sigma = 0.0f64;
    for _ in 0..max_iters {
        // v ← normalize(mᵀ (m v)); σ ← ‖m v‖
        let mv = matvec(m, &v);
        let new_sigma = l2_norm(&mv);
        if new_sigma == 0.0 {
            return 0.0;
        }
        let mut next = matvec_t(m, &mv);
        normalize(&mut next);
        v = next;
        let rel = (new_sigma - sigma).abs() / new_sigma.max(1e-30);
        sigma = new_sigma;
        if rel < tol {
            break;
        }
    }
    sigma
}

/// Largest singular value with default tolerances (1e-6, 200 iterations).
///
/// ```
/// use sommelier_tensor::{linalg, Tensor};
/// let m = Tensor::identity(4).map(|x| x * 3.0);
/// assert!((linalg::spectral_norm_default(&m) - 3.0).abs() < 1e-3);
/// ```
pub fn spectral_norm_default(m: &Tensor) -> f64 {
    spectral_norm(m, 1e-6, 200, 0x5eed)
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x as f64) * (y as f64)).sum()
}

/// Cosine similarity between two vectors; 0 when either is all-zero.
/// This is the comparator ModelDiff uses over decision-distance vectors
/// (paper Section 7.2).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_basics() {
        let m = Tensor::from_vec(2, 3, vec![1., 0., 2., 0., 1., 0.]);
        assert_eq!(matvec(&m, &[1., 2., 3.]), vec![7., 2.]);
        assert_eq!(matvec_t(&m, &[1., 1.]), vec![1., 1., 2.]);
    }

    #[test]
    fn l2_norm_pythagoras() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn spectral_norm_of_identity_is_one() {
        let m = Tensor::identity(8);
        assert!((spectral_norm_default(&m) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn spectral_norm_of_diagonal_is_max_entry() {
        let mut m = Tensor::zeros(4, 4);
        for (i, v) in [0.5f32, 3.0, 1.0, 2.0].iter().enumerate() {
            m.set(i, i, *v);
        }
        assert!((spectral_norm_default(&m) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn spectral_norm_of_scaled_identity_scales() {
        let m = Tensor::identity(5).map(|x| x * 7.0);
        assert!((spectral_norm_default(&m) - 7.0).abs() < 1e-3);
    }

    #[test]
    fn spectral_norm_rectangular_rank_one() {
        // rank-1 matrix u vᵀ with ‖u‖=2, ‖v‖=3 → σ = 6
        let u = [2.0f32, 0.0];
        let v = [0.0f32, 3.0, 0.0];
        let m = Tensor::from_fn(2, 3, |r, c| u[r] * v[c]);
        assert!((spectral_norm_default(&m) - 6.0).abs() < 1e-3);
    }

    #[test]
    fn spectral_norm_zero_matrix() {
        assert_eq!(spectral_norm_default(&Tensor::zeros(3, 3)), 0.0);
    }

    #[test]
    fn cosine_similarity_bounds() {
        assert!((cosine_similarity(&[1., 0.], &[1., 0.]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1., 0.], &[0., 1.])).abs() < 1e-12);
        assert!((cosine_similarity(&[1., 0.], &[-1., 0.]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0., 0.], &[1., 2.]), 0.0);
    }

    #[test]
    fn spectral_norm_bounds_matvec_amplification() {
        // ‖m v‖ ≤ σ_max ‖v‖ must hold for arbitrary v.
        let mut rng = crate::rng::Prng::seed_from_u64(42);
        let m = Tensor::gaussian(6, 9, 1.0, &mut rng);
        let sigma = spectral_norm_default(&m);
        for _ in 0..20 {
            let v: Vec<f32> = (0..9).map(|_| rng.gaussian() as f32).collect();
            let amplified = l2_norm(&matvec(&m, &v));
            assert!(amplified <= sigma * l2_norm(&v) * (1.0 + 1e-3));
        }
    }
}
