//! Linear-algebra helpers for the equivalence analysis.
//!
//! The per-layer error-propagation bound of the paper (Section 4.2) scales
//! error vectors by the largest singular value `λ_max(W)` of each linear
//! layer's weight matrix. We compute `λ_max` with power iteration on
//! `WᵀW` — accurate to a relative tolerance, cheap, and dependency-free.

use crate::rng::Prng;
use crate::tensor::Tensor;

/// Matrix–vector product `m · v` for `m: [r, c]`, `v: [c]`.
pub fn matvec(m: &Tensor, v: &[f32]) -> Vec<f32> {
    assert_eq!(m.cols(), v.len(), "matvec dimension mismatch");
    (0..m.rows())
        .map(|r| m.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
        .collect()
}

/// Matrix-transpose–vector product `mᵀ · v` for `m: [r, c]`, `v: [r]`.
pub fn matvec_t(m: &Tensor, v: &[f32]) -> Vec<f32> {
    assert_eq!(m.rows(), v.len(), "matvec_t dimension mismatch");
    let mut out = vec![0.0f32; m.cols()];
    for (r, &vr) in v.iter().enumerate() {
        if vr == 0.0 {
            continue;
        }
        for (o, &a) in out.iter_mut().zip(m.row(r)) {
            *o += a * vr;
        }
    }
    out
}

/// Euclidean norm of a vector.
pub fn l2_norm(v: &[f32]) -> f64 {
    v.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
}

/// Scale a vector to unit norm in place; returns the pre-scaling norm.
fn normalize(v: &mut [f32]) -> f64 {
    let n = l2_norm(v);
    if n > 0.0 {
        let inv = (1.0 / n) as f32;
        for x in v {
            *x *= inv;
        }
    }
    n
}

/// Largest singular value of `m`, estimated by power iteration on `mᵀm`.
///
/// Converges to relative tolerance `tol` or after `max_iters` iterations,
/// whichever comes first. Deterministic for a fixed `seed`. Returns 0 for a
/// zero or empty matrix.
pub fn spectral_norm(m: &Tensor, tol: f64, max_iters: usize, seed: u64) -> f64 {
    if m.rows() == 0 || m.cols() == 0 {
        return 0.0;
    }
    let mut rng = Prng::seed_from_u64(seed);
    let mut v: Vec<f32> = (0..m.cols()).map(|_| rng.gaussian() as f32).collect();
    if normalize(&mut v) == 0.0 {
        v[0] = 1.0;
    }
    let mut sigma = 0.0f64;
    for _ in 0..max_iters {
        // v ← normalize(mᵀ (m v)); σ ← ‖m v‖
        let mv = matvec(m, &v);
        let new_sigma = l2_norm(&mv);
        if new_sigma == 0.0 {
            return 0.0;
        }
        let mut next = matvec_t(m, &mv);
        normalize(&mut next);
        v = next;
        let rel = (new_sigma - sigma).abs() / new_sigma.max(1e-30);
        sigma = new_sigma;
        if rel < tol {
            break;
        }
    }
    sigma
}

/// Largest singular value with default tolerances (1e-6, 200 iterations).
///
/// ```
/// use sommelier_tensor::{linalg, Tensor};
/// let m = Tensor::identity(4).map(|x| x * 3.0);
/// assert!((linalg::spectral_norm_default(&m) - 3.0).abs() < 1e-3);
/// ```
pub fn spectral_norm_default(m: &Tensor) -> f64 {
    spectral_norm(m, 1e-6, 200, 0x5eed)
}

/// Number of independent accumulator lanes in the chunked kernels. Eight
/// `f64` lanes fill two AVX2 registers (or four NEON ones), which is what
/// lets the compiler auto-vectorize the main loop.
const LANES: usize = 8;

/// Reduce eight accumulator lanes pairwise: `((0+1)+(2+3)) + ((4+5)+(6+7))`.
///
/// The balanced tree keeps rounding error at `O(log n)` ulps instead of the
/// sequential sum's `O(n)`, and — because `x + 0.0 == x` for every finite
/// `x` — degenerates to the exact sequential sum when fewer than eight
/// lanes are populated (short-vector tails).
#[inline]
fn reduce_lanes(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Chunked dot product over `f32` slices: eight independent `f64`
/// accumulators over the 8-wide body, the exact tail folded into the
/// low lanes, pairwise lane reduction. The loop body is branch-free and
/// auto-vectorizes; this is the scoring kernel the resource index runs
/// over its profile slab.
pub fn dot_chunked(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for lane in 0..LANES {
            acc[lane] += f64::from(xa[lane]) * f64::from(xb[lane]);
        }
    }
    for (lane, (&x, &y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        acc[lane] += f64::from(x) * f64::from(y);
    }
    reduce_lanes(acc)
}

/// [`dot_chunked`] over `f64` slices — the variant the LSH hyperplane
/// signatures use (planes and probe vectors are `f64`).
pub fn dot_chunked_f64(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for lane in 0..LANES {
            acc[lane] += xa[lane] * xb[lane];
        }
    }
    for (lane, (&x, &y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        acc[lane] += x * y;
    }
    reduce_lanes(acc)
}

/// Chunked squared Euclidean distance `Σ (a_i − b_i)²` over `f32` slices,
/// same 8-wide accumulation scheme as [`dot_chunked`] — the nearest-profile
/// scan kernel.
pub fn dist2_chunked(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist2 length mismatch");
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for lane in 0..LANES {
            let d = f64::from(xa[lane]) - f64::from(xb[lane]);
            acc[lane] += d * d;
        }
    }
    for (lane, (&x, &y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        let d = f64::from(x) - f64::from(y);
        acc[lane] += d * d;
    }
    reduce_lanes(acc)
}

/// Fused chunked cosine similarity: one pass computes `a·b`, `‖a‖²`, and
/// `‖b‖²` together (eight lanes each); 0 when either vector is all-zero.
pub fn cosine_chunked(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine length mismatch");
    let mut dot_acc = [0.0f64; LANES];
    let mut na_acc = [0.0f64; LANES];
    let mut nb_acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for lane in 0..LANES {
            let (x, y) = (f64::from(xa[lane]), f64::from(xb[lane]));
            dot_acc[lane] += x * y;
            na_acc[lane] += x * x;
            nb_acc[lane] += y * y;
        }
    }
    for (lane, (&x, &y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        let (x, y) = (f64::from(x), f64::from(y));
        dot_acc[lane] += x * y;
        na_acc[lane] += x * x;
        nb_acc[lane] += y * y;
    }
    let (na, nb) = (reduce_lanes(na_acc).sqrt(), reduce_lanes(nb_acc).sqrt());
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    reduce_lanes(dot_acc) / (na * nb)
}

/// Dot product of two equal-length slices (chunked/pairwise accumulation —
/// agrees with [`dot_chunked`] bit-for-bit).
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    dot_chunked(a, b)
}

/// Cosine similarity between two vectors; 0 when either is all-zero.
/// This is the comparator ModelDiff uses over decision-distance vectors
/// (paper Section 7.2).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_basics() {
        let m = Tensor::from_vec(2, 3, vec![1., 0., 2., 0., 1., 0.]);
        assert_eq!(matvec(&m, &[1., 2., 3.]), vec![7., 2.]);
        assert_eq!(matvec_t(&m, &[1., 1.]), vec![1., 1., 2.]);
    }

    #[test]
    fn l2_norm_pythagoras() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn spectral_norm_of_identity_is_one() {
        let m = Tensor::identity(8);
        assert!((spectral_norm_default(&m) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn spectral_norm_of_diagonal_is_max_entry() {
        let mut m = Tensor::zeros(4, 4);
        for (i, v) in [0.5f32, 3.0, 1.0, 2.0].iter().enumerate() {
            m.set(i, i, *v);
        }
        assert!((spectral_norm_default(&m) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn spectral_norm_of_scaled_identity_scales() {
        let m = Tensor::identity(5).map(|x| x * 7.0);
        assert!((spectral_norm_default(&m) - 7.0).abs() < 1e-3);
    }

    #[test]
    fn spectral_norm_rectangular_rank_one() {
        // rank-1 matrix u vᵀ with ‖u‖=2, ‖v‖=3 → σ = 6
        let u = [2.0f32, 0.0];
        let v = [0.0f32, 3.0, 0.0];
        let m = Tensor::from_fn(2, 3, |r, c| u[r] * v[c]);
        assert!((spectral_norm_default(&m) - 6.0).abs() < 1e-3);
    }

    #[test]
    fn spectral_norm_zero_matrix() {
        assert_eq!(spectral_norm_default(&Tensor::zeros(3, 3)), 0.0);
    }

    #[test]
    fn cosine_similarity_bounds() {
        assert!((cosine_similarity(&[1., 0.], &[1., 0.]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1., 0.], &[0., 1.])).abs() < 1e-12);
        assert!((cosine_similarity(&[1., 0.], &[-1., 0.]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0., 0.], &[1., 2.]), 0.0);
    }

    /// Sequential reference implementation the chunked kernels are
    /// checked against. Folds from +0.0 explicitly: std's `Sum<f64>`
    /// identity is -0.0, and the kernels (like any accumulator loop
    /// starting at +0.0) return +0.0 for empty input — numerically
    /// equal, different bits.
    fn dot_ref(a: &[f32], b: &[f32]) -> f64 {
        a.iter()
            .zip(b)
            .fold(0.0, |s, (&x, &y)| s + (x as f64) * (y as f64))
    }

    fn gaussian_pair(len: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = crate::rng::Prng::seed_from_u64(seed);
        let a = (0..len).map(|_| rng.gaussian() as f32).collect();
        let b = (0..len).map(|_| rng.gaussian() as f32).collect();
        (a, b)
    }

    #[test]
    fn chunked_dot_handles_degenerate_lengths() {
        assert_eq!(dot_chunked(&[], &[]), 0.0);
        assert_eq!(dot_chunked(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot_chunked_f64(&[], &[]), 0.0);
        assert_eq!(dist2_chunked(&[1.0, 2.0], &[1.0, 4.0]), 4.0);
        assert_eq!(cosine_chunked(&[], &[]), 0.0);
        assert_eq!(cosine_chunked(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn short_vector_dot_is_bitwise_sequential() {
        // With fewer than eight elements every product lands in its own
        // lane and the pairwise reduction associates exactly like the
        // sequential sum — bit-for-bit, which is what keeps dim-3
        // profile and LSH dots unchanged by the kernel switch.
        for len in 0..8 {
            let (a, b) = gaussian_pair(len, 11 + len as u64);
            assert_eq!(dot_chunked(&a, &b).to_bits(), dot_ref(&a, &b).to_bits());
        }
    }

    #[test]
    fn dot_delegates_to_the_chunked_kernel() {
        let (a, b) = gaussian_pair(123, 5);
        assert_eq!(dot(&a, &b).to_bits(), dot_chunked(&a, &b).to_bits());
    }

    #[test]
    fn cosine_chunked_matches_cosine_similarity() {
        for len in [1, 3, 8, 65, 1024] {
            let (a, b) = gaussian_pair(len, 77 + len as u64);
            let fused = cosine_chunked(&a, &b);
            let plain = cosine_similarity(&a, &b);
            assert!((fused - plain).abs() < 1e-12, "len={len}");
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&fused));
        }
    }

    mod kernel_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// The chunked kernels agree with the scalar reference to
            /// strict tolerance across every length 0–1025 (both sides of
            /// every 8-wide chunk boundary included).
            #[test]
            fn chunked_kernels_match_scalar_reference(
                len in 0usize..=1025,
                seed in any::<u64>(),
            ) {
                let (a, b) = gaussian_pair(len, seed);
                let magnitude: f64 = a
                    .iter()
                    .zip(&b)
                    .map(|(&x, &y)| ((x as f64) * (y as f64)).abs())
                    .sum::<f64>()
                    .max(1.0);
                let tol = 1e-10 * magnitude;

                prop_assert!((dot_chunked(&a, &b) - dot_ref(&a, &b)).abs() <= tol);

                let a64: Vec<f64> = a.iter().map(|&x| x as f64).collect();
                let b64: Vec<f64> = b.iter().map(|&x| x as f64).collect();
                let ref64: f64 = a64.iter().zip(&b64).map(|(x, y)| x * y).sum();
                prop_assert!((dot_chunked_f64(&a64, &b64) - ref64).abs() <= tol);

                let d2_ref: f64 = a
                    .iter()
                    .zip(&b)
                    .map(|(&x, &y)| {
                        let d = (x as f64) - (y as f64);
                        d * d
                    })
                    .sum();
                prop_assert!((dist2_chunked(&a, &b) - d2_ref).abs() <= 1e-10 * d2_ref.max(1.0));
            }
        }
    }

    #[test]
    fn spectral_norm_bounds_matvec_amplification() {
        // ‖m v‖ ≤ σ_max ‖v‖ must hold for arbitrary v.
        let mut rng = crate::rng::Prng::seed_from_u64(42);
        let m = Tensor::gaussian(6, 9, 1.0, &mut rng);
        let sigma = spectral_norm_default(&m);
        for _ in 0..20 {
            let v: Vec<f32> = (0..9).map(|_| rng.gaussian() as f32).collect();
            let amplified = l2_norm(&matvec(&m, &v));
            assert!(amplified <= sigma * l2_norm(&v) * (1.0 + 1e-3));
        }
    }
}
