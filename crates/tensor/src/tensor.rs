//! The dense `f32` tensor type.
//!
//! Execution in the reproduction is row-major 2-D: a [`Tensor`] is a
//! `[rows, cols]` matrix where rows are batch items and columns are
//! features. Rank-1 data is represented as a single row.

use crate::rng::Prng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` matrix.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Construct from raw parts. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// A single row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Tensor::from_vec(1, cols, data)
    }

    /// All zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t.set(i, i, 1.0);
        }
        t
    }

    /// Element-wise construction.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor { rows, cols, data }
    }

    /// I.i.d. Gaussian entries with the given standard deviation.
    pub fn gaussian(rows: usize, cols: usize, std_dev: f64, rng: &mut Prng) -> Self {
        Tensor::from_fn(rows, cols, |_, _| rng.gaussian_with(0.0, std_dev) as f32)
    }

    /// I.i.d. uniform entries in `[lo, hi)`.
    pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Prng) -> Self {
        Tensor::from_fn(rows, cols, |_, _| rng.uniform_in(lo, hi))
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw data slice, row-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice, row-major.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Iterate over rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Apply a function element-wise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Apply a function element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two same-shaped tensors.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "zip_with requires identical shapes"
        );
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Stack a batch of single-row tensors into one tensor. Panics if the
    /// rows disagree on width or the input is empty.
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let cols = rows[0].cols;
        let mut data = Vec::with_capacity(rows.len() * cols);
        let mut total_rows = 0;
        for t in rows {
            assert_eq!(t.cols, cols, "stacked rows must share width");
            data.extend_from_slice(&t.data);
            total_rows += t.rows;
        }
        Tensor {
            rows: total_rows,
            cols,
            data,
        }
    }

    /// Extract a copy of row `r` as a 1-row tensor.
    pub fn row_tensor(&self, r: usize) -> Tensor {
        Tensor::from_vec(1, self.cols, self.row(r).to_vec())
    }

    /// Frobenius norm of the whole tensor.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Mean of all entries (0 for an empty tensor).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&x| x as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Index of the maximum entry of row `r` (ties broken toward the lower
    /// index). This is the top-1 "classification" readout used throughout
    /// the agreement experiments (paper Figure 3).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_panics_on_bad_length() {
        let _ = Tensor::from_vec(2, 3, vec![1.0; 5]);
    }

    #[test]
    fn identity_diagonal() {
        let i = Tensor::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_round_trips() {
        let t = Tensor::from_fn(3, 5, |r, c| (r * 10 + c) as f32);
        assert_eq!(t.transpose().transpose(), t);
        assert_eq!(t.transpose().get(4, 2), t.get(2, 4));
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![10., 20., 30.]);
        assert_eq!(a.map(|x| x * 2.0).as_slice(), &[2., 4., 6.]);
        assert_eq!(a.zip_with(&b, |x, y| x + y).as_slice(), &[11., 22., 33.]);
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn zip_with_shape_mismatch_panics() {
        let a = Tensor::zeros(1, 3);
        let b = Tensor::zeros(3, 1);
        let _ = a.zip_with(&b, |x, _| x);
    }

    #[test]
    fn stack_rows_concatenates() {
        let a = Tensor::row_vector(vec![1., 2.]);
        let b = Tensor::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let s = Tensor::stack_rows(&[a, b]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(2), &[5., 6.]);
    }

    #[test]
    fn argmax_row_picks_largest() {
        let t = Tensor::from_vec(2, 4, vec![0.1, 0.9, 0.3, 0.2, 5.0, 1.0, 6.0, 2.0]);
        assert_eq!(t.argmax_row(0), 1);
        assert_eq!(t.argmax_row(1), 2);
    }

    #[test]
    fn frobenius_norm_of_unit_vectors() {
        let t = Tensor::from_vec(1, 4, vec![3.0, 4.0, 0.0, 0.0]);
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mean_and_max_abs() {
        let t = Tensor::from_vec(1, 4, vec![-4.0, 1.0, 2.0, 1.0]);
        assert!((t.mean() - 0.0).abs() < 1e-9);
        assert_eq!(t.max_abs(), 4.0);
    }

    #[test]
    fn gaussian_tensor_is_seeded() {
        let mut r1 = Prng::seed_from_u64(1);
        let mut r2 = Prng::seed_from_u64(1);
        let a = Tensor::gaussian(4, 4, 1.0, &mut r1);
        let b = Tensor::gaussian(4, 4, 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn rows_iter_yields_each_row() {
        let t = Tensor::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let rows: Vec<&[f32]> = t.rows_iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], &[2.0, 3.0]);
    }
}
